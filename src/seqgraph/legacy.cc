// Verbatim copy of the pre-CSR builder (see legacy.h). Do not "improve"
// this file: its value is that it is exactly the construction the reworked
// builder must reproduce bit-for-bit.
#include "seqgraph/legacy.h"

#include <algorithm>
#include <limits>
#include <map>
#include <optional>
#include <set>

#include "common/log.h"

namespace decseq::seqgraph {

namespace {

using membership::GroupMembership;
using membership::Overlap;
using membership::OverlapIndex;

/// Greedy affinity ordering of one component's groups: start from the group
/// with the largest total overlap mass, then repeatedly append the unplaced
/// group most strongly overlapped with the current tail (falling back to the
/// strongest link to any placed group). Groups that overlap heavily end up
/// adjacent, which shortens chain spans.
std::vector<GroupId> order_groups(const std::vector<GroupId>& component,
                                  const OverlapIndex& overlaps) {
  const std::size_t n = component.size();
  std::vector<std::size_t> index_of_group;  // slot -> dense index
  {
    GroupId::underlying_type max_slot = 0;
    for (const GroupId g : component) max_slot = std::max(max_slot, g.value());
    index_of_group.assign(max_slot + 1, n);
    for (std::size_t i = 0; i < n; ++i) {
      index_of_group[component[i].value()] = i;
    }
  }

  // weight[i][j] = size of overlap between component[i] and component[j].
  std::vector<std::vector<std::size_t>> weight(n, std::vector<std::size_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::size_t oi : overlaps.overlaps_of(component[i])) {
      const Overlap& o = overlaps.overlap(oi);
      const GroupId other = o.other(component[i]);
      if (other.value() < index_of_group.size()) {
        const std::size_t j = index_of_group[other.value()];
        if (j < n) weight[i][j] = o.members.size();
      }
    }
  }

  std::vector<bool> placed(n, false);
  std::vector<GroupId> order;
  order.reserve(n);

  // Seed: heaviest total overlap mass.
  std::size_t seed = 0, best_mass = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t mass = 0;
    for (std::size_t j = 0; j < n; ++j) mass += weight[i][j];
    if (mass > best_mass) {
      best_mass = mass;
      seed = i;
    }
  }
  placed[seed] = true;
  order.push_back(component[seed]);
  std::size_t tail = seed;

  for (std::size_t step = 1; step < n; ++step) {
    std::size_t best = n, best_w = 0;
    // Prefer the strongest link from the tail...
    for (std::size_t j = 0; j < n; ++j) {
      if (!placed[j] && weight[tail][j] > best_w) {
        best = j;
        best_w = weight[tail][j];
      }
    }
    // ...otherwise the strongest link to anything placed (the component is
    // connected, so one exists).
    if (best == n) {
      for (std::size_t i = 0; i < n && best == n; ++i) {
        if (!placed[i]) continue;
        for (std::size_t j = 0; j < n; ++j) {
          if (!placed[j] && weight[i][j] > best_w) {
            best = j;
            best_w = weight[i][j];
          }
        }
      }
    }
    DECSEQ_CHECK_MSG(best != n, "component not connected");
    placed[best] = true;
    order.push_back(component[best]);
    tail = best;
  }
  return order;
}

/// Tracks, for each group of a component, the chain positions of its
/// stamping atoms, to evaluate span costs during local search. A multiset
/// because adjacent atoms may share a group (a swap then cancels out).
class SpanTracker {
 public:
  explicit SpanTracker(std::size_t num_groups) : positions_(num_groups) {}

  void insert(std::size_t group, std::size_t pos) {
    positions_[group].insert(pos);
  }
  void move(std::size_t group, std::size_t from, std::size_t to) {
    auto it = positions_[group].find(from);
    DECSEQ_CHECK(it != positions_[group].end());
    positions_[group].erase(it);
    positions_[group].insert(to);
  }
  /// Span length (atoms transited) of a group's chain segment.
  [[nodiscard]] std::size_t span(std::size_t group) const {
    const auto& p = positions_[group];
    if (p.empty()) return 0;
    return *p.rbegin() - *p.begin() + 1;
  }

 private:
  std::vector<std::multiset<std::size_t>> positions_;
};

/// A component laid out as a tree: local indices into `locals` (which maps
/// to overlap indices), undirected adjacency, and per-group ordered paths.
struct TreeLayout {
  std::vector<std::size_t> locals;
  std::vector<std::vector<std::size_t>> adj;
  std::vector<std::pair<GroupId, std::vector<std::size_t>>> group_paths;
};

/// BFS path between two locals in the current forest; empty if
/// disconnected.
std::vector<std::size_t> forest_path(
    const std::vector<std::vector<std::size_t>>& adj, std::size_t from,
    std::size_t to) {
  if (from == to) return {from};
  std::vector<std::size_t> parent(adj.size(), SIZE_MAX);
  std::vector<std::size_t> queue{from};
  parent[from] = from;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::size_t u = queue[head];
    for (const std::size_t v : adj[u]) {
      if (parent[v] != SIZE_MAX) continue;
      parent[v] = u;
      if (v == to) {
        std::vector<std::size_t> path{to};
        for (std::size_t cur = to; cur != from; cur = parent[cur]) {
          path.push_back(parent[cur]);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(v);
    }
  }
  return {};
}

/// Greedy tree layout of one component; nullopt => caller falls back to the
/// chain strategy.
std::optional<TreeLayout> try_tree_layout(const std::vector<GroupId>& component,
                                          const OverlapIndex& overlaps) {
  TreeLayout layout;

  // Local indexing of the component's overlaps and per-group atom sets.
  std::map<std::size_t, std::size_t> local_of;
  std::map<GroupId, std::vector<std::size_t>> atoms_of_group;
  for (const GroupId g : component) {
    for (const std::size_t oi : overlaps.overlaps_of(g)) {
      auto [it, inserted] = local_of.try_emplace(oi, layout.locals.size());
      if (inserted) layout.locals.push_back(oi);
      atoms_of_group[g].push_back(it->second);
    }
  }
  layout.adj.resize(layout.locals.size());

  // Process groups in BFS order over the overlap graph from the
  // highest-degree group, so each group after the first already has placed
  // atoms (shared with its BFS parent).
  std::vector<GroupId> order;
  {
    GroupId seed = component.front();
    for (const GroupId g : component) {
      if (overlaps.overlaps_of(g).size() >
          overlaps.overlaps_of(seed).size()) {
        seed = g;
      }
    }
    std::set<GroupId> visited{seed};
    order.push_back(seed);
    for (std::size_t head = 0; head < order.size(); ++head) {
      for (const std::size_t oi : overlaps.overlaps_of(order[head])) {
        const GroupId next = overlaps.overlap(oi).other(order[head]);
        if (visited.insert(next).second) order.push_back(next);
      }
    }
    if (order.size() != component.size()) return std::nullopt;
  }

  std::vector<bool> placed(layout.locals.size(), false);
  // Canonical edge direction: +1 means traversal low-local -> high-local.
  std::map<std::pair<std::size_t, std::size_t>, int> edge_dir;

  auto link = [&](std::size_t a, std::size_t b) {
    layout.adj[a].push_back(b);
    layout.adj[b].push_back(a);
  };
  auto record_direction = [&](const std::vector<std::size_t>& path) -> bool {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const std::size_t lo = std::min(path[i], path[i + 1]);
      const std::size_t hi = std::max(path[i], path[i + 1]);
      const int dir = path[i] < path[i + 1] ? +1 : -1;
      const auto [it, inserted] = edge_dir.insert({{lo, hi}, dir});
      if (!inserted && it->second != dir) return false;
    }
    return true;
  };
  auto direction_compatible = [&](const std::vector<std::size_t>& path) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const std::size_t lo = std::min(path[i], path[i + 1]);
      const std::size_t hi = std::max(path[i], path[i + 1]);
      const int dir = path[i] < path[i + 1] ? +1 : -1;
      const auto it = edge_dir.find({lo, hi});
      if (it != edge_dir.end() && it->second != dir) return false;
    }
    return true;
  };

  for (const GroupId g : order) {
    const std::vector<std::size_t>& atoms = atoms_of_group.at(g);
    std::vector<std::size_t> placed_atoms, new_atoms;
    for (const std::size_t a : atoms) {
      (placed[a] ? placed_atoms : new_atoms).push_back(a);
    }

    std::vector<std::size_t> full_path;
    if (placed_atoms.empty()) {
      // First group of the component: its atoms form a fresh chain.
      full_path = new_atoms;
      for (std::size_t i = 0; i + 1 < full_path.size(); ++i) {
        link(full_path[i], full_path[i + 1]);
      }
    } else {
      // Minimal covering path of the placed atoms: the longest pairwise
      // path must contain them all (otherwise they span a branching
      // subtree and no single path covers them).
      std::vector<std::size_t> best;
      for (std::size_t i = 0; i < placed_atoms.size(); ++i) {
        for (std::size_t j = i; j < placed_atoms.size(); ++j) {
          std::vector<std::size_t> p =
              forest_path(layout.adj, placed_atoms[i], placed_atoms[j]);
          if (p.empty()) return std::nullopt;  // different trees
          if (p.size() > best.size()) best = std::move(p);
        }
      }
      for (const std::size_t a : placed_atoms) {
        if (std::find(best.begin(), best.end(), a) == best.end()) {
          return std::nullopt;  // branching: not on one path
        }
      }
      // Orient so FIFO edge directions stay consistent; try both ways.
      if (!direction_compatible(best)) {
        std::reverse(best.begin(), best.end());
        if (!direction_compatible(best)) return std::nullopt;
      }
      // Append the new atoms as a chain at the path's end.
      full_path = best;
      for (const std::size_t a : new_atoms) {
        link(full_path.back(), a);
        full_path.push_back(a);
      }
    }
    if (!record_direction(full_path)) return std::nullopt;
    for (const std::size_t a : new_atoms) placed[a] = true;
    if (placed_atoms.empty()) {
      for (const std::size_t a : full_path) placed[a] = true;
    }
    layout.group_paths.emplace_back(g, std::move(full_path));
  }
  return layout;
}

/// Mutable views into a SequencingGraph under construction.
struct GraphParts {
  std::vector<Atom>& atoms;
  std::vector<std::vector<AtomId>>& paths;
  std::vector<std::vector<AtomId>>& tree;
  std::vector<char>& retired;
  std::size_t& num_overlap_atoms;
  std::size_t& tree_components;
  std::size_t& chain_components;
};

AtomId append_atom(GraphParts& gp, GroupId a, GroupId b,
                   std::vector<NodeId> members, std::size_t overlap_index) {
  const AtomId id(static_cast<AtomId::underlying_type>(gp.atoms.size()));
  gp.atoms.push_back({id, a, b, std::move(members), overlap_index});
  gp.tree.emplace_back();
  gp.retired.push_back(0);
  return id;
}

/// Lay out one overlap component: greedy tree when the strategy allows and
/// the component admits one, otherwise the (ordered or unordered) chain.
void layout_component(GraphParts& gp, const std::vector<GroupId>& component,
                      const OverlapIndex& overlaps,
                      const BuildOptions& options) {
  if (options.strategy == BuildStrategy::kGreedyTree) {
    if (auto layout = try_tree_layout(component, overlaps)) {
      // Materialize the tree: atoms in local order, adjacency, paths.
      std::vector<AtomId> atom_of_local;
      atom_of_local.reserve(layout->locals.size());
      for (const std::size_t oi : layout->locals) {
        const Overlap& o = overlaps.overlap(oi);
        atom_of_local.push_back(
            append_atom(gp, o.first, o.second, o.members, oi));
        ++gp.num_overlap_atoms;
      }
      for (std::size_t a = 0; a < layout->adj.size(); ++a) {
        for (const std::size_t b : layout->adj[a]) {
          if (a < b) {
            gp.tree[atom_of_local[a].value()].push_back(atom_of_local[b]);
            gp.tree[atom_of_local[b].value()].push_back(atom_of_local[a]);
          }
        }
      }
      for (const auto& [g, locals] : layout->group_paths) {
        auto& path = gp.paths[g.value()];
        path.clear();
        for (const std::size_t a : locals) {
          path.push_back(atom_of_local[a]);
        }
      }
      ++gp.tree_components;
      return;
    }
    // Greedy tree failed for this component: fall through to the chain
    // layout, which always works.
  }
  // 1. Order the component's groups by affinity (no-op for the ablation
  //    strategy, which keeps discovery order).
  const std::vector<GroupId> group_order =
      options.strategy != BuildStrategy::kChainUnordered
          ? order_groups(component, overlaps)
          : component;

  std::vector<std::size_t> pos_of_group;  // slot -> position in order
  {
    GroupId::underlying_type max_slot = 0;
    for (const GroupId g : component) max_slot = std::max(max_slot, g.value());
    pos_of_group.assign(max_slot + 1, group_order.size());
    for (std::size_t i = 0; i < group_order.size(); ++i) {
      pos_of_group[group_order[i].value()] = i;
    }
  }

  // 2. Collect the component's overlaps, keyed for the barycenter sort.
  struct ChainEntry {
    std::size_t overlap_index;
    std::size_t lo, hi;     // positions of the two groups in group_order
    std::size_t label = 0;  // co-location label (same label = same machine)
    double label_key = 0.0; // mean barycenter of the label's atoms
  };
  std::vector<ChainEntry> chain;
  for (const GroupId g : component) {
    for (const std::size_t oi : overlaps.overlaps_of(g)) {
      const Overlap& o = overlaps.overlap(oi);
      if (o.first != g) continue;  // visit each overlap exactly once
      const std::size_t pa = pos_of_group[o.first.value()];
      const std::size_t pb = pos_of_group[o.second.value()];
      const std::size_t label = options.colocation_labels != nullptr
                                    ? (*options.colocation_labels)[oi]
                                    : 0;
      chain.push_back({oi, std::min(pa, pb), std::max(pa, pb), label, 0.0});
    }
  }
  if (options.colocation_labels != nullptr) {
    // Anchor each co-location cluster at the mean barycenter of its atoms
    // so clusters sit where their groups want them, and lay each cluster
    // out contiguously (a group's path then crosses each machine once).
    std::map<std::size_t, std::pair<double, std::size_t>> acc;
    for (const ChainEntry& e : chain) {
      auto& [sum, count] = acc[e.label];
      sum += static_cast<double>(e.lo + e.hi);
      ++count;
    }
    for (ChainEntry& e : chain) {
      const auto& [sum, count] = acc[e.label];
      e.label_key = sum / static_cast<double>(count);
    }
  }
  if (options.strategy != BuildStrategy::kChainUnordered) {
    std::sort(chain.begin(), chain.end(),
              [](const ChainEntry& x, const ChainEntry& y) {
                // Cluster anchor first (machine-contiguous layout), then
                // barycenter of the two group positions, ties broken
                // lexicographically — keeps each group's atoms clustered.
                if (x.label_key != y.label_key) return x.label_key < y.label_key;
                if (x.label != y.label) return x.label < y.label;
                const auto bx = x.lo + x.hi, by = y.lo + y.hi;
                if (bx != by) return bx < by;
                if (x.lo != y.lo) return x.lo < y.lo;
                return x.hi < y.hi;
              });
  }

  // 3. Local search: adjacent swaps that shrink the total group span.
  if (options.strategy != BuildStrategy::kChainUnordered && chain.size() > 2) {
    SpanTracker tracker(group_order.size());
    for (std::size_t p = 0; p < chain.size(); ++p) {
      tracker.insert(chain[p].lo, p);
      tracker.insert(chain[p].hi, p);
    }
    for (std::size_t pass = 0; pass < options.local_search_passes; ++pass) {
      bool improved = false;
      for (std::size_t p = 0; p + 1 < chain.size(); ++p) {
        // Swaps may not break machine contiguity.
        if (chain[p].label != chain[p + 1].label) continue;
        const std::size_t before = tracker.span(chain[p].lo) +
                                   tracker.span(chain[p].hi) +
                                   tracker.span(chain[p + 1].lo) +
                                   tracker.span(chain[p + 1].hi);
        tracker.move(chain[p].lo, p, p + 1);
        tracker.move(chain[p].hi, p, p + 1);
        tracker.move(chain[p + 1].lo, p + 1, p);
        tracker.move(chain[p + 1].hi, p + 1, p);
        const std::size_t after = tracker.span(chain[p].lo) +
                                  tracker.span(chain[p].hi) +
                                  tracker.span(chain[p + 1].lo) +
                                  tracker.span(chain[p + 1].hi);
        if (after < before) {
          std::swap(chain[p], chain[p + 1]);
          improved = true;
        } else {
          // Revert.
          tracker.move(chain[p].lo, p + 1, p);
          tracker.move(chain[p].hi, p + 1, p);
          tracker.move(chain[p + 1].lo, p, p + 1);
          tracker.move(chain[p + 1].hi, p, p + 1);
        }
      }
      if (!improved) break;
    }
  }

  // 4. Materialize atoms, tree edges, and group paths.
  std::vector<AtomId> chain_atoms;
  chain_atoms.reserve(chain.size());
  for (const ChainEntry& entry : chain) {
    const Overlap& o = overlaps.overlap(entry.overlap_index);
    chain_atoms.push_back(
        append_atom(gp, o.first, o.second, o.members, entry.overlap_index));
    ++gp.num_overlap_atoms;
  }
  for (std::size_t p = 0; p + 1 < chain_atoms.size(); ++p) {
    gp.tree[chain_atoms[p].value()].push_back(chain_atoms[p + 1]);
    gp.tree[chain_atoms[p + 1].value()].push_back(chain_atoms[p]);
  }
  ++gp.chain_components;
  for (const GroupId g : component) {
    std::size_t first = chain_atoms.size(), last = 0;
    for (std::size_t p = 0; p < chain_atoms.size(); ++p) {
      if (gp.atoms[chain_atoms[p].value()].stamps(g)) {
        first = std::min(first, p);
        last = std::max(last, p);
      }
    }
    DECSEQ_CHECK_MSG(first <= last, "group " << g << " has no atoms");
    auto& path = gp.paths[g.value()];
    path.assign(chain_atoms.begin() + static_cast<long>(first),
                chain_atoms.begin() + static_cast<long>(last) + 1);
  }
}

}  // namespace

SequencingGraph legacy_build_sequencing_graph(const GroupMembership& membership,
                                              const OverlapIndex& overlaps,
                                              const BuildOptions& options) {
  SequencingGraph graph;
  graph.paths_.resize(membership.num_group_slots());
  GraphParts gp{graph.atoms_,          graph.paths_,
                graph.tree_,           graph.retired_,
                graph.num_overlap_atoms_, graph.tree_components_,
                graph.chain_components_};

  // One chain (or greedy tree) per connected component of the group
  // overlap graph.
  for (const std::vector<GroupId>& component : overlaps.components()) {
    layout_component(gp, component, overlaps, options);
  }

  // Ingress-only atoms for live groups with no double overlaps.
  for (const GroupId g : membership.live_groups()) {
    if (!overlaps.has_overlaps(g)) {
      const AtomId id =
          append_atom(gp, g, GroupId{}, {}, static_cast<std::size_t>(-1));
      graph.paths_[g.value()] = {id};
    }
  }
  return graph;
}

SequencingGraph legacy_build_sequencing_graph_delta(
    const SequencingGraph& old_graph, const OverlapIndex& old_overlaps,
    const GroupMembership& membership, const OverlapIndex& new_overlaps,
    const std::vector<GroupId>& dirty, const BuildOptions& options,
    DeltaBuildStats* stats) {
  const std::size_t slots = membership.num_group_slots();

  std::vector<char> affected(slots, 0);
  for (const GroupId g : dirty) {
    if (!g.valid() || g.value() >= slots) continue;
    affected[g.value()] = 1;
    if (!old_overlaps.overlaps_of(g).empty()) {
      const std::size_t c = old_overlaps.component_of(g);
      for (const GroupId m : old_overlaps.components()[c]) {
        affected[m.value()] = 1;
      }
    }
  }
  const auto& new_components = new_overlaps.components();
  std::vector<char> relay(new_components.size(), 0);
  for (std::size_t c = 0; c < new_components.size(); ++c) {
    for (const GroupId g : new_components[c]) {
      if (affected[g.value()] != 0) {
        relay[c] = 1;
        break;
      }
    }
  }
  for (std::size_t c = 0; c < new_components.size(); ++c) {
    if (relay[c] == 0) continue;
    for (const GroupId g : new_components[c]) affected[g.value()] = 1;
  }

  SequencingGraph graph;
  graph.atoms_ = old_graph.atoms_;
  graph.tree_ = old_graph.tree_;
  graph.retired_ = old_graph.retired_;
  graph.retired_.resize(graph.atoms_.size(), 0);
  graph.num_retired_ = old_graph.num_retired_;
  graph.num_overlap_atoms_ = old_graph.num_overlap_atoms_;
  graph.tree_components_ = old_graph.tree_components_;
  graph.chain_components_ = old_graph.chain_components_;
  graph.paths_.resize(slots);

  const auto& new_list = new_overlaps.overlaps();
  const auto retire = [&](Atom& atom) {
    graph.retired_[atom.id.value()] = 1;
    ++graph.num_retired_;
    if (!atom.is_ingress_only()) {
      DECSEQ_CHECK(graph.num_overlap_atoms_ > 0);
      --graph.num_overlap_atoms_;
    }
    atom.overlap_index = static_cast<std::size_t>(-1);
    if (stats != nullptr) ++stats->atoms_retired;
  };
  for (Atom& atom : graph.atoms_) {
    if (graph.retired_[atom.id.value()] != 0) continue;
    if (atom.is_ingress_only()) {
      const GroupId g = atom.group_a;
      if (!membership.is_alive(g) || new_overlaps.has_overlaps(g)) {
        retire(atom);
      }
      continue;
    }
    if (affected[atom.group_a.value()] != 0 ||
        affected[atom.group_b.value()] != 0) {
      retire(atom);
      continue;
    }
    const auto it = std::lower_bound(
        new_list.begin(), new_list.end(),
        std::make_pair(atom.group_a, atom.group_b),
        [](const Overlap& o, const std::pair<GroupId, GroupId>& key) {
          if (o.first != key.first) return o.first.value() < key.first.value();
          return o.second.value() < key.second.value();
        });
    DECSEQ_CHECK_MSG(it != new_list.end() && it->first == atom.group_a &&
                         it->second == atom.group_b,
                     "surviving atom " << atom.id << " (" << atom.group_a
                                       << "," << atom.group_b
                                       << ") lost its overlap");
    atom.overlap_index = static_cast<std::size_t>(it - new_list.begin());
  }

  for (const GroupId g : membership.live_groups()) {
    if (!old_graph.has_path(g)) continue;
    const auto& old_path = old_graph.paths_[g.value()];
    if (affected[g.value()] == 0) {
      graph.paths_[g.value()] = old_path;
    } else if (old_path.size() == 1 &&
               graph.retired_[old_path[0].value()] == 0 &&
               graph.atoms_[old_path[0].value()].is_ingress_only()) {
      graph.paths_[g.value()] = old_path;
    }
  }

  GraphParts gp{graph.atoms_,          graph.paths_,
                graph.tree_,           graph.retired_,
                graph.num_overlap_atoms_, graph.tree_components_,
                graph.chain_components_};
  for (std::size_t c = 0; c < new_components.size(); ++c) {
    if (relay[c] != 0) {
      layout_component(gp, new_components[c], new_overlaps, options);
      if (stats != nullptr) ++stats->components_relaid;
    } else if (stats != nullptr) {
      ++stats->components_copied;
    }
  }

  for (const GroupId g : membership.live_groups()) {
    if (!new_overlaps.has_overlaps(g) && graph.paths_[g.value()].empty()) {
      const AtomId id =
          append_atom(gp, g, GroupId{}, {}, static_cast<std::size_t>(-1));
      graph.paths_[g.value()] = {id};
    }
  }

  if (stats != nullptr) {
    stats->atoms_created = graph.atoms_.size() - old_graph.atoms_.size();
    for (std::size_t s = 0; s < slots; ++s) {
      if (affected[s] != 0) {
        stats->affected_groups.push_back(
            GroupId(static_cast<GroupId::underlying_type>(s)));
      }
    }
  }
  return graph;
}

}  // namespace decseq::seqgraph
