// Reference implementation of the sequencing-graph build: the original
// map/set-based, single-threaded construction, kept verbatim so the CSR +
// parallel builder in graph.cc can be differentially tested against it
// (tests/routing_scale_test.cc pins exact equality over 200 seeds) and
// benchmarked (bench/routing_scale_bench reports the speedup). Not used by
// the production pipeline.
#pragma once

#include "seqgraph/graph.h"

namespace decseq::seqgraph {

/// Exactly build_sequencing_graph, pre-CSR. Output must stay bit-identical
/// to the current builder — any divergence is a bug in the rework, not here.
[[nodiscard]] SequencingGraph legacy_build_sequencing_graph(
    const membership::GroupMembership& membership,
    const membership::OverlapIndex& overlaps, const BuildOptions& options = {});

/// Exactly build_sequencing_graph_delta, pre-CSR.
[[nodiscard]] SequencingGraph legacy_build_sequencing_graph_delta(
    const SequencingGraph& old_graph,
    const membership::OverlapIndex& old_overlaps,
    const membership::GroupMembership& membership,
    const membership::OverlapIndex& new_overlaps,
    const std::vector<GroupId>& dirty, const BuildOptions& options = {},
    DeltaBuildStats* stats = nullptr);

}  // namespace decseq::seqgraph
