#include "seqgraph/validator.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <sstream>

namespace decseq::seqgraph {

namespace {

/// Disjoint-set forest for the acyclicity check.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }
  /// Returns false if x and y were already connected (i.e. a cycle).
  bool unite(std::size_t x, std::size_t y) {
    const std::size_t rx = find(x), ry = find(y);
    if (rx == ry) return false;
    parent_[rx] = ry;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

ValidationReport validate_sequencing_graph(
    const SequencingGraph& graph,
    const membership::GroupMembership& membership,
    const membership::OverlapIndex& overlaps) {
  ValidationReport report;
  std::ostringstream os;

  // --- C2: the undirected atom graph is a forest. ---
  {
    UnionFind uf(graph.num_atoms());
    std::set<std::pair<std::size_t, std::size_t>> seen;
    for (const Atom& atom : graph.atoms()) {
      for (const AtomId nb : graph.tree_neighbors(atom.id)) {
        // Note: std::minmax over these prvalues would return dangling
        // references; take min/max by value.
        const auto lo = std::min(atom.id.value(), nb.value());
        const auto hi = std::max(atom.id.value(), nb.value());
        if (!seen.insert({lo, hi}).second) continue;
        if (!uf.unite(atom.id.value(), nb.value())) {
          std::ostringstream err;
          err << "C2 violated: edge (" << atom.id << "," << nb
              << ") closes a cycle";
          report.fail(err.str());
        }
      }
    }
    // Adjacency symmetry.
    for (const Atom& atom : graph.atoms()) {
      for (const AtomId nb : graph.tree_neighbors(atom.id)) {
        const auto& back = graph.tree_neighbors(nb);
        if (std::find(back.begin(), back.end(), atom.id) == back.end()) {
          std::ostringstream err;
          err << "tree adjacency not symmetric: " << atom.id << " -> " << nb;
          report.fail(err.str());
        }
      }
    }
  }

  // --- Every double overlap has exactly one atom; atoms match overlaps. ---
  {
    std::map<std::pair<GroupId, GroupId>, std::size_t> atom_count;
    for (const Atom& atom : graph.atoms()) {
      // Retired atoms (delta rebuilds) sequence nothing: a re-laid
      // component legitimately holds both the retired and the fresh atom
      // of a surviving pair.
      if (atom.is_ingress_only() || graph.is_retired(atom.id)) continue;
      ++atom_count[{atom.group_a, atom.group_b}];
    }
    for (const membership::Overlap& o : overlaps.overlaps()) {
      const auto it = atom_count.find({o.first, o.second});
      if (it == atom_count.end()) {
        std::ostringstream err;
        err << "missing atom for overlap (" << o.first << "," << o.second
            << ")";
        report.fail(err.str());
      } else if (it->second != 1) {
        std::ostringstream err;
        err << "overlap (" << o.first << "," << o.second << ") has "
            << it->second << " atoms";
        report.fail(err.str());
      }
    }
    if (graph.num_overlap_atoms() != overlaps.num_overlaps()) {
      std::ostringstream err;
      err << "atom count " << graph.num_overlap_atoms()
          << " != overlap count " << overlaps.num_overlaps();
      report.fail(err.str());
    }
  }

  // --- C1 per group: path exists, is a simple walk on tree edges, and
  //     covers every stamping atom of the group. ---
  std::map<std::pair<std::size_t, std::size_t>, int> edge_direction;
  for (const GroupId g : membership.live_groups()) {
    if (!graph.has_path(g)) {
      std::ostringstream err;
      err << "live group " << g << " has no sequencing path";
      report.fail(err.str());
      continue;
    }
    const std::vector<AtomId>& path = graph.path(g);

    std::set<AtomId> unique(path.begin(), path.end());
    if (unique.size() != path.size()) {
      std::ostringstream err;
      err << "path of group " << g << " revisits an atom";
      report.fail(err.str());
    }

    for (const AtomId id : path) {
      if (graph.is_retired(id)) {
        std::ostringstream err;
        err << "path of group " << g << " visits retired atom " << id;
        report.fail(err.str());
      }
    }

    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const auto& nb = graph.tree_neighbors(path[i]);
      if (std::find(nb.begin(), nb.end(), path[i + 1]) == nb.end()) {
        std::ostringstream err;
        err << "path of group " << g << " jumps from " << path[i] << " to "
            << path[i + 1] << " without a tree edge";
        report.fail(err.str());
      }
      // FIFO direction consistency: all groups must traverse a shared edge
      // the same way.
      const int dir = path[i].value() < path[i + 1].value() ? +1 : -1;
      const auto lo = std::min(path[i].value(), path[i + 1].value());
      const auto hi = std::max(path[i].value(), path[i + 1].value());
      auto [it, inserted] = edge_direction.insert({{lo, hi}, dir});
      if (!inserted && it->second != dir) {
        std::ostringstream err;
        err << "edge (" << lo << "," << hi
            << ") traversed in both directions (group " << g << ")";
        report.fail(err.str());
      }
    }

    // Coverage: every overlap of g has its atom on g's path.
    for (const std::size_t oi : overlaps.overlaps_of(g)) {
      const membership::Overlap& o = overlaps.overlap(oi);
      const bool found = std::any_of(
          path.begin(), path.end(), [&](AtomId id) {
            const Atom& a = graph.atom(id);
            return !a.is_ingress_only() && a.group_a == o.first &&
                   a.group_b == o.second;
          });
      if (!found) {
        std::ostringstream err;
        err << "C1 violated: path of group " << g
            << " misses atom for overlap (" << o.first << "," << o.second
            << ")";
        report.fail(err.str());
      }
    }

    // Groups without overlaps must use a single ingress-only atom.
    if (!overlaps.has_overlaps(g)) {
      if (path.size() != 1 || !graph.atom(path[0]).is_ingress_only() ||
          graph.atom(path[0]).group_a != g) {
        std::ostringstream err;
        err << "group " << g
            << " has no overlaps but lacks a dedicated ingress-only atom";
        report.fail(err.str());
      }
    }
  }

  return report;
}

}  // namespace decseq::seqgraph
