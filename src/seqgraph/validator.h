// Independent validation of the sequencing-graph invariants (paper §3.2):
//
//   C1 — a single path connects the sequencers of each group;
//   C2 — the undirected sequencing graph is loop-free;
//
// plus the structural properties the correctness proof (§3.3) relies on:
// every double overlap has exactly one atom, each group's path is a simple
// walk along tree edges covering all of its stamping atoms, and every tree
// edge is traversed in one direction only (so a FIFO channel per edge
// preserves arrival order — the "consistent arrival order" step of
// Theorem 1's Case III).
//
// The validator shares no code with the builder, so it can catch builder
// bugs; property tests run it over randomized memberships.
#pragma once

#include <string>
#include <vector>

#include "membership/overlap.h"
#include "seqgraph/graph.h"

namespace decseq::seqgraph {

struct ValidationReport {
  bool ok = true;
  std::vector<std::string> errors;

  void fail(std::string message) {
    ok = false;
    errors.push_back(std::move(message));
  }
};

/// Validate `graph` against the membership snapshot it was built from.
[[nodiscard]] ValidationReport validate_sequencing_graph(
    const SequencingGraph& graph,
    const membership::GroupMembership& membership,
    const membership::OverlapIndex& overlaps);

}  // namespace decseq::seqgraph
