// Small-buffer move-only callable, the event payload type of the simulator.
//
// std::function is copyable, which forces every captured state to be
// copy-constructible and limits the inline buffer to 16 bytes on common
// ABIs — a protocol Message capture always lands on the heap. Simulation
// events are scheduled once, fired once, and never copied, so a move-only
// wrapper with a buffer sized for the runtime's hot captures (a channel's
// [this, seq] pair, an in-flight Message by value) removes that allocation
// from the hot path entirely. Larger captures still work via a heap
// fallback; the simulator counts them so benches can report an
// allocations-per-event proxy.
//
// The heap fallback itself is pooled: spilled blocks are recycled through a
// thread-local freelist bucketed by 64-byte size class, so a workload that
// repeatedly schedules the same oversized capture allocates once per
// concurrent spill, not once per event. spill_pool_stats() exposes the
// fresh/reused split; benches assert that steady-state spills are reuses.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace decseq::sim {

/// Allocation behaviour of the callback spill pool on this thread:
/// `fresh` blocks came from operator new, `reused` from the freelist.
struct SpillPoolStats {
  std::size_t fresh = 0;
  std::size_t reused = 0;
};

namespace detail {

/// Thread-local freelist recycler for callback heap spills. Blocks are
/// rounded up to 64-byte classes; freed blocks become intrusive list nodes
/// (the capture is already destroyed, so its bytes are free real estate).
/// Blocks above the largest class fall through to plain new/delete, as do
/// over-aligned captures (the pool only guarantees max_align_t).
class SpillPool {
 public:
  static constexpr std::size_t kClassBytes = 64;
  static constexpr std::size_t kNumClasses = 16;  // pools up to 1 KiB

  [[nodiscard]] static void* allocate(std::size_t bytes) {
    const std::size_t cls = class_of(bytes);
    State& state = instance();
    if (cls < kNumClasses && state.free[cls] != nullptr) {
      Node* node = state.free[cls];
      state.free[cls] = node->next;
      node->~Node();
      ++state.stats.reused;
      return node;
    }
    ++state.stats.fresh;
    return ::operator new(cls < kNumClasses ? (cls + 1) * kClassBytes
                                            : bytes);
  }

  static void deallocate(void* block, std::size_t bytes) noexcept {
    const std::size_t cls = class_of(bytes);
    if (cls >= kNumClasses) {
      ::operator delete(block);
      return;
    }
    State& state = instance();
    state.free[cls] = ::new (block) Node{state.free[cls]};
  }

  [[nodiscard]] static const SpillPoolStats& stats() {
    return instance().stats;
  }

 private:
  struct Node {
    Node* next;
  };
  struct State {
    Node* free[kNumClasses] = {};
    SpillPoolStats stats;

    ~State() {
      for (Node*& head : free) {
        while (head != nullptr) {
          Node* node = head;
          head = node->next;
          node->~Node();
          ::operator delete(node);
        }
      }
    }
  };

  [[nodiscard]] static std::size_t class_of(std::size_t bytes) {
    return (bytes + kClassBytes - 1) / kClassBytes - 1;
  }

  [[nodiscard]] static State& instance() {
    thread_local State state;
    return state;
  }
};

}  // namespace detail

/// This thread's spill-pool counters (see SpillPool above). Steady-state
/// workloads should only grow `reused`.
[[nodiscard]] inline const SpillPoolStats& spill_pool_stats() {
  return detail::SpillPool::stats();
}

/// Move-only `void()` callable with `InlineBytes` of inline storage.
template <std::size_t InlineBytes>
class InlineCallback {
 public:
  InlineCallback() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<
                std::decay_t<F>, InlineCallback>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  /// Construct the callable directly in this object's storage, replacing
  /// any current one. Lets containers fill a slot with a single callable
  /// construction instead of building a temporary and moving it in.
  template <typename F>
  void emplace(F&& f) {
    static_assert(!std::is_same_v<std::decay_t<F>, InlineCallback>);
    reset();
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= InlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else if constexpr (alignof(Fn) <= alignof(std::max_align_t)) {
      // Spill through the recycling pool: the common oversized capture is
      // scheduled over and over (retry loops, fan-out wrappers), and the
      // freelist turns those into allocation-free reuses.
      void* block = detail::SpillPool::allocate(sizeof(Fn));
      Fn* fn;
      try {
        fn = ::new (block) Fn(std::forward<F>(f));
      } catch (...) {
        detail::SpillPool::deallocate(block, sizeof(Fn));
        throw;
      }
      ::new (static_cast<void*>(storage_)) Fn*(fn);
      ops_ = &pooled_heap_ops<Fn>;
    } else {
      // Over-aligned captures bypass the pool (it only hands out
      // max_align_t-aligned blocks); plain new honours the alignment.
      ::new (static_cast<void*>(storage_))
          Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { move_from(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  /// True when the callable spilled to the heap (too big for the buffer).
  [[nodiscard]] bool heap_allocated() const {
    return ops_ != nullptr && ops_->on_heap;
  }

  void operator()() { ops_->invoke(storage_); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(unsigned char*);
    void (*destroy)(unsigned char*);
    /// Move-construct into `dst` from `src`, then destroy `src`.
    void (*relocate)(unsigned char* src, unsigned char* dst);
    bool on_heap;
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](unsigned char* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](unsigned char* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
      [](unsigned char* src, unsigned char* dst) {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (static_cast<void*>(dst)) Fn(std::move(*from));
        from->~Fn();
      },
      /*on_heap=*/false,
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](unsigned char* s) {
        (**std::launder(reinterpret_cast<Fn**>(s)))();
      },
      [](unsigned char* s) {
        delete *std::launder(reinterpret_cast<Fn**>(s));
      },
      [](unsigned char* src, unsigned char* dst) {
        // The source holds a raw pointer (trivially destructible): just
        // copy it across; ownership moves with it.
        ::new (static_cast<void*>(dst))
            Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      /*on_heap=*/true,
  };

  /// Like heap_ops, but the spilled block returns to the thread-local
  /// freelist instead of operator delete, ready for the next spill of the
  /// same size class.
  template <typename Fn>
  static constexpr Ops pooled_heap_ops = {
      [](unsigned char* s) {
        (**std::launder(reinterpret_cast<Fn**>(s)))();
      },
      [](unsigned char* s) {
        Fn* fn = *std::launder(reinterpret_cast<Fn**>(s));
        fn->~Fn();
        detail::SpillPool::deallocate(fn, sizeof(Fn));
      },
      [](unsigned char* src, unsigned char* dst) {
        // The source holds a raw pointer (trivially destructible): just
        // copy it across; ownership moves with it.
        ::new (static_cast<void*>(dst))
            Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      /*on_heap=*/true,
  };

  void move_from(InlineCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[InlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace decseq::sim
