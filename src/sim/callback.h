// Small-buffer move-only callable, the event payload type of the simulator.
//
// std::function is copyable, which forces every captured state to be
// copy-constructible and limits the inline buffer to 16 bytes on common
// ABIs — a protocol Message capture always lands on the heap. Simulation
// events are scheduled once, fired once, and never copied, so a move-only
// wrapper with a buffer sized for the runtime's hot captures (a channel's
// [this, seq] pair, an in-flight Message by value) removes that allocation
// from the hot path entirely. Larger captures still work via a heap
// fallback; the simulator counts them so benches can report an
// allocations-per-event proxy.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace decseq::sim {

/// Move-only `void()` callable with `InlineBytes` of inline storage.
template <std::size_t InlineBytes>
class InlineCallback {
 public:
  InlineCallback() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<
                std::decay_t<F>, InlineCallback>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  /// Construct the callable directly in this object's storage, replacing
  /// any current one. Lets containers fill a slot with a single callable
  /// construction instead of building a temporary and moving it in.
  template <typename F>
  void emplace(F&& f) {
    static_assert(!std::is_same_v<std::decay_t<F>, InlineCallback>);
    reset();
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= InlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(storage_))
          Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { move_from(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  /// True when the callable spilled to the heap (too big for the buffer).
  [[nodiscard]] bool heap_allocated() const {
    return ops_ != nullptr && ops_->on_heap;
  }

  void operator()() { ops_->invoke(storage_); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(unsigned char*);
    void (*destroy)(unsigned char*);
    /// Move-construct into `dst` from `src`, then destroy `src`.
    void (*relocate)(unsigned char* src, unsigned char* dst);
    bool on_heap;
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](unsigned char* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](unsigned char* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
      [](unsigned char* src, unsigned char* dst) {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (static_cast<void*>(dst)) Fn(std::move(*from));
        from->~Fn();
      },
      /*on_heap=*/false,
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](unsigned char* s) {
        (**std::launder(reinterpret_cast<Fn**>(s)))();
      },
      [](unsigned char* s) {
        delete *std::launder(reinterpret_cast<Fn**>(s));
      },
      [](unsigned char* src, unsigned char* dst) {
        // The source holds a raw pointer (trivially destructible): just
        // copy it across; ownership moves with it.
        ::new (static_cast<void*>(dst))
            Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      /*on_heap=*/true,
  };

  void move_from(InlineCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[InlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace decseq::sim
