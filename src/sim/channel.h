// Reliable FIFO point-to-point channel (paper §3.1).
//
// The protocol assumes a FIFO channel between any two sequencers, an output
// retransmission buffer per successor, and acknowledgments that release
// buffered packets. This template implements exactly that: per-channel
// sequence numbers, a sender-side retransmission buffer with timeout, a
// receiver-side reorder buffer that releases payloads strictly in send
// order, and cumulative acks. With loss probability 0 (the experiment
// configuration) it degenerates to a pure propagation-delay pipe; tests
// inject loss to exercise the recovery path.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "sim/simulator.h"

namespace decseq::sim {

struct ChannelOptions {
  double loss_probability = 0.0;  ///< per-transmission drop chance
  Time retransmit_timeout_ms = 200.0;
  /// Safety valve for tests: after this many retransmissions of one packet
  /// the channel gives up and fails loudly (the paper assumes fail-free
  /// sequencers; silent message loss would corrupt the sequence space).
  std::size_t max_retransmits = 100;
};

/// One-directional reliable FIFO channel carrying payloads of type T.
template <typename T>
class Channel {
 public:
  using DeliverFn = std::function<void(T)>;

  Channel(Simulator& sim, Rng& rng, Time delay_ms, ChannelOptions options = {})
      : sim_(&sim), rng_(&rng), delay_ms_(delay_ms), options_(options) {
    DECSEQ_CHECK(delay_ms >= 0.0);
  }

  // In-flight events capture `this`; the channel must stay put once armed.
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Install the receiver callback; payloads arrive in send order,
  /// exactly once.
  void set_receiver(DeliverFn deliver) { deliver_ = std::move(deliver); }

  /// Fail-stop the receiving endpoint: while down, arriving transmissions
  /// are dropped without acknowledgment, so the sender's retransmission
  /// buffer holds everything and the timers keep retrying; after
  /// set_receiver_down(false), retransmissions drain in order. Models a
  /// crashed sequencing machine whose state survives (synchronous
  /// replication) but which stops talking.
  void set_receiver_down(bool down) { receiver_down_ = down; }
  [[nodiscard]] bool receiver_down() const { return receiver_down_; }

  /// Sever the physical link: transmissions and acknowledgments sent while
  /// down vanish (a 100% loss window). Both endpoints stay alive; the
  /// retransmission machinery repairs everything on recovery.
  void set_link_down(bool down) { link_down_ = down; }
  [[nodiscard]] bool link_down() const { return link_down_; }

  /// Queue a payload for in-order delivery to the receiver.
  void send(T payload) {
    DECSEQ_CHECK_MSG(deliver_ != nullptr, "channel has no receiver");
    const std::uint64_t seq = next_send_seq_++;
    auto [it, inserted] =
        retransmit_buffer_.try_emplace(seq, std::move(payload));
    DECSEQ_CHECK(inserted);
    transmit(seq);
    arm_timer(seq);
  }

  /// Packets still awaiting acknowledgment (the "output retransmission
  /// buffer" size from §3.1's state list).
  [[nodiscard]] std::size_t unacked() const {
    return retransmit_buffer_.size();
  }
  /// Packets buffered at the receiver waiting for earlier ones.
  [[nodiscard]] std::size_t reorder_buffered() const {
    return reorder_buffer_.size();
  }
  [[nodiscard]] std::size_t transmissions() const { return transmissions_; }
  [[nodiscard]] Time delay_ms() const { return delay_ms_; }

 private:
  void transmit(std::uint64_t seq) {
    ++transmissions_;
    if (link_down_) return;  // severed link
    if (rng_->next_bool(options_.loss_probability)) return;  // dropped
    sim_->schedule_after(delay_ms_, [this, seq] { on_data(seq); });
  }

  void arm_timer(std::uint64_t seq) {
    sim_->schedule_after(options_.retransmit_timeout_ms, [this, seq] {
      const auto it = retransmit_buffer_.find(seq);
      if (it == retransmit_buffer_.end()) return;  // acked meanwhile
      const std::size_t attempts = ++retransmit_counts_[seq];
      DECSEQ_CHECK_MSG(attempts <= options_.max_retransmits,
                       "packet " << seq << " lost " << attempts << " times");
      transmit(seq);
      arm_timer(seq);
    });
  }

  void on_data(std::uint64_t seq) {
    if (receiver_down_) return;  // crashed endpoint: silence, no ack
    // Ack everything received so far (cumulative), even duplicates, so a
    // lost ack is repaired by the next arrival.
    if (seq >= next_deliver_seq_ &&
        !reorder_buffer_.contains(seq)) {
      auto node = retransmit_buffer_.find(seq);
      // The payload still lives in the sender's buffer; copy it across the
      // simulated wire. (A real implementation serializes; simulation can
      // share.)
      DECSEQ_CHECK(node != retransmit_buffer_.end());
      reorder_buffer_.emplace(seq, node->second);
    }
    while (true) {
      const auto it = reorder_buffer_.find(next_deliver_seq_);
      if (it == reorder_buffer_.end()) break;
      T payload = std::move(it->second);
      reorder_buffer_.erase(it);
      ++next_deliver_seq_;
      deliver_(std::move(payload));
    }
    send_ack(next_deliver_seq_);
  }

  void send_ack(std::uint64_t cumulative) {
    if (link_down_) return;
    if (rng_->next_bool(options_.loss_probability)) return;
    sim_->schedule_after(delay_ms_, [this, cumulative] {
      // Release every packet the receiver has consumed.
      while (!retransmit_buffer_.empty() &&
             retransmit_buffer_.begin()->first < cumulative) {
        retransmit_counts_.erase(retransmit_buffer_.begin()->first);
        retransmit_buffer_.erase(retransmit_buffer_.begin());
      }
    });
  }

  Simulator* sim_;
  Rng* rng_;
  Time delay_ms_;
  ChannelOptions options_;
  DeliverFn deliver_;

  std::uint64_t next_send_seq_ = 0;
  std::uint64_t next_deliver_seq_ = 0;
  bool receiver_down_ = false;
  bool link_down_ = false;
  std::map<std::uint64_t, T> retransmit_buffer_;
  std::map<std::uint64_t, std::size_t> retransmit_counts_;
  std::map<std::uint64_t, T> reorder_buffer_;
  std::size_t transmissions_ = 0;
};

}  // namespace decseq::sim
