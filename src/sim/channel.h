// Reliable FIFO point-to-point channel (paper §3.1).
//
// The protocol assumes a FIFO channel between any two sequencers, an output
// retransmission buffer per successor, and acknowledgments that release
// buffered packets. This template implements exactly that: per-channel
// sequence numbers, a sender-side retransmission buffer with timeout, a
// receiver-side reorder buffer that releases payloads strictly in send
// order, and cumulative acks. With loss probability 0 (the experiment
// configuration) it degenerates to a pure propagation-delay pipe; tests
// inject loss to exercise the recovery path.
//
// Buffer layout (see docs/PROTOCOL.md, "Event engine"): both buffers are
// flat ring buffers (common/ring_buffer.h) indexed by contiguous sequence
// numbers — the sender's output buffer starts at the lowest unacked packet
// and cumulative acks pop its front, the receiver's reorder window starts
// at the next sequence number to deliver. No tree maps, and once the rings
// reach the flow's high-water mark, no per-packet heap traffic at all
// (a deque here would churn ~512-byte nodes forever as packets flow
// through).
//
// Retransmission timing: every unacked packet carries its own deadline,
// but the channel arms a single cancellable simulator timer at the
// earliest of them instead of one event per packet. When the output buffer
// drains the timer is cancelled, so an acked packet never wakes the
// simulator: a loss-free run fires zero retransmit-timer callbacks
// (asserted by tests via retransmit_timer_fires()).
//
// Retransmissions back off exponentially per packet: retry i of one packet
// waits retransmit_timeout_ms * backoff_factor^(i-1), capped at
// max_backoff_factor * retransmit_timeout_ms, with multiplicative jitter in
// [1, 1 + backoff_jitter) so co-timed packets decorrelate. During an
// outage of duration W a packet is therefore retransmitted O(log(W/rto))
// times, not W/rto times. The first transmission's deadline is exactly
// retransmit_timeout_ms with no jitter (and no RNG draw), so loss-free
// runs consume no extra randomness.
//
// Failure model (partitions and faults):
//  * set_link_down(true) severs the link. Link state is sampled both when
//    a transmission is launched and when it arrives: traffic (data and
//    acks) already in flight when the partition starts dies inside it.
//    A partition therefore behaves like a physical cut, not a send-time
//    loss coin — nothing leaks through the window in either direction.
//  * set_receiver_down(true) fail-stops the receiving endpoint: arrivals
//    are dropped without acknowledgment (the sender's buffers hold
//    everything), also sampled at arrival time.
//  * Exhausting max_retransmits on any packet does NOT abort: the channel
//    enters a surfaced fault state — faulted() turns true, fault() carries
//    the packet/attempt/time, and the fault callback fires once per
//    transition. A faulted channel keeps probing at the capped backoff
//    cadence (the analogue of TCP's persist timer), so a fault is a
//    status, never a wedge: if the outage heals by itself a probe gets
//    through, the acks drain the buffer, and the fault clears.
//  * Recovery (set_link_down(false) / set_receiver_down(false)) models the
//    transport re-establishing the connection: the fault clears, every
//    unacked packet's attempt budget resets, and the whole window is
//    retransmitted immediately rather than waiting out the current
//    backoff. Duplicates this may create are suppressed by sequence number
//    at the receiver, as always.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/ring_buffer.h"
#include "common/rng.h"
#include "sim/simulator.h"

namespace decseq::sim {

struct ChannelOptions {
  double loss_probability = 0.0;  ///< per-transmission drop chance
  Time retransmit_timeout_ms = 200.0;
  /// Retransmissions of one packet before the channel declares itself
  /// faulted (surfaced via faulted()/the fault callback — the paper
  /// assumes fail-free sequencers, so a real deployment must report
  /// transport exhaustion upward, never die). Probing continues at the
  /// capped backoff cadence while faulted.
  std::size_t max_retransmits = 100;
  /// Exponential backoff base: retry i waits retransmit_timeout_ms *
  /// backoff_factor^(i-1) (before the cap and jitter below).
  double backoff_factor = 2.0;
  /// Backoff ceiling as a multiple of retransmit_timeout_ms.
  double max_backoff_factor = 64.0;
  /// Multiplicative jitter: each retry delay is scaled by a uniform draw
  /// from [1, 1 + backoff_jitter).
  double backoff_jitter = 0.1;
};

/// Everything known about a channel's surfaced fault: the packet whose
/// retransmission budget ran out, how often it was sent, and when the
/// channel gave up fast-path retrying.
struct ChannelFault {
  std::uint64_t seq = 0;
  std::uint32_t attempts = 0;
  Time at = 0.0;
};

/// One-directional reliable FIFO channel carrying payloads of type T.
template <typename T>
class Channel {
 public:
  using DeliverFn = std::function<void(T)>;
  using FaultFn = std::function<void(const ChannelFault&)>;

  Channel(Simulator& sim, Rng& rng, Time delay_ms, ChannelOptions options = {})
      : sim_(&sim), rng_(&rng), delay_ms_(delay_ms), options_(options) {
    DECSEQ_CHECK(delay_ms >= 0.0);
    DECSEQ_CHECK(options_.backoff_factor >= 1.0);
    DECSEQ_CHECK(options_.max_backoff_factor >= 1.0);
    DECSEQ_CHECK(options_.backoff_jitter >= 0.0);
  }

  // In-flight events capture `this`; the channel must stay put once armed.
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Install the receiver callback; payloads arrive in send order,
  /// exactly once.
  void set_receiver(DeliverFn deliver) { deliver_ = std::move(deliver); }

  /// Notification for entering the fault state (invoked once per
  /// transition, from inside the retransmit timer). The callback must not
  /// destroy the channel; it may inspect status and schedule recovery.
  void set_fault_callback(FaultFn on_fault) { on_fault_ = std::move(on_fault); }

  /// Fail-stop the receiving endpoint: while down, arriving transmissions
  /// are dropped without acknowledgment, so the sender's retransmission
  /// buffer holds everything and the timer keeps retrying; after
  /// set_receiver_down(false), the whole unacked window is retransmitted
  /// immediately (see "Failure model" above). Models a crashed sequencing
  /// machine whose state survives (synchronous replication) but which
  /// stops talking.
  void set_receiver_down(bool down) {
    const bool was = receiver_down_;
    receiver_down_ = down;
    if (was && !down) resume();
  }
  [[nodiscard]] bool receiver_down() const { return receiver_down_; }

  /// Sever the physical link: transmissions and acknowledgments vanish if
  /// the link is down when they are sent *or* when they would arrive (a
  /// partition kills in-flight traffic). Both endpoints stay alive; on
  /// set_link_down(false) the unacked window retransmits immediately.
  void set_link_down(bool down) {
    const bool was = link_down_;
    link_down_ = down;
    if (was && !down) resume();
  }
  [[nodiscard]] bool link_down() const { return link_down_; }

  /// Queue a payload for in-order delivery to the receiver.
  void send(T payload) {
    DECSEQ_CHECK_MSG(deliver_ != nullptr, "channel has no receiver");
    const std::uint64_t seq = next_send_seq_++;
    out_.push_back(
        OutPacket{std::move(payload), sim_->now() + options_.retransmit_timeout_ms});
    transmit(seq);
    if (!timer_.valid()) arm_timer(out_.back().deadline);
  }

  /// The channel exhausted max_retransmits on some packet and has not yet
  /// recovered (by an ack draining the buffer, or by resume-on-recovery).
  [[nodiscard]] bool faulted() const { return fault_.has_value(); }
  /// Details of the current fault; nullopt while healthy.
  [[nodiscard]] const std::optional<ChannelFault>& fault() const {
    return fault_;
  }
  /// Times the channel has entered the fault state over its lifetime.
  [[nodiscard]] std::size_t faults_entered() const { return faults_entered_; }

  /// Packets still awaiting acknowledgment (the "output retransmission
  /// buffer" size from §3.1's state list).
  [[nodiscard]] std::size_t unacked() const { return out_.size(); }
  /// Packets buffered at the receiver waiting for earlier ones.
  [[nodiscard]] std::size_t reorder_buffered() const {
    return reorder_buffered_;
  }
  [[nodiscard]] std::size_t transmissions() const { return transmissions_; }
  /// Retransmit-timer expiries that found a timed-out packet (each one
  /// retransmits at least one packet). Zero in a loss-free run whose acks
  /// return within the timeout: the cumulative ack cancels the timer first.
  [[nodiscard]] std::size_t retransmit_timer_fires() const {
    return retransmit_timer_fires_;
  }
  [[nodiscard]] Time delay_ms() const { return delay_ms_; }

  /// No unacked packets, no armed retransmit timer, no in-flight data or
  /// ack events, and no surfaced fault: every scheduled lambda capturing
  /// `this` has fired, so the channel can be destroyed safely. Lets the
  /// control plane reclaim channels whose endpoints were retired by a
  /// reconfiguration (a still-returning final ack just postpones the
  /// reclaim to a later compaction pass).
  [[nodiscard]] bool quiescent() const {
    return out_.empty() && !timer_.valid() && pending_events_ == 0 &&
           !fault_.has_value();
  }

 private:
  struct OutPacket {
    T payload;
    /// When this packet times out (last transmission + current backoff).
    Time deadline;
    std::uint32_t attempts = 0;  ///< retransmissions so far
  };

  /// The sender-side slot for `seq`; valid only while seq is unacked.
  [[nodiscard]] OutPacket& out_slot(std::uint64_t seq) {
    DECSEQ_CHECK(seq >= send_base_ && seq - send_base_ < out_.size());
    return out_[static_cast<std::size_t>(seq - send_base_)];
  }

  void transmit(std::uint64_t seq) {
    ++transmissions_;
    if (link_down_) return;  // severed at launch
    // The loss coin is only tossed when loss is possible: a loss-free
    // channel consumes no randomness per packet, so its RNG stream position
    // is independent of traffic volume (and the hot path skips a draw).
    if (options_.loss_probability > 0.0 &&
        rng_->next_bool(options_.loss_probability)) {
      return;  // dropped
    }
    ++pending_events_;
    sim_->schedule_after(delay_ms_, [this, seq] {
      --pending_events_;
      on_data(seq);
    });
  }

  /// Delay before retransmission `attempts` of a packet fires again:
  /// exponential in the attempt count, capped, jittered. Consumes one RNG
  /// draw — only ever called on the (rare) retransmit path.
  [[nodiscard]] Time backoff_delay(std::uint32_t attempts) {
    const double cap =
        options_.retransmit_timeout_ms * options_.max_backoff_factor;
    double delay = options_.retransmit_timeout_ms;
    for (std::uint32_t i = 1; i < attempts && delay < cap; ++i) {
      delay *= options_.backoff_factor;
    }
    delay = std::min(delay, cap);
    return delay * (1.0 + rng_->next_double() * options_.backoff_jitter);
  }

  void arm_timer(Time deadline) {
    timer_ = sim_->schedule_at(deadline, [this] { on_timer(); });
  }

  /// The channel's single retransmit timer expired. Retransmit every
  /// packet whose deadline passed, then re-arm at the earliest remaining
  /// deadline. The timer is armed at (or before) the true earliest
  /// deadline; an early expiry — possible after acks released the packets
  /// it was armed for — just re-arms. A packet crossing its retransmission
  /// budget flips the channel into the fault state (once) but keeps
  /// probing at the capped cadence.
  void on_timer() {
    timer_ = Simulator::TimerId();
    if (out_.empty()) return;  // raced with the draining ack
    const Time now = sim_->now();
    bool any_due = false;
    Time earliest = std::numeric_limits<Time>::infinity();
    for (std::size_t i = 0; i < out_.size(); ++i) {
      OutPacket& packet = out_[i];
      if (packet.deadline <= now) {
        any_due = true;
        const std::uint32_t attempts = ++packet.attempts;
        if (attempts > options_.max_retransmits && !fault_.has_value()) {
          fault_ = ChannelFault{send_base_ + i, attempts, now};
          ++faults_entered_;
          if (on_fault_) on_fault_(*fault_);
        }
        transmit(send_base_ + i);
        packet.deadline = now + backoff_delay(attempts);
      }
      if (packet.deadline < earliest) earliest = packet.deadline;
    }
    if (any_due) ++retransmit_timer_fires_;
    // Once faulted with the endpoint *known* down (receiver crashed, link
    // severed), further probes are pointless and would keep the simulator
    // busy forever on an unrecovered outage: park until the recovery
    // notification resumes the channel. A fault with neither flag set
    // (pure loss exhausted the budget) keeps probing — only a delivered
    // probe can clear it.
    if (fault_.has_value() && (receiver_down_ || link_down_)) return;
    arm_timer(earliest);
  }

  /// Recovery notification (link or receiver back up): clear any fault,
  /// reset every packet's attempt budget, and retransmit the whole unacked
  /// window now instead of waiting out the current (possibly capped)
  /// backoff.
  void resume() {
    fault_.reset();
    if (out_.empty()) return;
    const Time now = sim_->now();
    for (std::size_t i = 0; i < out_.size(); ++i) {
      out_[i].attempts = 0;
      out_[i].deadline = now + options_.retransmit_timeout_ms;
      transmit(send_base_ + i);
    }
    if (timer_.valid()) {
      sim_->cancel(timer_);
      timer_ = Simulator::TimerId();
    }
    arm_timer(now + options_.retransmit_timeout_ms);
  }

  void on_data(std::uint64_t seq) {
    if (link_down_) return;      // died inside the partition (arrival-time cut)
    if (receiver_down_) return;  // crashed endpoint: silence, no ack
    // Fast path — the loss-free steady state: the next expected packet
    // arrives and nothing is parked behind it, so it goes straight to the
    // application without touching the reorder window.
    if (seq == next_deliver_seq_ && reorder_.empty()) {
      ++next_deliver_seq_;
      deliver_(std::move(out_slot(seq).payload));
      send_ack(next_deliver_seq_);
      return;
    }
    // Ack everything received so far (cumulative), even duplicates, so a
    // lost ack is repaired by the next arrival.
    if (seq >= next_deliver_seq_) {
      const std::size_t index =
          static_cast<std::size_t>(seq - next_deliver_seq_);
      if (index >= reorder_.size()) reorder_.resize(index + 1);
      if (!reorder_[index].has_value()) {
        // The payload still lives in the sender's (unacked) output buffer;
        // move it across the simulated wire. A later duplicate transmission
        // is ignored above, so the moved-from slot is never read again.
        reorder_[index].emplace(std::move(out_slot(seq).payload));
        ++reorder_buffered_;
      }
    }
    while (!reorder_.empty() && reorder_.front().has_value()) {
      T payload = std::move(*reorder_.front());
      reorder_.pop_front();
      --reorder_buffered_;
      ++next_deliver_seq_;
      deliver_(std::move(payload));
    }
    send_ack(next_deliver_seq_);
  }

  void send_ack(std::uint64_t cumulative) {
    if (link_down_) return;
    if (options_.loss_probability > 0.0 &&
        rng_->next_bool(options_.loss_probability)) {
      return;  // the ack dropped
    }
    ++pending_events_;
    sim_->schedule_after(delay_ms_, [this, cumulative] {
      --pending_events_;
      if (link_down_) return;  // the ack died inside the partition
      // Release every packet the receiver has consumed; once nothing is
      // left unacked, disarm the retransmit timer — acked packets never
      // wake the simulator again — and clear any fault: the "lost" window
      // made it through after all.
      while (!out_.empty() && send_base_ < cumulative) {
        out_.pop_front();
        ++send_base_;
      }
      if (out_.empty()) {
        fault_.reset();
        if (timer_.valid()) {
          sim_->cancel(timer_);
          timer_ = Simulator::TimerId();
        }
      }
    });
  }

  Simulator* sim_;
  Rng* rng_;
  Time delay_ms_;
  ChannelOptions options_;
  DeliverFn deliver_;
  FaultFn on_fault_;

  std::uint64_t next_send_seq_ = 0;
  std::uint64_t next_deliver_seq_ = 0;
  /// Sequence number of out_.front() (the lowest unacked packet).
  std::uint64_t send_base_ = 0;
  bool receiver_down_ = false;
  bool link_down_ = false;
  /// Output retransmission buffer, contiguous [send_base_, next_send_seq_).
  common::RingBuffer<OutPacket> out_;
  /// Receiver reorder window, slot i holds sequence next_deliver_seq_ + i.
  common::RingBuffer<std::optional<T>> reorder_;
  /// The channel's single retransmit timer (invalid when disarmed). Armed
  /// at or before the earliest outstanding deadline whenever out_ is
  /// non-empty.
  Simulator::TimerId timer_;
  /// Set while some packet has exhausted max_retransmits and the buffer
  /// has neither drained nor been resumed by a recovery notification.
  std::optional<ChannelFault> fault_;
  std::size_t faults_entered_ = 0;
  std::size_t reorder_buffered_ = 0;
  /// Scheduled data/ack events that have not fired yet (each captures
  /// `this`); part of the quiescent() destruction-safety predicate.
  std::size_t pending_events_ = 0;
  std::size_t transmissions_ = 0;
  std::size_t retransmit_timer_fires_ = 0;
};

}  // namespace decseq::sim
