// Reliable FIFO point-to-point channel (paper §3.1).
//
// The protocol assumes a FIFO channel between any two sequencers, an output
// retransmission buffer per successor, and acknowledgments that release
// buffered packets. This template implements exactly that: per-channel
// sequence numbers, a sender-side retransmission buffer with timeout, a
// receiver-side reorder buffer that releases payloads strictly in send
// order, and cumulative acks. With loss probability 0 (the experiment
// configuration) it degenerates to a pure propagation-delay pipe; tests
// inject loss to exercise the recovery path.
//
// Buffer layout (see docs/PROTOCOL.md, "Event engine"): both buffers are
// deques indexed by contiguous sequence numbers — the sender's output
// buffer starts at the lowest unacked packet and cumulative acks pop its
// front, the receiver's reorder window starts at the next sequence number
// to deliver. No tree maps, no per-packet node allocations.
//
// Retransmission timing: every unacked packet carries its own deadline
// (last transmission + timeout), but the channel arms a single cancellable
// simulator timer at the earliest of them instead of one event per packet.
// When the output buffer drains the timer is cancelled, so an acked packet
// never wakes the simulator: a loss-free run fires zero retransmit-timer
// callbacks (asserted by tests via retransmit_timer_fires()).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "sim/simulator.h"

namespace decseq::sim {

struct ChannelOptions {
  double loss_probability = 0.0;  ///< per-transmission drop chance
  Time retransmit_timeout_ms = 200.0;
  /// Safety valve for tests: after this many retransmissions of one packet
  /// the channel gives up and fails loudly (the paper assumes fail-free
  /// sequencers; silent message loss would corrupt the sequence space).
  std::size_t max_retransmits = 100;
};

/// One-directional reliable FIFO channel carrying payloads of type T.
template <typename T>
class Channel {
 public:
  using DeliverFn = std::function<void(T)>;

  Channel(Simulator& sim, Rng& rng, Time delay_ms, ChannelOptions options = {})
      : sim_(&sim), rng_(&rng), delay_ms_(delay_ms), options_(options) {
    DECSEQ_CHECK(delay_ms >= 0.0);
  }

  // In-flight events capture `this`; the channel must stay put once armed.
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Install the receiver callback; payloads arrive in send order,
  /// exactly once.
  void set_receiver(DeliverFn deliver) { deliver_ = std::move(deliver); }

  /// Fail-stop the receiving endpoint: while down, arriving transmissions
  /// are dropped without acknowledgment, so the sender's retransmission
  /// buffer holds everything and the timer keeps retrying; after
  /// set_receiver_down(false), retransmissions drain in order. Models a
  /// crashed sequencing machine whose state survives (synchronous
  /// replication) but which stops talking.
  void set_receiver_down(bool down) { receiver_down_ = down; }
  [[nodiscard]] bool receiver_down() const { return receiver_down_; }

  /// Sever the physical link: transmissions and acknowledgments sent while
  /// down vanish (a 100% loss window). Both endpoints stay alive; the
  /// retransmission machinery repairs everything on recovery.
  void set_link_down(bool down) { link_down_ = down; }
  [[nodiscard]] bool link_down() const { return link_down_; }

  /// Queue a payload for in-order delivery to the receiver.
  void send(T payload) {
    DECSEQ_CHECK_MSG(deliver_ != nullptr, "channel has no receiver");
    const std::uint64_t seq = next_send_seq_++;
    out_.push_back(
        OutPacket{std::move(payload), sim_->now() + options_.retransmit_timeout_ms});
    transmit(seq);
    if (!timer_.valid()) arm_timer(out_.back().deadline);
  }

  /// Packets still awaiting acknowledgment (the "output retransmission
  /// buffer" size from §3.1's state list).
  [[nodiscard]] std::size_t unacked() const { return out_.size(); }
  /// Packets buffered at the receiver waiting for earlier ones.
  [[nodiscard]] std::size_t reorder_buffered() const {
    return reorder_buffered_;
  }
  [[nodiscard]] std::size_t transmissions() const { return transmissions_; }
  /// Retransmit-timer expiries that found a timed-out packet (each one
  /// retransmits at least one packet). Zero in a loss-free run whose acks
  /// return within the timeout: the cumulative ack cancels the timer first.
  [[nodiscard]] std::size_t retransmit_timer_fires() const {
    return retransmit_timer_fires_;
  }
  [[nodiscard]] Time delay_ms() const { return delay_ms_; }

 private:
  struct OutPacket {
    T payload;
    /// When this packet times out (last transmission + timeout).
    Time deadline;
    std::uint32_t attempts = 0;  ///< retransmissions so far
  };

  /// The sender-side slot for `seq`; valid only while seq is unacked.
  [[nodiscard]] OutPacket& out_slot(std::uint64_t seq) {
    DECSEQ_CHECK(seq >= send_base_ && seq - send_base_ < out_.size());
    return out_[static_cast<std::size_t>(seq - send_base_)];
  }

  void transmit(std::uint64_t seq) {
    ++transmissions_;
    if (link_down_) return;  // severed link
    if (rng_->next_bool(options_.loss_probability)) return;  // dropped
    sim_->schedule_after(delay_ms_, [this, seq] { on_data(seq); });
  }

  void arm_timer(Time deadline) {
    timer_ = sim_->schedule_at(deadline, [this] { on_timer(); });
  }

  /// The channel's single retransmit timer expired. Retransmit every
  /// packet whose deadline passed, then re-arm at the earliest remaining
  /// deadline. The timer is armed at (or before) the true earliest
  /// deadline; an early expiry — possible after acks released the packets
  /// it was armed for — just re-arms.
  void on_timer() {
    timer_ = Simulator::TimerId();
    if (out_.empty()) return;  // raced with the draining ack
    const Time now = sim_->now();
    bool any_due = false;
    Time earliest = std::numeric_limits<Time>::infinity();
    for (std::size_t i = 0; i < out_.size(); ++i) {
      OutPacket& packet = out_[i];
      if (packet.deadline <= now) {
        any_due = true;
        const std::size_t attempts = ++packet.attempts;
        DECSEQ_CHECK_MSG(attempts <= options_.max_retransmits,
                         "packet " << send_base_ + i << " lost " << attempts
                                   << " times");
        transmit(send_base_ + i);
        packet.deadline = now + options_.retransmit_timeout_ms;
      }
      if (packet.deadline < earliest) earliest = packet.deadline;
    }
    if (any_due) ++retransmit_timer_fires_;
    arm_timer(earliest);
  }

  void on_data(std::uint64_t seq) {
    if (receiver_down_) return;  // crashed endpoint: silence, no ack
    // Fast path — the loss-free steady state: the next expected packet
    // arrives and nothing is parked behind it, so it goes straight to the
    // application without touching the reorder window.
    if (seq == next_deliver_seq_ && reorder_.empty()) {
      ++next_deliver_seq_;
      deliver_(std::move(out_slot(seq).payload));
      send_ack(next_deliver_seq_);
      return;
    }
    // Ack everything received so far (cumulative), even duplicates, so a
    // lost ack is repaired by the next arrival.
    if (seq >= next_deliver_seq_) {
      const std::size_t index =
          static_cast<std::size_t>(seq - next_deliver_seq_);
      if (index >= reorder_.size()) reorder_.resize(index + 1);
      if (!reorder_[index].has_value()) {
        // The payload still lives in the sender's (unacked) output buffer;
        // move it across the simulated wire. A later duplicate transmission
        // is ignored above, so the moved-from slot is never read again.
        reorder_[index].emplace(std::move(out_slot(seq).payload));
        ++reorder_buffered_;
      }
    }
    while (!reorder_.empty() && reorder_.front().has_value()) {
      T payload = std::move(*reorder_.front());
      reorder_.pop_front();
      --reorder_buffered_;
      ++next_deliver_seq_;
      deliver_(std::move(payload));
    }
    send_ack(next_deliver_seq_);
  }

  void send_ack(std::uint64_t cumulative) {
    if (link_down_) return;
    if (rng_->next_bool(options_.loss_probability)) return;
    sim_->schedule_after(delay_ms_, [this, cumulative] {
      // Release every packet the receiver has consumed; once nothing is
      // left unacked, disarm the retransmit timer — acked packets never
      // wake the simulator again.
      while (!out_.empty() && send_base_ < cumulative) {
        out_.pop_front();
        ++send_base_;
      }
      if (out_.empty() && timer_.valid()) {
        sim_->cancel(timer_);
        timer_ = Simulator::TimerId();
      }
    });
  }

  Simulator* sim_;
  Rng* rng_;
  Time delay_ms_;
  ChannelOptions options_;
  DeliverFn deliver_;

  std::uint64_t next_send_seq_ = 0;
  std::uint64_t next_deliver_seq_ = 0;
  /// Sequence number of out_.front() (the lowest unacked packet).
  std::uint64_t send_base_ = 0;
  bool receiver_down_ = false;
  bool link_down_ = false;
  /// Output retransmission buffer, contiguous [send_base_, next_send_seq_).
  std::deque<OutPacket> out_;
  /// Receiver reorder window, slot i holds sequence next_deliver_seq_ + i.
  std::deque<std::optional<T>> reorder_;
  /// The channel's single retransmit timer (invalid when disarmed). Armed
  /// at or before the earliest outstanding deadline whenever out_ is
  /// non-empty.
  Simulator::TimerId timer_;
  std::size_t reorder_buffered_ = 0;
  std::size_t transmissions_ = 0;
  std::size_t retransmit_timer_fires_ = 0;
};

}  // namespace decseq::sim
