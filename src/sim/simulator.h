// Packet-level discrete-event simulation engine (paper §4.1).
//
// The paper's simulator models propagation delay between routers but not
// loss or queuing; ours does the same in the experiments, while the channel
// layer (channel.h) can additionally inject loss to exercise the protocol's
// retransmission machinery in tests.
//
// Engine layout (see docs/PROTOCOL.md, "Event engine"):
//  * events live in a slab pool of reusable slots — scheduling in steady
//    state allocates nothing, and callbacks up to the inline budget of
//    sim::Simulator::Callback are stored in place;
//  * a 4-ary min-heap of (time, insertion sequence, slot) entries orders
//    events — ties fire FIFO, so runs are deterministic, and sift
//    comparisons stay inside the contiguous heap array;
//  * every slot records its heap position, which makes cancellation O(log n)
//    removal instead of a tombstone draining through the queue. Channels use
//    this to disarm a packet's retransmit timer the moment it is acked.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "sim/callback.h"

namespace decseq::sim {

/// Simulated time in milliseconds.
using Time = double;

/// A minimal event-queue simulator. Events fire in (time, insertion order):
/// ties are broken FIFO so runs are deterministic.
class Simulator {
 public:
  /// Inline budget covers the runtime's hottest captures: a channel's
  /// [this, seq] retransmit pair and an in-flight protocol::Message moved
  /// into a delivery leg. Bigger captures fall back to the heap (counted in
  /// callback_heap_spills()).
  using Callback = InlineCallback<120>;

  /// Handle to a scheduled event; valid until the event fires or is
  /// cancelled. Generation-tagged, so a stale handle never cancels a slot
  /// that was recycled for a newer event.
  class TimerId {
   public:
    constexpr TimerId() = default;
    [[nodiscard]] constexpr bool valid() const {
      return slot_ != kInvalidSlot;
    }

   private:
    friend class Simulator;
    constexpr TimerId(std::uint32_t slot, std::uint32_t gen)
        : slot_(slot), gen_(gen) {}
    static constexpr std::uint32_t kInvalidSlot = 0xffffffffu;
    std::uint32_t slot_ = kInvalidSlot;
    std::uint32_t gen_ = 0;
  };

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (>= now). Returns a handle usable
  /// with cancel(); callers that never cancel may ignore it. Takes the
  /// callable by forwarding reference so it is constructed once, directly
  /// in its pool slot.
  template <typename F>
  TimerId schedule_at(Time t, F&& cb) {
    DECSEQ_CHECK_MSG(t >= now_, "scheduling into the past: " << t << " < "
                                                             << now_);
    const std::uint32_t slot = acquire_slot();
    if constexpr (std::is_same_v<std::decay_t<F>, Callback>) {
      pool_[slot] = std::forward<F>(cb);
    } else {
      pool_[slot].emplace(std::forward<F>(cb));
    }
    ++events_scheduled_;
    if (pool_[slot].heap_allocated()) ++callback_heap_spills_;
    heap_push(HeapEntry{t, static_cast<std::uint32_t>(next_seq_++), slot});
    return TimerId(slot, meta_[slot].gen);
  }

  /// Schedule `cb` after `delay` milliseconds.
  template <typename F>
  TimerId schedule_after(Time delay, F&& cb) {
    DECSEQ_CHECK(delay >= 0.0);
    return schedule_at(now_ + delay, std::forward<F>(cb));
  }

  /// Cancel a pending event. Returns true iff the handle named an event
  /// that had not yet fired (the callback is destroyed, never invoked).
  /// Safe to call with stale or default handles.
  bool cancel(TimerId id) {
    if (id.slot_ >= meta_.size()) return false;
    SlotMeta& meta = meta_[id.slot_];
    if (meta.gen != id.gen_ || meta.heap_pos == kNpos) return false;
    heap_remove(meta.heap_pos);
    release_slot(id.slot_);
    ++timers_cancelled_;
    return true;
  }

  /// Run until the event queue drains. Returns the number of events fired.
  std::size_t run() {
    std::size_t fired = 0;
    while (!heap_.empty()) {
      fire_next();
      ++fired;
    }
    return fired;
  }

  /// Run until simulated time exceeds `deadline` or the queue drains.
  std::size_t run_until(Time deadline) {
    std::size_t fired = 0;
    while (!heap_.empty() && heap_.front().time <= deadline) {
      fire_next();
      ++fired;
    }
    if (now_ < deadline) now_ = deadline;
    return fired;
  }

  /// Fire every event strictly before `deadline` and stop, WITHOUT bumping
  /// the clock to the deadline (now() stays at the last fired event). This
  /// is the sharded runtime's slice primitive: a worker shard runs its
  /// events up to — but excluding — the next coordination fence, and the
  /// coordinator advances every clock to the fence together (advance_to),
  /// so events *at* the fence time still fire after the fence's control
  /// events, exactly like the single-simulator FIFO tie-break.
  std::size_t run_before(Time deadline) {
    std::size_t fired = 0;
    while (!heap_.empty() && heap_.front().time < deadline) {
      fire_next();
      ++fired;
    }
    return fired;
  }

  /// Time of the earliest pending event; +infinity when idle.
  [[nodiscard]] Time next_event_time() const {
    return heap_.empty() ? std::numeric_limits<Time>::infinity()
                         : heap_.front().time;
  }

  /// Jump the clock forward to `t` (no-op if already past it). Only legal
  /// when no pending event would thereby fire late — the virtual-time
  /// coordination fence: every shard is advanced to the fence before any
  /// fence-time mutation (channel recovery, fence-time publishes) runs, so
  /// those mutations observe the same now() they would in a single
  /// simulator.
  void advance_to(Time t) {
    DECSEQ_CHECK_MSG(heap_.empty() || heap_.front().time >= t,
                     "advance_to(" << t << ") would skip an event at "
                                   << heap_.front().time);
    if (now_ < t) now_ = t;
  }

  [[nodiscard]] bool idle() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  // --- Event counters (cumulative over the simulator's lifetime). ---
  [[nodiscard]] std::size_t events_fired() const { return events_fired_; }
  [[nodiscard]] std::size_t events_scheduled() const {
    return events_scheduled_;
  }
  [[nodiscard]] std::size_t timers_cancelled() const {
    return timers_cancelled_;
  }
  /// Scheduled callbacks too large for the inline buffer (allocation proxy).
  [[nodiscard]] std::size_t callback_heap_spills() const {
    return callback_heap_spills_;
  }

 private:
  static constexpr std::uint32_t kNpos = 0xffffffffu;

  /// Per-slot bookkeeping for cancel(), kept in a dense side array: sift
  /// operations rewrite heap_pos constantly, and an 8-byte-stride array
  /// stays cache-resident where the callback pool (one cache line per slot)
  /// would not.
  struct SlotMeta {
    std::uint32_t gen = 0;
    std::uint32_t heap_pos = kNpos;
  };

  /// Heap entries carry their own sort keys, so sift comparisons never
  /// leave the contiguous heap array. 16 bytes — four entries per cache
  /// line. The insertion sequence is truncated to 32 bits and compared in
  /// a wraparound window (serial-number arithmetic): FIFO tie-breaking
  /// only ever compares events scheduled for the same instant, which are
  /// never 2^31 schedule calls apart.
  struct HeapEntry {
    Time time;
    std::uint32_t seq;
    std::uint32_t slot;
  };

  [[nodiscard]] static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return static_cast<std::int32_t>(a.seq - b.seq) < 0;
  }

  std::uint32_t acquire_slot() {
    if (!free_.empty()) {
      const std::uint32_t slot = free_.back();
      free_.pop_back();
      return slot;
    }
    pool_.emplace_back();
    meta_.emplace_back();
    return static_cast<std::uint32_t>(pool_.size() - 1);
  }

  /// Return a slot to the free list; bumping the generation invalidates
  /// every outstanding TimerId for it.
  void release_slot(std::uint32_t slot) {
    pool_[slot].reset();
    meta_[slot].heap_pos = kNpos;
    ++meta_[slot].gen;
    free_.push_back(slot);
  }

  // 4-ary implicit heap of (time, seq, slot) entries: children of i are
  // 4i+1..4i+4. Shallower than a binary heap, and the sort keys travel with
  // the entries, so sift comparisons never leave the heap array.
  void heap_push(HeapEntry entry) {
    meta_[entry.slot].heap_pos = static_cast<std::uint32_t>(heap_.size());
    heap_.push_back(entry);
    sift_up(static_cast<std::uint32_t>(heap_.size() - 1));
  }

  void heap_remove(std::uint32_t pos) {
    const std::uint32_t last = static_cast<std::uint32_t>(heap_.size() - 1);
    if (pos != last) {
      heap_[pos] = heap_[last];
      meta_[heap_[pos].slot].heap_pos = pos;
    }
    heap_.pop_back();
    if (pos < heap_.size()) {
      // The element moved into `pos` may belong either further down or
      // further up; one of the two sifts is a no-op.
      const std::uint32_t moved = heap_[pos].slot;
      sift_down(pos);
      sift_up(meta_[moved].heap_pos);
    }
  }

  void sift_up(std::uint32_t pos) {
    const HeapEntry entry = heap_[pos];
    while (pos > 0) {
      const std::uint32_t parent = (pos - 1) / 4;
      if (!before(entry, heap_[parent])) break;
      heap_[pos] = heap_[parent];
      meta_[heap_[pos].slot].heap_pos = pos;
      pos = parent;
    }
    heap_[pos] = entry;
    meta_[entry.slot].heap_pos = pos;
  }

  void sift_down(std::uint32_t pos) {
    const std::uint32_t size = static_cast<std::uint32_t>(heap_.size());
    const HeapEntry entry = heap_[pos];
    while (true) {
      const std::uint32_t first_child = 4 * pos + 1;
      if (first_child >= size) break;
      std::uint32_t best = first_child;
      const std::uint32_t last_child =
          std::min(first_child + 3, size - 1);
      for (std::uint32_t c = first_child + 1; c <= last_child; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], entry)) break;
      heap_[pos] = heap_[best];
      meta_[heap_[pos].slot].heap_pos = pos;
      pos = best;
    }
    heap_[pos] = entry;
    meta_[entry.slot].heap_pos = pos;
  }

  void fire_next() {
    const HeapEntry front = heap_.front();
    now_ = front.time;
    // Move the callback out and free the slot before invoking: the callback
    // may schedule new events (and reuse this very slot).
    Callback cb = std::move(pool_[front.slot]);
    heap_remove(0);
    release_slot(front.slot);
    ++events_fired_;
    cb();
  }

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t events_fired_ = 0;
  std::size_t events_scheduled_ = 0;
  std::size_t timers_cancelled_ = 0;
  std::size_t callback_heap_spills_ = 0;
  std::vector<Callback> pool_;
  std::vector<SlotMeta> meta_;
  std::vector<std::uint32_t> free_;
  std::vector<HeapEntry> heap_;
};

}  // namespace decseq::sim
