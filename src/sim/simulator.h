// Packet-level discrete-event simulation engine (paper §4.1).
//
// The paper's simulator models propagation delay between routers but not
// loss or queuing; ours does the same in the experiments, while the channel
// layer (channel.h) can additionally inject loss to exercise the protocol's
// retransmission machinery in tests.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.h"

namespace decseq::sim {

/// Simulated time in milliseconds.
using Time = double;

/// A minimal event-queue simulator. Events fire in (time, insertion order):
/// ties are broken FIFO so runs are deterministic.
class Simulator {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (>= now).
  void schedule_at(Time t, Callback cb) {
    DECSEQ_CHECK_MSG(t >= now_, "scheduling into the past: " << t << " < "
                                                             << now_);
    queue_.push(Event{t, next_seq_++, std::move(cb)});
  }

  /// Schedule `cb` after `delay` milliseconds.
  void schedule_after(Time delay, Callback cb) {
    DECSEQ_CHECK(delay >= 0.0);
    schedule_at(now_ + delay, std::move(cb));
  }

  /// Run until the event queue drains. Returns the number of events fired.
  std::size_t run() {
    std::size_t fired = 0;
    while (!queue_.empty()) {
      fire_next();
      ++fired;
    }
    return fired;
  }

  /// Run until simulated time exceeds `deadline` or the queue drains.
  std::size_t run_until(Time deadline) {
    std::size_t fired = 0;
    while (!queue_.empty() && queue_.top().time <= deadline) {
      fire_next();
      ++fired;
    }
    if (now_ < deadline) now_ = deadline;
    return fired;
  }

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t events_fired() const { return events_fired_; }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;
    Callback cb;

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void fire_next() {
    // Move the callback out before popping: it may schedule new events.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    ++events_fired_;
    event.cb();
  }

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t events_fired_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
};

}  // namespace decseq::sim
