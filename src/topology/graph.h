// Weighted undirected router graph: the physical network substrate that the
// sequencing overlay is mapped onto. Edge weights are propagation delays in
// milliseconds; the simulator models only propagation delay, matching the
// paper's packet-level simulator (§4.1).
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/ids.h"

namespace decseq::topology {

/// One directed half of an undirected link.
struct Edge {
  RouterId to;
  double delay_ms;
};

/// Adjacency-list graph over routers. Routers are dense ids [0, size).
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t num_routers) : adjacency_(num_routers) {}

  [[nodiscard]] std::size_t num_routers() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

  /// Append a new router and return its id.
  RouterId add_router() {
    adjacency_.emplace_back();
    return RouterId(static_cast<RouterId::underlying_type>(
        adjacency_.size() - 1));
  }

  /// Add an undirected link with the given propagation delay.
  void add_edge(RouterId a, RouterId b, double delay_ms) {
    DECSEQ_CHECK(a.valid() && b.valid() && a != b);
    DECSEQ_CHECK(a.value() < adjacency_.size());
    DECSEQ_CHECK(b.value() < adjacency_.size());
    DECSEQ_CHECK(delay_ms > 0.0);
    adjacency_[a.value()].push_back({b, delay_ms});
    adjacency_[b.value()].push_back({a, delay_ms});
    ++num_edges_;
  }

  [[nodiscard]] const std::vector<Edge>& neighbors(RouterId r) const {
    DECSEQ_CHECK(r.valid() && r.value() < adjacency_.size());
    return adjacency_[r.value()];
  }

 private:
  std::vector<std::vector<Edge>> adjacency_;
  std::size_t num_edges_ = 0;
};

}  // namespace decseq::topology
