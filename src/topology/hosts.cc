#include "topology/hosts.h"

#include <algorithm>
#include <limits>

namespace decseq::topology {

HostMap attach_hosts(const TransitStubTopology& topo,
                     const HostAttachmentParams& params, Rng& rng) {
  DECSEQ_CHECK(params.num_hosts >= 1);
  DECSEQ_CHECK(params.num_clusters >= 1);
  DECSEQ_CHECK(topo.num_stub_domains >= 1);
  DECSEQ_CHECK(!topo.stub_routers.empty());

  // Group stub routers by their domain so a cluster can draw from one domain.
  std::vector<std::vector<RouterId>> routers_by_domain(topo.num_stub_domains);
  for (const RouterId r : topo.stub_routers) {
    routers_by_domain[topo.stub_domain_of[r.value()]].push_back(r);
  }

  // Pick a distinct random stub domain per cluster when possible; with more
  // clusters than domains, reuse is unavoidable and acceptable.
  std::vector<std::size_t> domain_of_cluster(params.num_clusters);
  std::vector<std::size_t> domain_ids(topo.num_stub_domains);
  for (std::size_t i = 0; i < domain_ids.size(); ++i) domain_ids[i] = i;
  rng.shuffle(domain_ids);
  for (std::size_t c = 0; c < params.num_clusters; ++c) {
    domain_of_cluster[c] = domain_ids[c % domain_ids.size()];
  }

  // Deal hosts into clusters of near-equal size ("similar size clusters").
  // Within a domain, routers are dealt round-robin from a shuffled order so
  // hosts avoid sharing an attachment router (zero host-to-host delay)
  // unless the cluster outgrows the domain.
  std::vector<std::vector<RouterId>> shuffled = routers_by_domain;
  for (auto& rs : shuffled) rng.shuffle(rs);
  std::vector<std::size_t> next_router(topo.num_stub_domains, 0);

  std::vector<RouterId> attach(params.num_hosts);
  std::vector<std::size_t> cluster(params.num_hosts);
  for (std::size_t h = 0; h < params.num_hosts; ++h) {
    const std::size_t c = h % params.num_clusters;
    cluster[h] = c;
    const std::size_t domain = domain_of_cluster[c];
    auto& cursor = next_router[domain];
    attach[h] = shuffled[domain][cursor % shuffled[domain].size()];
    ++cursor;
  }
  return HostMap(std::move(attach), std::move(cluster));
}

}  // namespace decseq::topology
