// Host attachment.
//
// Per the paper (§4.1): hosts are grouped into similar-size clusters, each
// cluster is dropped uniformly at random into the topology, and hosts of the
// same cluster sit close to each other — modelling online communities that
// gather around a low-latency server. We realize a cluster as one stub
// domain: its hosts attach to random routers of that domain.
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "topology/shortest_path.h"
#include "topology/transit_stub.h"

namespace decseq::topology {

struct HostAttachmentParams {
  std::size_t num_hosts = 128;
  std::size_t num_clusters = 8;
};

/// The mapping from end hosts to their attachment routers.
class HostMap {
 public:
  HostMap(std::vector<RouterId> attach, std::vector<std::size_t> cluster)
      : attach_(std::move(attach)), cluster_(std::move(cluster)) {
    DECSEQ_CHECK(attach_.size() == cluster_.size());
  }

  [[nodiscard]] std::size_t num_hosts() const { return attach_.size(); }

  [[nodiscard]] RouterId router_of(NodeId host) const {
    DECSEQ_CHECK(host.valid() && host.value() < attach_.size());
    return attach_[host.value()];
  }

  [[nodiscard]] std::size_t cluster_of(NodeId host) const {
    DECSEQ_CHECK(host.valid() && host.value() < cluster_.size());
    return cluster_[host.value()];
  }

  /// Unicast (shortest-path) delay between two hosts, in ms.
  [[nodiscard]] double unicast_delay(NodeId a, NodeId b,
                                     DistanceOracle& oracle) const {
    return oracle.distance(router_of(a), router_of(b));
  }

  [[nodiscard]] const std::vector<RouterId>& attachment_routers() const {
    return attach_;
  }

 private:
  std::vector<RouterId> attach_;
  std::vector<std::size_t> cluster_;
};

/// Attach hosts in clusters to stub domains chosen uniformly at random.
[[nodiscard]] HostMap attach_hosts(const TransitStubTopology& topo,
                                   const HostAttachmentParams& params,
                                   Rng& rng);

}  // namespace decseq::topology
