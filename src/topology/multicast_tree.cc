#include "topology/multicast_tree.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace decseq::topology {

namespace {

/// Dijkstra with parent pointers (the shortest-path tree of the source).
void shortest_path_tree(const Graph& g, RouterId source,
                        std::vector<double>& dist,
                        std::vector<RouterId>& parent) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  dist.assign(g.num_routers(), kInf);
  parent.assign(g.num_routers(), RouterId{});
  using Entry = std::pair<double, RouterId::underlying_type>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[source.value()] = 0.0;
  parent[source.value()] = source;
  pq.emplace(0.0, source.value());
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (const Edge& e : g.neighbors(RouterId(u))) {
      const double nd = d + e.delay_ms;
      if (nd < dist[e.to.value()]) {
        dist[e.to.value()] = nd;
        parent[e.to.value()] = RouterId(u);
        pq.emplace(nd, e.to.value());
      }
    }
  }
}

}  // namespace

MulticastTree::MulticastTree(const Graph& graph, RouterId source,
                             const std::vector<RouterId>& destinations)
    : source_(source) {
  std::vector<double> dist;
  std::vector<RouterId> parent;
  shortest_path_tree(graph, source, dist, parent);

  parent_[source] = source;
  delay_[source] = 0.0;
  for (const RouterId dest : destinations) {
    DECSEQ_CHECK_MSG(dist[dest.value()] !=
                         std::numeric_limits<double>::infinity(),
                     "destination " << dest << " unreachable from " << source);
    // Walk the parent chain back to the source, grafting new routers onto
    // the tree; stop at the first router already present (shared prefix).
    std::size_t path_links = 0;
    RouterId cursor = dest;
    while (!parent_.contains(cursor)) {
      parent_[cursor] = parent[cursor.value()];
      delay_[cursor] = dist[cursor.value()];
      cursor = parent[cursor.value()];
    }
    // Unicast would traverse the full path for this destination.
    for (RouterId r = dest; r != source; r = parent[r.value()]) {
      ++path_links;
    }
    unicast_links_ += path_links;
  }
}

std::vector<std::pair<RouterId, RouterId>> MulticastTree::edges() const {
  std::vector<std::pair<RouterId, RouterId>> result;
  result.reserve(parent_.size());
  for (const auto& [child, parent] : parent_) {
    if (child != parent) result.emplace_back(parent, child);
  }
  return result;
}

std::vector<std::pair<RouterId, RouterId>> MulticastTree::path_edges(
    RouterId destination) const {
  std::vector<std::pair<RouterId, RouterId>> result;
  RouterId cursor = destination;
  while (cursor != source_) {
    const auto it = parent_.find(cursor);
    DECSEQ_CHECK_MSG(it != parent_.end(),
                     "router " << destination << " not in tree");
    result.emplace_back(it->second, cursor);
    cursor = it->second;
  }
  std::reverse(result.begin(), result.end());
  return result;
}

double MulticastTree::delay_to(RouterId destination) const {
  const auto it = delay_.find(destination);
  DECSEQ_CHECK_MSG(it != delay_.end(),
                   "router " << destination << " not in tree");
  return it->second;
}

void LinkStress::add_tree(const MulticastTree& tree) {
  for (const auto& [from, to] : tree.edges()) add(from, to);
}

std::size_t LinkStress::max_stress() const {
  std::size_t max = 0;
  for (const auto& [link, count] : stress_) max = std::max(max, count);
  return max;
}

std::size_t LinkStress::total_messages() const {
  std::size_t total = 0;
  for (const auto& [link, count] : stress_) total += count;
  return total;
}

}  // namespace decseq::topology
