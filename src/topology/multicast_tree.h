// Shortest-path multicast trees for the distribution phase.
//
// The protocol's third phase (§3) hands messages leaving the sequencing
// network to "a delivery tree and on to group members". Unicasting from the
// egress machine to every member reaches each member at the same time a
// shortest-path tree would (both follow shortest paths), but repeats the
// shared prefix of those paths once per member; the tree sends one copy per
// link. This module builds per-(source, group) shortest-path trees and
// quantifies that difference as *link stress* — messages crossing each
// physical link — which the distribution_tree bench compares against the
// unicast star.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "topology/graph.h"
#include "topology/shortest_path.h"

namespace decseq::topology {

/// A shortest-path tree from one source router to a set of destination
/// routers; edges follow Dijkstra parents, so tree delivery times equal
/// unicast delivery times.
class MulticastTree {
 public:
  /// Build the tree for `destinations` rooted at `source`.
  MulticastTree(const Graph& graph, RouterId source,
                const std::vector<RouterId>& destinations);

  [[nodiscard]] RouterId source() const { return source_; }

  /// Routers spanned by the tree (source, branch points, destinations).
  [[nodiscard]] std::size_t num_routers() const { return parent_.size(); }

  /// Directed edges of the tree as (parent, child) pairs.
  [[nodiscard]] std::vector<std::pair<RouterId, RouterId>> edges() const;

  /// Number of tree links — the per-message network cost of one multicast.
  [[nodiscard]] std::size_t num_links() const {
    return parent_.empty() ? 0 : parent_.size() - 1;
  }

  /// Total network cost (links crossed) of reaching the same destinations
  /// with independent unicasts; >= num_links(), with equality only when
  /// the paths share nothing.
  [[nodiscard]] std::size_t unicast_links() const { return unicast_links_; }

  /// Delivery delay to `destination` through the tree (== unicast delay).
  [[nodiscard]] double delay_to(RouterId destination) const;

  /// The (parent, child) links on the tree path from the source to
  /// `destination` — the links one unicast to it would cross.
  [[nodiscard]] std::vector<std::pair<RouterId, RouterId>> path_edges(
      RouterId destination) const;

 private:
  RouterId source_;
  /// parent_[r] = predecessor of r in the tree; source maps to itself.
  std::unordered_map<RouterId, RouterId> parent_;
  std::unordered_map<RouterId, double> delay_;
  std::size_t unicast_links_ = 0;
};

/// Per-link message counts ("link stress") accumulated over a set of
/// multicast sends, for comparing delivery strategies.
class LinkStress {
 public:
  /// Record one message crossing the directed link (from, to).
  void add(RouterId from, RouterId to) { ++stress_[key(from, to)]; }

  /// Record a whole tree carrying one message.
  void add_tree(const MulticastTree& tree);

  [[nodiscard]] std::size_t max_stress() const;
  [[nodiscard]] std::size_t total_messages() const;
  [[nodiscard]] std::size_t links_used() const { return stress_.size(); }

 private:
  static std::uint64_t key(RouterId a, RouterId b) {
    return (static_cast<std::uint64_t>(a.value()) << 32) | b.value();
  }
  std::unordered_map<std::uint64_t, std::size_t> stress_;
};

}  // namespace decseq::topology
