#include "topology/shortest_path.h"

#include <limits>
#include <queue>
#include <utility>

namespace decseq::topology {

std::vector<double> dijkstra(const Graph& g, RouterId source) {
  DECSEQ_CHECK(source.valid() && source.value() < g.num_routers());
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(g.num_routers(), kInf);
  using Entry = std::pair<double, RouterId::underlying_type>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[source.value()] = 0.0;
  pq.emplace(0.0, source.value());
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;  // stale entry
    for (const Edge& e : g.neighbors(RouterId(u))) {
      const double nd = d + e.delay_ms;
      if (nd < dist[e.to.value()]) {
        dist[e.to.value()] = nd;
        pq.emplace(nd, e.to.value());
      }
    }
  }
  return dist;
}

double DistanceOracle::distance(RouterId a, RouterId b) {
  // Canonical orientation: the same (a, b) query must return the exact
  // same double every time, independent of cache state. Graph distances
  // are symmetric mathematically, but Dijkstra from a and from b sums the
  // path's edge weights in opposite orders, which can differ by an ULP —
  // and an ULP is enough to reorder simultaneous simulator events (a
  // publisher's messages overtaking each other). Always answer from the
  // lower-id endpoint.
  const RouterId lo = std::min(a, b);
  const RouterId hi = std::max(a, b);
  return distances_from(lo)[hi.value()];
}

const std::vector<double>& DistanceOracle::distances_from(RouterId source) {
  DECSEQ_CHECK(source.valid() && source.value() < slot_of_.size());
  std::uint32_t& slot = slot_of_[source.value()];
  if (slot == kNoSlot) {
    rows_.push_back(
        std::make_unique<std::vector<double>>(dijkstra(*graph_, source)));
    slot = static_cast<std::uint32_t>(rows_.size() - 1);
  }
  return *rows_[slot];
}

void DistanceOracle::prime(const std::vector<RouterId>& sources) {
  for (const RouterId s : sources) (void)distances_from(s);
}

RouterId DistanceOracle::closest(const std::vector<RouterId>& candidates,
                                 RouterId target) {
  DECSEQ_CHECK(!candidates.empty());
  // One Dijkstra from the target answers every candidate; never cache a
  // per-candidate row for this query.
  const auto& dist = distances_from(target);
  RouterId best = candidates.front();
  double best_d = dist[best.value()];
  for (const RouterId c : candidates) {
    if (dist[c.value()] < best_d) {
      best = c;
      best_d = dist[c.value()];
    }
  }
  return best;
}

}  // namespace decseq::topology
