#include "topology/shortest_path.h"

#include <algorithm>
#include <queue>
#include <utility>

namespace decseq::topology {

std::vector<double> dijkstra(const Graph& g, RouterId source) {
  DECSEQ_CHECK(source.valid() && source.value() < g.num_routers());
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(g.num_routers(), kInf);
  using Entry = std::pair<double, RouterId::underlying_type>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[source.value()] = 0.0;
  pq.emplace(0.0, source.value());
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;  // stale entry
    for (const Edge& e : g.neighbors(RouterId(u))) {
      const double nd = d + e.delay_ms;
      if (nd < dist[e.to.value()]) {
        dist[e.to.value()] = nd;
        pq.emplace(nd, e.to.value());
      }
    }
  }
  return dist;
}

DistanceOracle::DistanceOracle(const Graph& g, DistanceOracleOptions options)
    : options_(options), num_routers_(g.num_routers()) {
  // CSR copy of the adjacency, preserving per-router edge order so every
  // relaxation happens in the same order (and on the same doubles) as a
  // walk of the source graph.
  adj_offset_.resize(num_routers_ + 1, 0);
  std::size_t total = 0;
  for (std::size_t v = 0; v < num_routers_; ++v) {
    adj_offset_[v] = static_cast<std::uint32_t>(total);
    total += g.neighbors(RouterId(static_cast<RouterId::underlying_type>(v)))
                 .size();
  }
  adj_offset_[num_routers_] = static_cast<std::uint32_t>(total);
  adj_target_.reserve(total);
  adj_delay_.reserve(total);
  for (std::size_t v = 0; v < num_routers_; ++v) {
    for (const Edge& e :
         g.neighbors(RouterId(static_cast<RouterId::underlying_type>(v)))) {
      adj_target_.push_back(e.to.value());
      adj_delay_.push_back(e.delay_ms);
    }
  }

  dist_.resize(num_routers_, kInf);
  dist_stamp_.resize(num_routers_, 0);
  settled_.resize(num_routers_, 0);
  target_stamp_.resize(num_routers_, 0);
  slot_of_.resize(num_routers_, kNoSlot);
  miss_count_.resize(num_routers_, 0);
}

void DistanceOracle::heap_push(double dist, std::uint32_t node) {
  heap_.push_back({dist, node});
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (heap_[parent].dist <= heap_[i].dist) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

DistanceOracle::HeapEntry DistanceOracle::heap_pop() {
  const HeapEntry top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  std::size_t i = 0;
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first_child = i * 4 + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + 4, n);
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (heap_[c].dist < heap_[best].dist) best = c;
    }
    if (heap_[i].dist <= heap_[best].dist) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
  return top;
}

bool DistanceOracle::mark_target(std::uint32_t node) {
  if (target_stamp_[node] == target_gen_) return false;
  target_stamp_[node] = target_gen_;
  return true;
}

std::size_t DistanceOracle::run_dijkstra(std::uint32_t source,
                                         std::vector<double>* row,
                                         std::size_t pending) {
  if (++stamp_ == 0) {
    // uint32 wraparound: every stamp is stale again — reset explicitly.
    std::fill(dist_stamp_.begin(), dist_stamp_.end(), 0u);
    stamp_ = 1;
  }
  heap_.clear();
  dist_[source] = 0.0;
  dist_stamp_[source] = stamp_;
  settled_[source] = 0;
  heap_push(0.0, source);
  while (!heap_.empty()) {
    const HeapEntry top = heap_pop();
    const std::uint32_t u = top.node;
    if (top.dist > dist_[u]) continue;  // stale entry (lazy deletion)
    settled_[u] = 1;
    if (row == nullptr && target_stamp_[u] == target_gen_) {
      ++stats_.settled;
      if (--pending == 0) return 0;
    }
    const std::uint32_t begin = adj_offset_[u];
    const std::uint32_t end = adj_offset_[u + 1];
    for (std::uint32_t e = begin; e < end; ++e) {
      const std::uint32_t v = adj_target_[e];
      const double nd = top.dist + adj_delay_[e];
      if (dist_stamp_[v] != stamp_) {
        dist_stamp_[v] = stamp_;
        settled_[v] = 0;
        dist_[v] = nd;
        heap_push(nd, v);
      } else if (nd < dist_[v]) {
        dist_[v] = nd;
        heap_push(nd, v);
      }
    }
  }
  if (row != nullptr) {
    row->resize(num_routers_);
    for (std::size_t v = 0; v < num_routers_; ++v) {
      (*row)[v] = dist_stamp_[v] == stamp_ ? dist_[v] : kInf;
    }
  }
  return pending;
}

const std::vector<double>& DistanceOracle::cache_row(std::uint32_t source) {
  // Evict least-recently-used rows past the byte budget (always keeping
  // room for this one); reuse the evicted storage — rows are all the same
  // size, so the buffer swap costs nothing.
  std::unique_ptr<std::vector<double>> storage;
  while (!rows_.empty() &&
         (rows_.size() + 1) * row_bytes() > options_.max_cache_bytes) {
    std::size_t victim = 0;
    for (std::size_t i = 1; i < rows_.size(); ++i) {
      if (rows_[i].last_used < rows_[victim].last_used) victim = i;
    }
    slot_of_[rows_[victim].source] = kNoSlot;
    storage = std::move(rows_[victim].data);
    if (victim != rows_.size() - 1) {
      rows_[victim] = std::move(rows_.back());
      slot_of_[rows_[victim].source] = static_cast<std::uint32_t>(victim);
    }
    rows_.pop_back();
    ++stats_.evictions;
  }
  if (storage == nullptr) storage = std::make_unique<std::vector<double>>();
  (void)run_dijkstra(source, storage.get(), 0);
  ++stats_.full_rows;
  slot_of_[source] = static_cast<std::uint32_t>(rows_.size());
  rows_.push_back({source, ++use_tick_, std::move(storage)});
  return *rows_.back().data;
}

const std::vector<double>& DistanceOracle::distances_from(RouterId source) {
  DECSEQ_CHECK(source.valid() && source.value() < num_routers_);
  const std::uint32_t slot = slot_of_[source.value()];
  if (slot != kNoSlot) {
    rows_[slot].last_used = ++use_tick_;
    return *rows_[slot].data;
  }
  return cache_row(source.value());
}

double DistanceOracle::distance(RouterId a, RouterId b) {
  // Canonical orientation: the same (a, b) query must return the exact
  // same double every time, independent of cache state. Graph distances
  // are symmetric mathematically, but Dijkstra from a and from b sums the
  // path's edge weights in opposite orders, which can differ by an ULP —
  // and an ULP is enough to reorder simultaneous simulator events (a
  // publisher's messages overtaking each other). Always answer from the
  // lower-id endpoint.
  const RouterId lo = std::min(a, b);
  const RouterId hi = std::max(a, b);
  DECSEQ_CHECK(lo.valid() && hi.value() < num_routers_);
  const std::uint32_t lov = lo.value();
  const std::uint32_t slot = slot_of_[lov];
  if (slot != kNoSlot) {
    rows_[slot].last_used = ++use_tick_;
    return (*rows_[slot].data)[hi.value()];
  }
  if (miss_count_[lov] >= options_.promote_after) {
    return cache_row(lov)[hi.value()];
  }
  ++miss_count_[lov];
  // Early-terminating point query: stop once `hi` settles. Its settled
  // distance is exactly what the full row would hold.
  ++target_gen_;
  (void)mark_target(hi.value());
  ++stats_.point_queries;
  (void)run_dijkstra(lov, nullptr, 1);
  return settled_dist(hi.value());
}

double DistanceOracle::distance_once(RouterId a, RouterId b) {
  const RouterId lo = std::min(a, b);
  const RouterId hi = std::max(a, b);
  DECSEQ_CHECK(lo.valid() && hi.value() < num_routers_);
  const std::uint32_t lov = lo.value();
  const std::uint32_t slot = slot_of_[lov];
  if (slot != kNoSlot) {
    rows_[slot].last_used = ++use_tick_;
    return (*rows_[slot].data)[hi.value()];
  }
  ++target_gen_;
  (void)mark_target(hi.value());
  ++stats_.point_queries;
  (void)run_dijkstra(lov, nullptr, 1);
  return settled_dist(hi.value());
}

RouterId DistanceOracle::closest(const std::vector<RouterId>& candidates,
                                 RouterId target) {
  DECSEQ_CHECK(!candidates.empty());
  DECSEQ_CHECK(target.valid() && target.value() < num_routers_);
  // One Dijkstra from the target answers every candidate; never cache a
  // per-candidate row for this query. From a cached target row this is a
  // pure lookup; otherwise one run settles the whole candidate set.
  const double* row = nullptr;
  const std::uint32_t slot = slot_of_[target.value()];
  if (slot != kNoSlot) {
    rows_[slot].last_used = ++use_tick_;
    row = rows_[slot].data->data();
  } else {
    ++target_gen_;
    std::size_t pending = 0;
    for (const RouterId c : candidates) {
      DECSEQ_CHECK(c.valid() && c.value() < num_routers_);
      if (mark_target(c.value())) ++pending;
    }
    ++stats_.point_queries;
    (void)run_dijkstra(target.value(), nullptr, pending);
  }
  RouterId best = candidates.front();
  double best_d = row != nullptr ? row[best.value()]
                                 : settled_dist(best.value());
  for (const RouterId c : candidates) {
    const double d =
        row != nullptr ? row[c.value()] : settled_dist(c.value());
    if (d < best_d) {
      best = c;
      best_d = d;
    }
  }
  return best;
}

void DistanceOracle::distances_between(RouterId common,
                                       const std::vector<RouterId>& targets,
                                       std::vector<double>& out) {
  DECSEQ_CHECK(common.valid() && common.value() < num_routers_);
  const std::uint32_t cv = common.value();
  out.resize(targets.size());
  // Targets on `common`'s canonical side (id >= common) all read from
  // common's row: one early-terminating run settles them together. Lower-id
  // targets must answer from their own side (see distance()) and go through
  // the point-query path one by one — repeated sources promote themselves
  // to cached rows.
  const std::uint32_t slot = slot_of_[cv];
  bool from_workspace = false;
  if (slot != kNoSlot) {
    rows_[slot].last_used = ++use_tick_;
  } else {
    ++target_gen_;
    std::size_t pending = 0;
    for (const RouterId t : targets) {
      DECSEQ_CHECK(t.valid() && t.value() < num_routers_);
      if (t.value() >= cv && mark_target(t.value())) ++pending;
    }
    if (pending > 0) {
      ++stats_.point_queries;
      (void)run_dijkstra(cv, nullptr, pending);
      from_workspace = true;
    }
  }
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const std::uint32_t tv = targets[i].value();
    if (tv < cv) continue;  // second pass below (it may run Dijkstras)
    if (from_workspace) {
      out[i] = settled_dist(tv);
    } else {
      const std::uint32_t s = slot_of_[cv];
      out[i] = s != kNoSlot ? (*rows_[s].data)[tv] : settled_dist(tv);
    }
  }
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (targets[i].value() < cv) out[i] = distance(targets[i], common);
  }
}

void DistanceOracle::prime(const std::vector<RouterId>& sources) {
  for (const RouterId s : sources) (void)distances_from(s);
}

}  // namespace decseq::topology
