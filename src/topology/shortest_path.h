// Shortest-path machinery. Messages in the evaluation travel on shortest
// unicast paths (paper §4.1); the sequencing overlay's performance is
// measured against those. A DistanceOracle memoizes per-source Dijkstra
// runs, since experiments query distances from a small set of routers
// (hosts' attachment points and sequencing machines) on a 10,000-router
// graph.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "topology/graph.h"

namespace decseq::topology {

/// Single-source shortest path distances (ms) to every router.
/// Unreachable routers get +infinity.
[[nodiscard]] std::vector<double> dijkstra(const Graph& g, RouterId source);

/// Caches distance vectors per source. Not thread-safe by design: each
/// experiment run owns its oracle.
class DistanceOracle {
 public:
  explicit DistanceOracle(const Graph& g) : graph_(&g) {}

  /// Distance in ms from `a` to `b` (symmetric).
  [[nodiscard]] double distance(RouterId a, RouterId b);

  /// Full distance vector from a source (computed once, then cached).
  [[nodiscard]] const std::vector<double>& distances_from(RouterId source);

  /// Among `candidates`, the one closest to `target` (ties: first).
  [[nodiscard]] RouterId closest(const std::vector<RouterId>& candidates,
                                 RouterId target);

  [[nodiscard]] std::size_t cached_sources() const { return cache_.size(); }

 private:
  const Graph* graph_;
  std::unordered_map<RouterId, std::vector<double>> cache_;
};

}  // namespace decseq::topology
