// Shortest-path machinery. Messages in the evaluation travel on shortest
// unicast paths (paper §4.1); the sequencing overlay's performance is
// measured against those. A DistanceOracle memoizes per-source Dijkstra
// runs, since experiments query distances from a small set of routers
// (hosts' attachment points and sequencing machines) on a 10,000-router
// graph. The cache is a flat array indexed by router id — the hot source
// set is small, so a direct slot table beats hashing on every distance
// lookup in the simulation hot path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "topology/graph.h"

namespace decseq::topology {

/// Single-source shortest path distances (ms) to every router.
/// Unreachable routers get +infinity.
[[nodiscard]] std::vector<double> dijkstra(const Graph& g, RouterId source);

/// Caches distance vectors per source. Not thread-safe by design: each
/// experiment run owns its oracle.
class DistanceOracle {
 public:
  explicit DistanceOracle(const Graph& g)
      : graph_(&g), slot_of_(g.num_routers(), kNoSlot) {}

  /// Distance in ms from `a` to `b` (symmetric).
  [[nodiscard]] double distance(RouterId a, RouterId b);

  /// Full distance vector from a source. Computed by one Dijkstra on first
  /// use, then served from the flat per-source cache; the reference stays
  /// valid for the oracle's lifetime.
  [[nodiscard]] const std::vector<double>& distances_from(RouterId source);

  /// Among `candidates`, the one closest to `target` (ties: first). Runs
  /// (at most) one Dijkstra — from the target — regardless of how many
  /// candidates there are.
  [[nodiscard]] RouterId closest(const std::vector<RouterId>& candidates,
                                 RouterId target);

  /// Precompute rows for a known hot source set (e.g. every host attachment
  /// router) in id order, so later queries never interleave Dijkstra runs.
  void prime(const std::vector<RouterId>& sources);

  [[nodiscard]] std::size_t cached_sources() const { return rows_.size(); }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  const Graph* graph_;
  /// Router id -> index into rows_, kNoSlot when not yet computed. A flat
  /// 4-byte-per-router table: O(1) lookups with no hashing.
  std::vector<std::uint32_t> slot_of_;
  /// Cached distance rows, in computation order. unique_ptr keeps row
  /// storage stable while rows_ grows (distances_from returns references).
  std::vector<std::unique_ptr<std::vector<double>>> rows_;
};

}  // namespace decseq::topology
