// Shortest-path machinery. Messages in the evaluation travel on shortest
// unicast paths (paper §4.1); the sequencing overlay's performance is
// measured against those. A DistanceOracle answers pairwise and per-source
// distance queries off a CSR copy of the adjacency with a pooled Dijkstra
// workspace (versioned visited stamps, a reusable 4-ary heap — no per-query
// allocation):
//
//   - Full per-source rows are cached in a flat slot table under a byte
//     budget (LRU eviction), so a large topology never accumulates dense
//     all-pairs state. At paper scale (10k routers) the default budget
//     never evicts and behavior matches the original unbounded cache.
//   - Point queries from a cold source run an early-terminating Dijkstra
//     that stops once the endpoint settles — the settled distance is exactly
//     the full row's value — and the source is promoted to a cached full
//     row only after repeated misses. closest() and the batched
//     distances_between() settle a whole target set in one such run.
//
// Every query is bit-identical to the original full-row implementation:
// a settled Dijkstra distance does not depend on when the run stops or on
// heap tie order, and distance(a, b) keeps its canonical lower-id
// orientation (see the comment in distance()).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "topology/graph.h"

namespace decseq::topology {

/// Single-source shortest path distances (ms) to every router.
/// Unreachable routers get +infinity.
[[nodiscard]] std::vector<double> dijkstra(const Graph& g, RouterId source);

struct DistanceOracleOptions {
  /// Byte budget for cached full rows (8 bytes per router per row). The
  /// least-recently-used row is evicted when exceeded; one row is always
  /// allowed so distances_from() works under any budget. The default is
  /// unbounded — the original behavior, and what paper-scale simulations
  /// rely on for their steady-state allocation discipline (a cached row is
  /// never silently dropped and recomputed mid-measurement).
  std::size_t max_cache_bytes = static_cast<std::size_t>(-1);
  /// Point-query misses from one source before it is promoted to a cached
  /// full row. 0 = promote immediately: every query computes (and caches)
  /// the source's full row, the original behavior. Nonzero defers the O(V)
  /// row to sources that are actually hot, so a cold source costs one
  /// early-terminating Dijkstra instead of a full row.
  std::uint32_t promote_after = 0;

  /// Preset for large topologies (the 100k+ control-plane compile): bounded
  /// row cache, point queries promoted after repeated misses. Distances are
  /// bit-identical to the default — only memory and work scheduling differ.
  [[nodiscard]] static DistanceOracleOptions scaled() {
    return {/*max_cache_bytes=*/128ull << 20, /*promote_after=*/4};
  }
};

/// Caches distance state per source. Not thread-safe by design: each
/// experiment run owns its oracle.
class DistanceOracle {
 public:
  explicit DistanceOracle(const Graph& g, DistanceOracleOptions options = {});

  /// Distance in ms from `a` to `b` (symmetric).
  [[nodiscard]] double distance(RouterId a, RouterId b);

  /// distance() for one-shot compile queries (channel delays: each pair is
  /// asked exactly once, at span-compile time). Bit-identical value, same
  /// canonical orientation, and a cached row is still used when present —
  /// but a cold source runs one early-terminating Dijkstra and is neither
  /// cached nor advanced toward promotion, so compiling a transition's new
  /// channels costs settled-prefix work instead of one full O(V log V) row
  /// per previously-unseen machine (the 10k-router cold-reconfigure spike).
  [[nodiscard]] double distance_once(RouterId a, RouterId b);

  /// Full distance vector from a source, computed by one Dijkstra and
  /// cached. The reference stays valid until the row is evicted by a later
  /// query past the cache budget (never, under the default budget, for
  /// paper-scale topologies); do not hold it across other oracle calls on
  /// budget-constrained oracles.
  [[nodiscard]] const std::vector<double>& distances_from(RouterId source);

  /// Among `candidates`, the one closest to `target` (ties: first). Runs
  /// (at most) one Dijkstra — from the target, stopping once every
  /// candidate settled — regardless of how many candidates there are.
  [[nodiscard]] RouterId closest(const std::vector<RouterId>& candidates,
                                 RouterId target);

  /// Batched pairwise queries: fills out[i] = distance(common, targets[i]),
  /// bit-identical to individual calls, settling all targets on `common`'s
  /// canonical side in a single early-terminating run instead of one
  /// Dijkstra per pair (the fan-out compile's per-member loop).
  void distances_between(RouterId common, const std::vector<RouterId>& targets,
                         std::vector<double>& out);

  /// Precompute rows for a known hot source set (e.g. every host attachment
  /// router) in id order, so later queries never interleave Dijkstra runs.
  void prime(const std::vector<RouterId>& sources);

  [[nodiscard]] std::size_t cached_sources() const { return rows_.size(); }
  [[nodiscard]] std::size_t cache_bytes() const {
    return rows_.size() * row_bytes();
  }

  /// Query-mix instrumentation (bench/telemetry).
  struct Stats {
    std::uint64_t full_rows = 0;      ///< full Dijkstra rows computed
    std::uint64_t point_queries = 0;  ///< early-terminating runs
    std::uint64_t settled = 0;        ///< nodes settled by point queries
    std::uint64_t evictions = 0;      ///< rows evicted under the budget
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  struct HeapEntry {
    double dist;
    std::uint32_t node;
  };

  [[nodiscard]] std::size_t row_bytes() const {
    return num_routers_ * sizeof(double) + sizeof(std::vector<double>);
  }
  /// Dijkstra from `source` on the pooled workspace. With `row` non-null,
  /// runs to completion and fills the complete distance vector. Otherwise
  /// stops once `pending` marked targets (target_stamp_ == target_gen_)
  /// have settled; callers read settled values out of dist_ before the next
  /// run. Returns the number of marked targets left unsettled (unreachable).
  std::size_t run_dijkstra(std::uint32_t source, std::vector<double>* row,
                           std::size_t pending);
  void heap_push(double dist, std::uint32_t node);
  [[nodiscard]] HeapEntry heap_pop();
  /// Compute-and-cache `source`'s full row, evicting LRU rows past the
  /// budget. Returns the cached row.
  const std::vector<double>& cache_row(std::uint32_t source);
  /// Mark `node` as a pending target for the next run; returns true if it
  /// was not already marked (distinct-target accounting).
  bool mark_target(std::uint32_t node);
  /// dist_ value of `node` after a run: settled distance or +inf.
  [[nodiscard]] double settled_dist(std::uint32_t node) const {
    return dist_stamp_[node] == stamp_ ? dist_[node] : kInf;
  }

  DistanceOracleOptions options_;
  std::size_t num_routers_ = 0;

  /// CSR adjacency: neighbors of router v are adj_target_/adj_delay_
  /// [adj_offset_[v], adj_offset_[v + 1]), in the source graph's edge order
  /// (same relaxation order as the original per-vector walk).
  std::vector<std::uint32_t> adj_offset_;
  std::vector<std::uint32_t> adj_target_;
  std::vector<double> adj_delay_;

  // Pooled Dijkstra workspace. dist_[v] is valid iff dist_stamp_[v] ==
  // stamp_; bumping stamp_ resets the whole workspace in O(1).
  std::vector<double> dist_;
  std::vector<std::uint32_t> dist_stamp_;
  std::vector<char> settled_;  ///< valid under the same stamp
  std::uint32_t stamp_ = 0;
  std::vector<HeapEntry> heap_;  ///< reusable 4-ary heap, lazy deletion
  std::vector<std::uint32_t> target_stamp_;  ///< multi-target marks
  std::uint32_t target_gen_ = 0;

  /// Router id -> index into rows_, kNoSlot when not cached. A flat
  /// 4-byte-per-router table: O(1) lookups with no hashing.
  std::vector<std::uint32_t> slot_of_;
  struct Row {
    std::uint32_t source;
    std::uint64_t last_used;
    /// unique_ptr keeps row storage stable while rows_ grows or reorders
    /// (distances_from returns references into it).
    std::unique_ptr<std::vector<double>> data;
  };
  std::vector<Row> rows_;
  std::uint64_t use_tick_ = 0;
  /// Point-query misses per source, for promotion to a full row.
  std::vector<std::uint16_t> miss_count_;

  Stats stats_;
};

}  // namespace decseq::topology
