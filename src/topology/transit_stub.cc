#include "topology/transit_stub.h"

#include <algorithm>
#include <limits>

namespace decseq::topology {

namespace {

double uniform_delay(Rng& rng, double lo, double hi) {
  return lo + rng.next_double() * (hi - lo);
}

/// Connect the routers of one domain: random spanning tree (each router
/// links to a random earlier one) plus extra random edges with probability
/// `extra_prob`, all with delays in [delay_lo, delay_hi].
void connect_domain(Graph& g, const std::vector<RouterId>& routers,
                    double extra_prob, double delay_lo, double delay_hi,
                    Rng& rng) {
  for (std::size_t i = 1; i < routers.size(); ++i) {
    const auto j = static_cast<std::size_t>(rng.next_below(i));
    g.add_edge(routers[i], routers[j],
               uniform_delay(rng, delay_lo, delay_hi));
  }
  for (std::size_t i = 0; i + 1 < routers.size(); ++i) {
    for (std::size_t j = i + 1; j < routers.size(); ++j) {
      // Spanning-tree edges above may duplicate; parallel edges are
      // harmless for shortest paths (the cheaper one wins).
      if (rng.next_bool(extra_prob)) {
        g.add_edge(routers[i], routers[j],
                   uniform_delay(rng, delay_lo, delay_hi));
      }
    }
  }
}

}  // namespace

TransitStubTopology generate_transit_stub(const TransitStubParams& params,
                                          Rng& rng) {
  DECSEQ_CHECK(params.transit_domains >= 1);
  DECSEQ_CHECK(params.routers_per_transit >= 1);
  DECSEQ_CHECK(params.routers_per_stub >= 1);

  TransitStubTopology topo;
  Graph& g = topo.graph;

  // 1. Transit domains.
  std::vector<std::vector<RouterId>> transit(params.transit_domains);
  for (auto& domain : transit) {
    domain.reserve(params.routers_per_transit);
    for (std::size_t i = 0; i < params.routers_per_transit; ++i) {
      domain.push_back(g.add_router());
    }
    connect_domain(g, domain, params.intra_domain_edge_prob,
                   params.intra_transit_delay_min,
                   params.intra_transit_delay_max, rng);
  }

  // 2. Core interconnect: a ring over the transit domains guarantees
  //    connectivity; extra random domain-to-domain links add path diversity.
  auto link_domains = [&](std::size_t a, std::size_t b) {
    const RouterId ra = rng.pick(transit[a]);
    const RouterId rb = rng.pick(transit[b]);
    g.add_edge(ra, rb,
               uniform_delay(rng, params.transit_to_transit_delay_min,
                             params.transit_to_transit_delay_max));
  };
  if (params.transit_domains > 1) {
    for (std::size_t d = 0; d < params.transit_domains; ++d) {
      link_domains(d, (d + 1) % params.transit_domains);
    }
    for (std::size_t i = 0; i < params.extra_transit_links; ++i) {
      const auto a = static_cast<std::size_t>(
          rng.next_below(params.transit_domains));
      auto b = static_cast<std::size_t>(
          rng.next_below(params.transit_domains));
      if (a == b) b = (b + 1) % params.transit_domains;
      link_domains(a, b);
    }
  }

  // 3. Stub domains: attached to each transit router.
  topo.stub_domain_of.assign(g.num_routers(), std::numeric_limits<std::size_t>::max());
  for (const auto& domain : transit) {
    for (const RouterId attach_point : domain) {
      for (std::size_t s = 0; s < params.stubs_per_transit_router; ++s) {
        std::vector<RouterId> stub;
        stub.reserve(params.routers_per_stub);
        for (std::size_t i = 0; i < params.routers_per_stub; ++i) {
          stub.push_back(g.add_router());
        }
        connect_domain(g, stub, params.intra_domain_edge_prob,
                       params.intra_stub_delay_min,
                       params.intra_stub_delay_max, rng);
        // Uplink from a random stub router to the transit router.
        g.add_edge(rng.pick(stub), attach_point,
                   uniform_delay(rng, params.stub_to_transit_delay_min,
                                 params.stub_to_transit_delay_max));
        const std::size_t stub_index = topo.num_stub_domains++;
        topo.stub_domain_of.resize(g.num_routers(),
                                   std::numeric_limits<std::size_t>::max());
        for (const RouterId r : stub) {
          topo.stub_domain_of[r.value()] = stub_index;
          topo.stub_routers.push_back(r);
        }
      }
    }
  }
  topo.stub_domain_of.resize(g.num_routers(),
                             std::numeric_limits<std::size_t>::max());
  return topo;
}

}  // namespace decseq::topology
