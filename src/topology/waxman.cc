#include "topology/waxman.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

namespace decseq::topology {

namespace {

double distance(const std::pair<double, double>& a,
                const std::pair<double, double>& b) {
  const double dx = a.first - b.first, dy = a.second - b.second;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

WaxmanTopology generate_waxman(const WaxmanParams& params, Rng& rng) {
  DECSEQ_CHECK(params.num_routers >= 2);
  WaxmanTopology topo;
  topo.position.reserve(params.num_routers);
  for (std::size_t i = 0; i < params.num_routers; ++i) {
    topo.graph.add_router();
    topo.position.push_back({rng.next_double() * params.plane_side_ms,
                             rng.next_double() * params.plane_side_ms});
  }

  const double diagonal = params.plane_side_ms * std::sqrt(2.0);
  std::set<std::pair<std::size_t, std::size_t>> edges;
  auto add_edge = [&](std::size_t a, std::size_t b) {
    if (a == b) return;
    const auto key = std::make_pair(std::min(a, b), std::max(a, b));
    if (!edges.insert(key).second) return;
    const double d = std::max(
        0.1, distance(topo.position[a], topo.position[b]));
    topo.graph.add_edge(RouterId(static_cast<unsigned>(a)),
                        RouterId(static_cast<unsigned>(b)), d);
  };

  // Connectivity: each router links to the nearest among a sample of the
  // already-placed ones (proximity spanning tree without the O(N^2) scan).
  for (std::size_t i = 1; i < params.num_routers; ++i) {
    std::size_t best = i - 1;
    double best_d = distance(topo.position[i], topo.position[best]);
    const std::size_t samples = std::min<std::size_t>(i, 16);
    for (std::size_t s = 0; s < samples; ++s) {
      const auto j = static_cast<std::size_t>(rng.next_below(i));
      const double d = distance(topo.position[i], topo.position[j]);
      if (d < best_d) {
        best = j;
        best_d = d;
      }
    }
    add_edge(i, best);
  }

  // Waxman shortcuts over sampled candidate pairs.
  for (std::size_t i = 0; i < params.num_routers; ++i) {
    for (std::size_t c = 0; c < params.candidates_per_router; ++c) {
      const auto j =
          static_cast<std::size_t>(rng.next_below(params.num_routers));
      if (j == i) continue;
      const double d = distance(topo.position[i], topo.position[j]);
      const double p = params.alpha * std::exp(-d / (params.beta * diagonal));
      if (rng.next_bool(p)) add_edge(i, j);
    }
  }
  return topo;
}

HostMap attach_hosts_waxman(const WaxmanTopology& topo,
                            const HostAttachmentParams& params, Rng& rng) {
  DECSEQ_CHECK(params.num_hosts >= 1 && params.num_clusters >= 1);
  const double side = [&] {
    double max_coord = 0.0;
    for (const auto& [x, y] : topo.position) {
      max_coord = std::max({max_coord, x, y});
    }
    return std::max(max_coord, 1.0);
  }();

  // One random spot per cluster; hosts attach to distinct routers nearest
  // their cluster's spot (round-robin through the sorted-by-distance list).
  std::vector<std::vector<RouterId>> nearest(params.num_clusters);
  for (std::size_t c = 0; c < params.num_clusters; ++c) {
    const std::pair<double, double> spot{rng.next_double() * side,
                                         rng.next_double() * side};
    // Partial selection: the hosts-per-cluster closest routers.
    const std::size_t need =
        params.num_hosts / params.num_clusters + 2;
    std::vector<std::pair<double, RouterId>> by_distance;
    by_distance.reserve(topo.position.size());
    for (std::size_t r = 0; r < topo.position.size(); ++r) {
      by_distance.push_back(
          {distance(spot, topo.position[r]), RouterId(static_cast<unsigned>(r))});
    }
    std::partial_sort(by_distance.begin(),
                      by_distance.begin() +
                          static_cast<long>(std::min(need, by_distance.size())),
                      by_distance.end());
    for (std::size_t k = 0; k < std::min(need, by_distance.size()); ++k) {
      nearest[c].push_back(by_distance[k].second);
    }
  }

  std::vector<RouterId> attach(params.num_hosts);
  std::vector<std::size_t> cluster(params.num_hosts);
  std::vector<std::size_t> cursor(params.num_clusters, 0);
  for (std::size_t h = 0; h < params.num_hosts; ++h) {
    const std::size_t c = h % params.num_clusters;
    cluster[h] = c;
    attach[h] = nearest[c][cursor[c] % nearest[c].size()];
    ++cursor[c];
  }
  return HostMap(std::move(attach), std::move(cluster));
}

}  // namespace decseq::topology
