// Flat random (Waxman) topology — GT-ITM's other standard model.
//
// Routers are scattered uniformly on a plane; link probability decays
// exponentially with distance (Waxman's classic model), link delay is the
// Euclidean distance. Used by the sensitivity bench to check that the
// paper's results do not hinge on the transit-stub hierarchy: the ordering
// layer only consumes pairwise delays.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "topology/graph.h"
#include "topology/hosts.h"

namespace decseq::topology {

struct WaxmanParams {
  std::size_t num_routers = 10000;
  /// Plane side length; delays are Euclidean distances in ms, so the
  /// farthest pair is ~ side * sqrt(2).
  double plane_side_ms = 200.0;
  /// Waxman parameters: P(edge) = alpha * exp(-d / (beta * L)) with L the
  /// plane diagonal.
  double alpha = 0.4;
  double beta = 0.15;
  /// Random candidate neighbours examined per router (the classic model
  /// examines all O(N^2) pairs; sampling keeps generation linear while
  /// preserving the degree/distance statistics).
  std::size_t candidates_per_router = 24;
};

struct WaxmanTopology {
  Graph graph;
  /// Router coordinates on the plane (for host attachment).
  std::vector<std::pair<double, double>> position;
};

/// Generate a connected Waxman topology (a proximity spanning tree
/// guarantees connectivity; Waxman-sampled edges add the distance-decayed
/// shortcuts).
[[nodiscard]] WaxmanTopology generate_waxman(const WaxmanParams& params,
                                             Rng& rng);

/// Attach hosts in clusters, like the transit-stub variant (§4.1): each
/// cluster gets a random spot on the plane and its hosts attach to routers
/// nearest that spot.
[[nodiscard]] HostMap attach_hosts_waxman(const WaxmanTopology& topo,
                                          const HostAttachmentParams& params,
                                          Rng& rng);

}  // namespace decseq::topology
