#include "transport/channel.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace decseq::transport {

// --- SendChannel ---------------------------------------------------------

SendChannel::SendChannel(Transport& transport, Rng& rng, EdgeId edge,
                         ChannelOptions options)
    : transport_(&transport), rng_(&rng), edge_(edge), options_(options) {
  DECSEQ_CHECK(options_.backoff_factor >= 1.0);
  DECSEQ_CHECK(options_.max_backoff_factor >= 1.0);
  DECSEQ_CHECK(options_.backoff_jitter >= 0.0);
}

SendChannel::~SendChannel() {
  if (timer_.valid()) transport_->cancel(timer_);
}

void SendChannel::send(const std::uint8_t* payload, std::size_t size,
                       std::uint8_t flags) {
  const std::uint64_t seq = next_send_seq_++;
  OutPacket packet;
  packet.frame =
      encode_frame(FrameType::kData, flags, edge_, seq, payload, size);
  packet.deadline = transport_->now_ms() + options_.retransmit_timeout_ms;
  ++transmissions_;
  transport_->send(edge_, packet.frame.data(), packet.frame.size());
  out_.push_back(std::move(packet));
  if (!timer_.valid()) arm_timer(out_.back().deadline);
}

void SendChannel::on_ack(std::uint64_t cumulative) {
  while (!out_.empty() && send_base_ < cumulative) {
    out_.pop_front();
    ++send_base_;
  }
  if (out_.empty()) {
    // The whole window made it through: any surfaced fault is over, and
    // acked packets must never wake the timer again.
    fault_.reset();
    if (timer_.valid()) {
      transport_->cancel(timer_);
      timer_ = Transport::TimerId();
    }
  }
}

double SendChannel::backoff_delay(std::uint32_t attempts) {
  const double cap =
      options_.retransmit_timeout_ms * options_.max_backoff_factor;
  double delay = options_.retransmit_timeout_ms;
  for (std::uint32_t i = 1; i < attempts && delay < cap; ++i) {
    delay *= options_.backoff_factor;
  }
  delay = std::min(delay, cap);
  return delay * (1.0 + rng_->next_double() * options_.backoff_jitter);
}

void SendChannel::arm_timer(double deadline) {
  const double now = transport_->now_ms();
  timer_ = transport_->schedule_after(std::max(0.0, deadline - now),
                                      [this] { on_timer(); });
}

void SendChannel::on_timer() {
  timer_ = Transport::TimerId();
  if (out_.empty()) return;  // raced with the draining ack
  const double now = transport_->now_ms();
  bool any_due = false;
  double earliest = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < out_.size(); ++i) {
    OutPacket& packet = out_[i];
    if (packet.deadline <= now) {
      any_due = true;
      const std::uint32_t attempts = ++packet.attempts;
      if (attempts > options_.max_retransmits && !fault_.has_value()) {
        fault_ = ChannelFault{send_base_ + i, attempts, now};
        ++faults_entered_;
        if (on_fault_) on_fault_(*fault_);
      }
      ++transmissions_;
      transport_->send(edge_, packet.frame.data(), packet.frame.size());
      packet.deadline = now + backoff_delay(attempts);
    }
    if (packet.deadline < earliest) earliest = packet.deadline;
  }
  if (any_due) ++retransmit_timer_fires_;
  // Unlike the simulator channel there is no known-down oracle to park on:
  // a faulted channel keeps probing at the capped cadence — a fault is a
  // status, never a wedge — until an ack drains the window.
  arm_timer(earliest);
}

// --- RecvChannel ---------------------------------------------------------

RecvChannel::RecvChannel(Transport& transport, EdgeId edge, DeliverFn deliver)
    : transport_(&transport), edge_(edge), deliver_(std::move(deliver)) {
  DECSEQ_CHECK(deliver_ != nullptr);
}

bool RecvChannel::on_data(std::uint64_t seq, std::uint8_t flags,
                          const std::uint8_t* payload, std::size_t size) {
  if (seq < next_deliver_seq_) {
    // Retransmit-induced duplicate of something already delivered: the ack
    // that released it was lost. Re-ack, drop.
    ++duplicates_;
    send_ack();
    return true;
  }
  const std::uint64_t ahead = seq - next_deliver_seq_;
  if (ahead >= kMaxReorderWindow) {
    // Beyond the reorder window: drop, but still send the cumulative ack.
    // A sender that legitimately ran a full window ahead of a stalled head
    // learns where the receiver actually is and stops retransmitting the
    // packets below it; staying silent here turned one stall into a
    // full-window retransmit storm (every dropped packet kept its timer).
    ++window_overruns_;
    send_ack();
    return false;
  }
  // Fast path: the next expected packet with nothing parked behind it.
  if (ahead == 0 && reorder_.empty()) {
    ++next_deliver_seq_;
    ++delivered_;
    deliver_(payload, size, flags);
    send_ack();
    return true;
  }
  const std::size_t index = static_cast<std::size_t>(ahead);
  if (index >= reorder_.size()) reorder_.resize(index + 1);
  if (!reorder_[index].has_value()) {
    Parked parked;
    parked.flags = flags;
    parked.payload.assign(payload, payload + size);
    reorder_[index].emplace(std::move(parked));
    ++reorder_buffered_;
  } else {
    ++duplicates_;
  }
  while (!reorder_.empty() && reorder_.front().has_value()) {
    Parked parked = std::move(*reorder_.front());
    reorder_.pop_front();
    --reorder_buffered_;
    ++next_deliver_seq_;
    ++delivered_;
    deliver_(parked.payload.data(), parked.payload.size(), parked.flags);
  }
  send_ack();
  return true;
}

void RecvChannel::send_ack() {
  const std::vector<std::uint8_t> frame =
      encode_frame(FrameType::kAck, 0, edge_, next_deliver_seq_);
  transport_->send(edge_, frame.data(), frame.size());
}

// --- ChannelSet ----------------------------------------------------------

void ChannelSet::add_sender(SendChannel* channel) {
  DECSEQ_CHECK(channel != nullptr);
  const bool inserted = senders_.emplace(channel->edge(), channel).second;
  DECSEQ_CHECK_MSG(inserted, "duplicate sender for edge " << channel->edge());
}

void ChannelSet::add_receiver(RecvChannel* channel) {
  DECSEQ_CHECK(channel != nullptr);
  const bool inserted = receivers_.emplace(channel->edge(), channel).second;
  DECSEQ_CHECK_MSG(inserted,
                   "duplicate receiver for edge " << channel->edge());
}

bool ChannelSet::handle(const std::uint8_t* data, std::size_t size,
                        const Origin& origin) {
  const std::optional<Frame> frame = decode_frame(data, size);
  if (!frame.has_value()) {
    ++rejected_;
    return false;
  }
  switch (frame->type) {
    case FrameType::kData: {
      const auto it = receivers_.find(frame->edge);
      if (it == receivers_.end()) break;
      if (!it->second->on_data(frame->seq, frame->flags, frame->payload,
                               frame->payload_size)) {
        break;
      }
      ++accepted_;
      return true;
    }
    case FrameType::kAck: {
      const auto it = senders_.find(frame->edge);
      if (it == senders_.end()) break;
      it->second->on_ack(frame->seq);
      ++accepted_;
      return true;
    }
    case FrameType::kJoin:
    case FrameType::kPeers:
      if (control_) {
        control_(*frame, origin);
        ++accepted_;
        return true;
      }
      break;
  }
  ++rejected_;
  return false;
}

}  // namespace decseq::transport
