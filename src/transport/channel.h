// Reliable FIFO channels over an unreliable datagram transport.
//
// The wire-facing twin of sim/channel.h: the same §3.1 algorithm — per
// channel sequence numbers, a sender-side output retransmission ring with
// one earliest-deadline timer, per-packet exponential backoff with capped
// multiplicative jitter, a receiver-side reorder ring released strictly in
// send order, cumulative acks — but split into its two endpoint halves,
// because over a real network the sender and receiver live in different
// processes. sim::Channel<T> keeps both halves in one object (and moves
// typed payloads by reference, which is what the figure benchmarks
// measure); here each half owns its state and everything on the wire is a
// frame (frame.h) of real bytes.
//
// Differences from the simulator channel, all forced by the deployment
// model rather than chosen:
//  * Retransmitted packets are the *stored encoded frames* — encode once,
//    resend bytes.
//  * There is no set_link_down / set_receiver_down: a real transport has
//    no oracle for remote failure. The fault state (max_retransmits
//    exhausted) therefore never parks the timer — the channel keeps
//    probing at the capped backoff cadence until an ack drains the window
//    (which clears the fault), exactly the sim channel's pure-loss fault
//    behavior.
//  * The receiver bounds its reorder window (kMaxReorderWindow): a valid
//    CRC does not make a sequence number sane, and an attacker-controlled
//    (or wildly corrupted) seq must not size an allocation. Packets beyond
//    the window are dropped but still acked with the highest-contiguous
//    cumulative seq — the sender's window advances past everything already
//    received and the retransmit machinery re-delivers the dropped packets
//    once the window has advanced.
//
// ChannelSet is the per-endpoint demultiplexer: it owns the map from edge
// id to channel half, parses each arriving datagram exactly once, routes
// DATA to the edge's receiver and ACK to the edge's sender, hands
// bootstrap frames (JOIN/PEERS) to a control hook, and counts everything
// it rejects — malformed frames, unknown edges, out-of-window packets —
// so the wire-robustness tests can assert that garbage is dropped, not
// acted on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/ring_buffer.h"
#include "common/rng.h"
#include "transport/frame.h"
#include "transport/transport.h"

namespace decseq::transport {

/// Tuning knobs; field meanings match sim::ChannelOptions (minus the
/// simulated loss coin — real networks bring their own).
struct ChannelOptions {
  double retransmit_timeout_ms = 50.0;
  std::size_t max_retransmits = 100;
  double backoff_factor = 2.0;
  double max_backoff_factor = 64.0;
  double backoff_jitter = 0.1;
};

/// Surfaced fault: the packet whose retransmission budget ran out.
struct ChannelFault {
  std::uint64_t seq = 0;
  std::uint32_t attempts = 0;
  double at = 0.0;
};

/// Sender half: numbers payloads, buffers the encoded frames until the
/// cumulative ack releases them, retransmits with backoff.
class SendChannel {
 public:
  using FaultFn = std::function<void(const ChannelFault&)>;

  SendChannel(Transport& transport, Rng& rng, EdgeId edge,
              ChannelOptions options = {});
  SendChannel(const SendChannel&) = delete;
  SendChannel& operator=(const SendChannel&) = delete;
  ~SendChannel();

  /// Queue `payload` for exactly-once in-order delivery at the peer.
  /// `flags` rides in the frame header (kFrameFlagFin for FIN payloads).
  void send(const std::uint8_t* payload, std::size_t size,
            std::uint8_t flags = 0);

  /// The peer's cumulative ack arrived: release every frame below it; a
  /// drained window disarms the timer and clears any fault.
  void on_ack(std::uint64_t cumulative);

  void set_fault_callback(FaultFn on_fault) { on_fault_ = std::move(on_fault); }

  [[nodiscard]] EdgeId edge() const { return edge_; }
  [[nodiscard]] bool faulted() const { return fault_.has_value(); }
  [[nodiscard]] const std::optional<ChannelFault>& fault() const {
    return fault_;
  }
  [[nodiscard]] std::size_t faults_entered() const { return faults_entered_; }
  [[nodiscard]] std::size_t unacked() const { return out_.size(); }
  [[nodiscard]] std::size_t transmissions() const { return transmissions_; }
  [[nodiscard]] std::size_t retransmit_timer_fires() const {
    return retransmit_timer_fires_;
  }

 private:
  struct OutPacket {
    std::vector<std::uint8_t> frame;  ///< full encoded DATA frame
    double deadline = 0.0;
    std::uint32_t attempts = 0;
  };

  [[nodiscard]] double backoff_delay(std::uint32_t attempts);
  void arm_timer(double deadline);
  void on_timer();

  Transport* transport_;
  Rng* rng_;
  EdgeId edge_;
  ChannelOptions options_;
  FaultFn on_fault_;

  std::uint64_t next_send_seq_ = 0;
  std::uint64_t send_base_ = 0;  ///< seq of out_.front()
  common::RingBuffer<OutPacket> out_;
  Transport::TimerId timer_;
  std::optional<ChannelFault> fault_;
  std::size_t faults_entered_ = 0;
  std::size_t transmissions_ = 0;
  std::size_t retransmit_timer_fires_ = 0;
};

/// Receiver half: reorders arrivals into send order, delivers exactly
/// once, acks cumulatively on every arrival (so a lost ack is repaired by
/// the next one, including retransmit-induced duplicates).
class RecvChannel {
 public:
  using DeliverFn = std::function<void(const std::uint8_t* payload,
                                       std::size_t size, std::uint8_t flags)>;

  /// Furthest ahead of the next expected sequence number a packet may be
  /// and still be buffered. Far beyond what the sender's window produces
  /// in practice; its job is bounding memory against insane seq values.
  static constexpr std::uint64_t kMaxReorderWindow = 4096;

  RecvChannel(Transport& transport, EdgeId edge, DeliverFn deliver);
  RecvChannel(const RecvChannel&) = delete;
  RecvChannel& operator=(const RecvChannel&) = delete;

  /// A DATA frame for this edge arrived. Returns false iff the packet was
  /// dropped for being beyond the reorder window (the drop is still acked
  /// with the highest-contiguous cumulative seq, so the sender's window
  /// advances instead of retransmitting everything below the drop).
  bool on_data(std::uint64_t seq, std::uint8_t flags,
               const std::uint8_t* payload, std::size_t size);

  [[nodiscard]] EdgeId edge() const { return edge_; }
  [[nodiscard]] std::size_t reorder_buffered() const {
    return reorder_buffered_;
  }
  [[nodiscard]] std::size_t delivered() const { return delivered_; }
  [[nodiscard]] std::size_t duplicates() const { return duplicates_; }
  /// Packets dropped for landing beyond the reorder window (each one was
  /// still acked cumulatively; see on_data).
  [[nodiscard]] std::size_t window_overruns() const {
    return window_overruns_;
  }
  [[nodiscard]] std::uint64_t next_deliver_seq() const {
    return next_deliver_seq_;
  }

 private:
  struct Parked {
    std::uint8_t flags = 0;
    std::vector<std::uint8_t> payload;
  };

  void send_ack();

  Transport* transport_;
  EdgeId edge_;
  DeliverFn deliver_;

  std::uint64_t next_deliver_seq_ = 0;
  common::RingBuffer<std::optional<Parked>> reorder_;
  std::size_t reorder_buffered_ = 0;
  std::size_t delivered_ = 0;
  std::size_t duplicates_ = 0;
  std::size_t window_overruns_ = 0;
};

/// Per-endpoint datagram demultiplexer: edge id → channel half.
class ChannelSet {
 public:
  using ControlFn = std::function<void(const Frame&, const Origin&)>;

  void add_sender(SendChannel* channel);
  void add_receiver(RecvChannel* channel);
  /// Bootstrap frames (JOIN/PEERS) land here instead of a channel.
  void set_control_handler(ControlFn handler) {
    control_ = std::move(handler);
  }

  /// Parse and route one datagram. Returns true iff the frame decoded and
  /// was accepted by its channel (or the control hook).
  bool handle(const std::uint8_t* data, std::size_t size,
              const Origin& origin);

  /// Datagrams dropped: undecodable frames, unknown edges, DATA beyond the
  /// receiver's reorder window. The robustness tests pin that garbage only
  /// ever increments this — it never reaches a channel or kills the
  /// process.
  [[nodiscard]] std::size_t rejected() const { return rejected_; }
  [[nodiscard]] std::size_t accepted() const { return accepted_; }

 private:
  std::unordered_map<EdgeId, SendChannel*> senders_;
  std::unordered_map<EdgeId, RecvChannel*> receivers_;
  ControlFn control_;
  std::size_t rejected_ = 0;
  std::size_t accepted_ = 0;
};

}  // namespace decseq::transport
