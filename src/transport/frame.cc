#include "transport/frame.h"

#include <array>

namespace decseq::transport {

namespace {

/// Table for the reflected IEEE polynomial, built once at startup.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void put_u32le(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void put_u64le(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint32_t get_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t get_u64le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = v << 8 | p[i];
  return v;
}

constexpr std::size_t kCrcOffset = 20;

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                    std::uint32_t seed) {
  const auto& table = crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> encode_frame(FrameType type, std::uint8_t flags,
                                       EdgeId edge, std::uint64_t seq,
                                       const std::uint8_t* payload,
                                       std::size_t payload_size) {
  std::vector<std::uint8_t> out(kFrameHeaderBytes + payload_size);
  out[0] = kFrameMagic0;
  out[1] = kFrameMagic1;
  out[2] = kFrameVersion;
  out[3] = static_cast<std::uint8_t>(type);
  out[4] = flags;
  // out[5..7] reserved, already zero
  put_u32le(out.data() + 8, edge);
  put_u64le(out.data() + 12, seq);
  // CRC computed with its own field zeroed, then patched in.
  if (payload_size > 0) {
    std::copy(payload, payload + payload_size,
              out.begin() + static_cast<std::ptrdiff_t>(kFrameHeaderBytes));
  }
  put_u32le(out.data() + kCrcOffset, crc32(out.data(), out.size()));
  return out;
}

std::optional<Frame> decode_frame(const std::uint8_t* data, std::size_t size) {
  if (size < kFrameHeaderBytes) return std::nullopt;
  if (data[0] != kFrameMagic0 || data[1] != kFrameMagic1) return std::nullopt;
  if (data[2] != kFrameVersion) return std::nullopt;
  const std::uint8_t type = data[3];
  if (type < 1 || type > 4) return std::nullopt;
  if (data[5] != 0 || data[6] != 0 || data[7] != 0) return std::nullopt;
  const std::uint32_t stated = get_u32le(data + kCrcOffset);
  // Recompute over the frame with the CRC field zeroed — without mutating
  // the caller's buffer: CRC over [0, 20), four zero bytes, then the rest.
  static constexpr std::uint8_t kZeros[4] = {0, 0, 0, 0};
  std::uint32_t c = crc32(data, kCrcOffset);
  c = crc32(kZeros, 4, c);
  c = crc32(data + kFrameHeaderBytes, size - kFrameHeaderBytes, c);
  if (c != stated) return std::nullopt;
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.flags = data[4];
  frame.edge = get_u32le(data + 8);
  frame.seq = get_u64le(data + 12);
  frame.payload = data + kFrameHeaderBytes;
  frame.payload_size = size - kFrameHeaderBytes;
  return frame;
}

std::vector<std::uint8_t> encode_peers(const std::vector<PeerAddr>& peers) {
  std::vector<std::uint8_t> out(peers.size() * 10);
  std::uint8_t* p = out.data();
  for (const PeerAddr& peer : peers) {
    put_u32le(p, peer.rank);
    // The address is stored as its four network-order bytes, verbatim.
    p[4] = static_cast<std::uint8_t>(peer.ip_be);
    p[5] = static_cast<std::uint8_t>(peer.ip_be >> 8);
    p[6] = static_cast<std::uint8_t>(peer.ip_be >> 16);
    p[7] = static_cast<std::uint8_t>(peer.ip_be >> 24);
    p[8] = static_cast<std::uint8_t>(peer.port);
    p[9] = static_cast<std::uint8_t>(peer.port >> 8);
    p += 10;
  }
  return out;
}

std::optional<std::vector<PeerAddr>> decode_peers(const Frame& frame) {
  if (frame.type != FrameType::kPeers) return std::nullopt;
  if (frame.payload_size != frame.seq * 10) return std::nullopt;
  std::vector<PeerAddr> peers(static_cast<std::size_t>(frame.seq));
  const std::uint8_t* p = frame.payload;
  for (PeerAddr& peer : peers) {
    peer.rank = get_u32le(p);
    peer.ip_be = static_cast<std::uint32_t>(p[4]) |
                 static_cast<std::uint32_t>(p[5]) << 8 |
                 static_cast<std::uint32_t>(p[6]) << 16 |
                 static_cast<std::uint32_t>(p[7]) << 24;
    peer.port = static_cast<std::uint16_t>(p[8] |
                                           static_cast<std::uint16_t>(p[9])
                                               << 8);
    p += 10;
  }
  return peers;
}

}  // namespace decseq::transport
