// Wire frame carried by every transport datagram.
//
// protocol/codec.cc pins the *message* encoding (ordering header + body);
// this header wraps it with what the wire additionally needs: which edge
// the datagram belongs to, the channel sequence number that makes the edge
// a reliable FIFO, the frame kind (data / ack / bootstrap), the FIN flag
// (deliberately not part of the pinned message codec — it is transport
// metadata, like a TCP flag), and an integrity checksum. Layout, fixed
// 24-byte header, every multi-byte integer little-endian and assembled
// byte-by-byte (no unaligned or host-endian loads — the codec audit that
// motivated this file found none in codec.cc either, because both are
// byte-oriented by construction):
//
//   offset  size  field
//   0       2     magic 0xDC 0x5E
//   2       1     version (1)
//   3       1     type (1=DATA, 2=ACK, 3=JOIN, 4=PEERS)
//   4       1     flags (bit 0: FIN travels in this datagram's payload)
//   5       3     reserved, must be zero
//   8       4     edge id
//   12      8     sequence number (DATA: channel seq; ACK: cumulative ack;
//                 JOIN: joining rank; PEERS: number of peers)
//   20      4     CRC-32 (IEEE 802.3, reflected) over the whole frame with
//                 this field zeroed
//   24      ...   payload (DATA: encode_message bytes; PEERS: address book)
//
// decode_frame validates magic/version/reserved/truncation and the CRC, so
// a truncated, bit-flipped, or garbage datagram is rejected before it can
// reach a channel — corruption costs a retransmit, never a desync (the
// wire-robustness tests in tests/transport_test.cc feed exactly those).
// The golden-hex test pins these bytes so the format is platform-stable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "transport/transport.h"

namespace decseq::transport {

inline constexpr std::uint8_t kFrameMagic0 = 0xDC;
inline constexpr std::uint8_t kFrameMagic1 = 0x5E;
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 24;

enum class FrameType : std::uint8_t {
  kData = 1,   ///< channel payload (carries one encoded protocol::Message)
  kAck = 2,    ///< cumulative acknowledgment, no payload
  kJoin = 3,   ///< bootstrap: "rank <seq> is listening at this origin"
  kPeers = 4,  ///< bootstrap: the coordinator's rank → address book
};

/// Frame flag bits. FIN rides here because the pinned message codec does
/// not encode it: the flag is reattached to the decoded message by the
/// receiving engine.
inline constexpr std::uint8_t kFrameFlagFin = 0x01;

/// A decoded frame header plus a view of the payload bytes inside the
/// original datagram buffer (valid only while that buffer lives).
struct Frame {
  FrameType type = FrameType::kData;
  std::uint8_t flags = 0;
  EdgeId edge = 0;
  std::uint64_t seq = 0;
  const std::uint8_t* payload = nullptr;
  std::size_t payload_size = 0;
};

/// CRC-32 (IEEE, reflected polynomial 0xEDB88320), the UDP-payload
/// integrity check the kernel's optional UDP checksum does not guarantee
/// end-to-end through proxies and rewrites.
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                                  std::uint32_t seed = 0);

/// Serialize header + payload into one datagram buffer (CRC filled in).
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    FrameType type, std::uint8_t flags, EdgeId edge, std::uint64_t seq,
    const std::uint8_t* payload = nullptr, std::size_t payload_size = 0);

/// Parse a datagram. Returns nullopt for anything malformed: short buffer,
/// bad magic/version, nonzero reserved bytes, unknown type, CRC mismatch.
[[nodiscard]] std::optional<Frame> decode_frame(const std::uint8_t* data,
                                                std::size_t size);

/// One entry of the PEERS address book (bootstrap payload).
struct PeerAddr {
  std::uint32_t rank = 0;
  std::uint32_t ip_be = 0;  ///< IPv4, network byte order
  std::uint16_t port = 0;   ///< host byte order
};

/// PEERS payload: per peer, rank u32 LE + address 4 raw bytes (network
/// order) + port u16 LE. The frame's seq field carries the entry count.
[[nodiscard]] std::vector<std::uint8_t> encode_peers(
    const std::vector<PeerAddr>& peers);
[[nodiscard]] std::optional<std::vector<PeerAddr>> decode_peers(
    const Frame& frame);

}  // namespace decseq::transport
