#include "transport/sim_transport.h"

#include <utility>

namespace decseq::transport {

double SimTransport::now_ms() { return net_->sim_->now(); }

void SimTransport::send(EdgeId edge, const std::uint8_t* data,
                        std::size_t size) {
  net_->transmit(index_, edge, data, size);
}

Transport::TimerId SimTransport::schedule_after(double delay_ms,
                                                sim::Simulator::Callback cb) {
  return net_->sim_->schedule_after(delay_ms, std::move(cb));
}

bool SimTransport::cancel(TimerId id) { return net_->sim_->cancel(id); }

void SimNet::add_endpoints(std::size_t count) {
  while (endpoints_.size() < count) {
    const auto index = static_cast<std::uint32_t>(endpoints_.size());
    endpoints_.emplace_back(new SimTransport(this, index));
  }
}

void SimNet::add_edge(EdgeId id, std::uint32_t a, std::uint32_t b,
                      SimEdgeOptions options) {
  DECSEQ_CHECK(a < endpoints_.size() && b < endpoints_.size() && a != b);
  DECSEQ_CHECK(options.delay_ms >= 0.0 && options.jitter_ms >= 0.0);
  const bool inserted = edges_.emplace(id, Edge{a, b, options}).second;
  DECSEQ_CHECK_MSG(inserted, "duplicate sim edge " << id);
}

void SimNet::set_edge_options(EdgeId id, SimEdgeOptions options) {
  const auto it = edges_.find(id);
  DECSEQ_CHECK_MSG(it != edges_.end(), "unknown sim edge " << id);
  it->second.options = options;
}

void SimNet::transmit(std::uint32_t from, EdgeId edge,
                      const std::uint8_t* data, std::size_t size) {
  const auto it = edges_.find(edge);
  DECSEQ_CHECK_MSG(it != edges_.end(), "send on unknown sim edge " << edge);
  const Edge& e = it->second;
  DECSEQ_CHECK_MSG(from == e.a || from == e.b,
                   "endpoint " << from << " does not own edge " << edge);
  const std::uint32_t to = from == e.a ? e.b : e.a;
  const SimEdgeOptions& opt = e.options;
  const auto draw_delay = [&] {
    double delay = opt.delay_ms;
    if (opt.jitter_ms > 0.0) delay += rng_.next_double() * opt.jitter_ms;
    return delay;
  };
  if (opt.loss_probability > 0.0 && rng_.next_bool(opt.loss_probability)) {
    ++datagrams_dropped_;
  } else {
    deliver_copy(from, to, std::vector<std::uint8_t>(data, data + size),
                 draw_delay());
  }
  if (opt.duplicate_probability > 0.0 &&
      rng_.next_bool(opt.duplicate_probability)) {
    deliver_copy(from, to, std::vector<std::uint8_t>(data, data + size),
                 draw_delay());
  }
}

void SimNet::deliver_copy(std::uint32_t from, std::uint32_t to,
                          std::vector<std::uint8_t> bytes, double delay) {
  sim_->schedule_after(delay, [this, from, to, bytes = std::move(bytes)] {
    ++datagrams_delivered_;
    SimTransport& dst = *endpoints_[to];
    if (!dst.sink_) return;
    Origin origin;
    origin.endpoint = from;
    dst.sink_(bytes.data(), bytes.size(), origin);
  });
}

}  // namespace decseq::transport
