// Simulator backend for the transport interface.
//
// A SimNet owns a set of SimTransport endpoints sharing one
// sim::Simulator: send(edge, bytes) copies the datagram and schedules its
// arrival at the edge's other endpoint after the edge's propagation delay,
// optionally dropping, duplicating, or jittering it (seeded — runs are
// bit-reproducible). Timers are the shared simulator's own.
//
// This is the deterministic driver for everything built on Transport: the
// channel tests exercise loss/reorder recovery without sockets, and the
// conformance test runs a whole multi-endpoint NodeEngine cluster —
// frames, codec, channels and all — inside one process, cross-checked
// against the in-memory PubSubSystem on the same scenario. The UDP backend
// then only has to get datagrams and clocks right; the protocol logic
// above is already proven on this one.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "sim/simulator.h"
#include "transport/transport.h"

namespace decseq::transport {

class SimNet;

/// Per-edge behavior of the simulated fabric.
struct SimEdgeOptions {
  double delay_ms = 0.05;
  double loss_probability = 0.0;
  double duplicate_probability = 0.0;
  /// Extra uniform [0, jitter_ms) added per transmission — with enough of
  /// it, datagrams genuinely reorder in flight.
  double jitter_ms = 0.0;
};

/// One endpoint of a SimNet. Created by SimNet::add_endpoints.
class SimTransport final : public Transport {
 public:
  [[nodiscard]] double now_ms() override;
  void send(EdgeId edge, const std::uint8_t* data, std::size_t size) override;
  void set_datagram_sink(DatagramSink sink) override {
    sink_ = std::move(sink);
  }
  TimerId schedule_after(double delay_ms,
                         sim::Simulator::Callback cb) override;
  bool cancel(TimerId id) override;

  [[nodiscard]] std::uint32_t index() const { return index_; }

 private:
  friend class SimNet;
  SimTransport(SimNet* net, std::uint32_t index) : net_(net), index_(index) {}

  SimNet* net_;
  std::uint32_t index_;
  DatagramSink sink_;
};

/// The fabric: endpoints, directed-edge table, and the chaos knobs.
class SimNet {
 public:
  SimNet(sim::Simulator& sim, std::uint64_t seed) : sim_(&sim), rng_(seed) {}

  /// Grow the world to `count` endpoints (indices 0..count-1).
  void add_endpoints(std::size_t count);
  [[nodiscard]] SimTransport& endpoint(std::size_t index) {
    DECSEQ_CHECK(index < endpoints_.size());
    return *endpoints_[index];
  }
  [[nodiscard]] std::size_t num_endpoints() const {
    return endpoints_.size();
  }

  /// Register a bidirectional edge between endpoints `a` and `b`: either
  /// endpoint's send(id, ...) arrives at the other.
  void add_edge(EdgeId id, std::uint32_t a, std::uint32_t b,
                SimEdgeOptions options = {});
  /// Adjust a registered edge's behavior mid-run (outage windows, loss
  /// sweeps).
  void set_edge_options(EdgeId id, SimEdgeOptions options);

  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }
  [[nodiscard]] std::size_t datagrams_delivered() const {
    return datagrams_delivered_;
  }
  [[nodiscard]] std::size_t datagrams_dropped() const {
    return datagrams_dropped_;
  }

 private:
  friend class SimTransport;

  struct Edge {
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    SimEdgeOptions options;
  };

  /// Called by an endpoint's send(): route to the edge's other end.
  void transmit(std::uint32_t from, EdgeId edge, const std::uint8_t* data,
                std::size_t size);
  void deliver_copy(std::uint32_t from, std::uint32_t to,
                    std::vector<std::uint8_t> bytes, double delay);

  sim::Simulator* sim_;
  Rng rng_;
  std::vector<std::unique_ptr<SimTransport>> endpoints_;
  std::unordered_map<EdgeId, Edge> edges_;
  std::size_t datagrams_delivered_ = 0;
  std::size_t datagrams_dropped_ = 0;
};

}  // namespace decseq::transport
