// Datagram transport abstraction — one protocol codebase, two drivers.
//
// Everything above this interface (reliable channels, the sequencing
// engine, the decseqd daemon) is written against three primitives:
//
//   * send(edge, bytes)      — fire a datagram at the peer of a directed
//                              edge; unreliable, unordered, may be dropped,
//                              duplicated, or reordered in flight;
//   * a datagram sink        — raw datagrams arriving at this endpoint,
//                              with the (transport-specific) origin of each;
//   * timers                 — cancellable one-shot callbacks in the
//                              endpoint's local clock, reusing the 4-ary
//                              slab-pooled heap from sim/simulator.h.
//
// Two backends implement it (the Protolib shape from SNIPPETS.md: one
// protocol engine driven either by a simulation environment or by real
// sockets and timers):
//
//   * SimTransport (sim_transport.h) — endpoints share a sim::Simulator;
//     datagrams are byte buffers scheduled across simulated propagation
//     delay, with per-edge loss/duplication/jitter knobs. Deterministic,
//     runs the whole multi-endpoint world in one process and one thread.
//   * UdpTransport (udp_transport.h) — one nonblocking UDP socket per
//     endpoint, edges mapped to peer socket addresses, timers driven by a
//     private simulator heap advanced to CLOCK_MONOTONIC between polls.
//
// Edges are *directed* and named by small dense integers agreed across the
// deployment (app/cluster_config.h derives the numbering from the cluster
// config); a datagram sent on edge e arrives at e's destination endpoint
// carrying e in its frame header, so one socket serves every channel.
//
// The simulated pub/sub stack (pubsub/system.h) deliberately does NOT go
// through this interface: its in-memory sim::Channel<Message> moves typed
// messages by reference with zero serialization, which is what the figure
// benchmarks measure. The transport layer is the wire-facing counterpart —
// same channel algorithm (channel.h), same codec, real bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "sim/simulator.h"

namespace decseq::transport {

/// Directed edge identifier, agreed across the deployment.
using EdgeId = std::uint32_t;

/// Where a datagram came from, as far as the backend can tell. UDP fills
/// in the sender's IPv4 address and port (used only by the JOIN bootstrap,
/// before edges exist); the simulator fills in the sending endpoint index.
struct Origin {
  std::uint32_t ip_be = 0;    ///< IPv4 in network byte order (UDP backend)
  std::uint16_t port = 0;     ///< UDP port, host byte order
  std::uint32_t endpoint = 0; ///< sending endpoint index (sim backend)
};

/// One endpoint's view of the datagram fabric plus its local timer wheel.
class Transport {
 public:
  using TimerId = sim::Simulator::TimerId;
  using DatagramSink =
      std::function<void(const std::uint8_t* data, std::size_t size,
                         const Origin& origin)>;

  virtual ~Transport() = default;

  /// Local clock in milliseconds (simulated time or monotonic wall time —
  /// only differences and orderings are meaningful).
  [[nodiscard]] virtual double now_ms() = 0;

  /// Fire a datagram at the destination of `edge`. Best effort: the bytes
  /// may never arrive, may arrive twice, or may arrive after later sends.
  virtual void send(EdgeId edge, const std::uint8_t* data,
                    std::size_t size) = 0;

  /// Install the arrival callback. One sink per endpoint; frame parsing
  /// and edge demultiplexing happen above (see ChannelSet in channel.h).
  virtual void set_datagram_sink(DatagramSink sink) = 0;

  /// Schedule `cb` after `delay_ms` on this endpoint's clock. The returned
  /// handle cancels it; generation-tagged, so stale handles are inert.
  virtual TimerId schedule_after(double delay_ms,
                                 sim::Simulator::Callback cb) = 0;
  virtual bool cancel(TimerId id) = 0;
};

}  // namespace decseq::transport
