#include "transport/udp_proxy.h"

#include <utility>
#include <vector>

namespace decseq::transport {

UdpProxy::UdpProxy(std::uint64_t seed, ProxyChaosOptions options)
    : io_("127.0.0.1", 0), rng_(seed), options_(options) {
  io_.set_datagram_sink(
      [this](const std::uint8_t* data, std::size_t size,
             const Origin& origin) { on_datagram(data, size, origin); });
}

void UdpProxy::set_endpoints(UdpAddr a, UdpAddr b) {
  a_ = a;
  b_ = b;
}

void UdpProxy::on_datagram(const std::uint8_t* data, std::size_t size,
                           const Origin& origin) {
  const UdpAddr from{origin.ip_be, origin.port};
  UdpAddr to;
  if (from == a_) {
    to = b_;
  } else if (from == b_) {
    to = a_;
  } else {
    ++dropped_;  // stray traffic; not one of ours
    return;
  }
  if (outage_ || (options_.drop_probability > 0.0 &&
                  rng_.next_bool(options_.drop_probability))) {
    ++dropped_;
    return;
  }
  forward(to, data, size);
  if (options_.duplicate_probability > 0.0 &&
      rng_.next_bool(options_.duplicate_probability)) {
    ++duplicated_;
    forward(to, data, size);
  }
}

void UdpProxy::forward(UdpAddr to, const std::uint8_t* data,
                       std::size_t size) {
  if (options_.reorder_probability > 0.0 &&
      rng_.next_bool(options_.reorder_probability)) {
    // Hold this one back; datagrams sent meanwhile overtake it.
    ++delayed_;
    const double delay = rng_.next_double() * options_.reorder_delay_ms;
    std::vector<std::uint8_t> copy(data, data + size);
    io_.schedule_after(delay, [this, to, copy = std::move(copy)] {
      ++forwarded_;
      io_.send_to(to, copy.data(), copy.size());
    });
    return;
  }
  ++forwarded_;
  io_.send_to(to, data, size);
}

}  // namespace decseq::transport
