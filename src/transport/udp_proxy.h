// Deterministic fault-injection UDP forwarder.
//
// Sits between two real UDP endpoints: each endpoint is configured to talk
// to the proxy's address instead of its peer, and the proxy relays every
// datagram to whichever configured endpoint did NOT send it — applying a
// seeded chaos policy on the way: drop with probability p, duplicate with
// probability q, and delay ("reorder") with probability r by a uniform
// draw up to reorder_delay_ms (a delayed datagram genuinely overtakes its
// successors). An outage window (set_outage(true)) swallows everything
// until lifted — the forced-partition fixture for the retransmit /
// backoff / fault-surfacing end-to-end test.
//
// Built from the same pieces as everything else: a UdpTransport provides
// the socket and the timer heap (delayed forwards are just timers), and
// the Rng seed makes a given traffic pattern's fault schedule reproducible.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "transport/udp_transport.h"

namespace decseq::transport {

struct ProxyChaosOptions {
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  double reorder_probability = 0.0;
  double reorder_delay_ms = 5.0;
};

class UdpProxy {
 public:
  UdpProxy(std::uint64_t seed, ProxyChaosOptions options = {});

  /// The address endpoints should send to instead of each other.
  [[nodiscard]] UdpAddr local_addr() const { return io_.local_addr(); }

  /// The two real endpoints. A datagram from an unknown source is dropped.
  void set_endpoints(UdpAddr a, UdpAddr b);

  void set_chaos(ProxyChaosOptions options) { options_ = options; }
  /// While true, every datagram (both directions) is swallowed.
  void set_outage(bool outage) { outage_ = outage; }
  [[nodiscard]] bool outage() const { return outage_; }

  /// Pump the proxy; call interleaved with the endpoints' own polls.
  std::size_t poll(double max_wait_ms) { return io_.poll(max_wait_ms); }

  [[nodiscard]] std::size_t forwarded() const { return forwarded_; }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t duplicated() const { return duplicated_; }
  [[nodiscard]] std::size_t delayed() const { return delayed_; }

 private:
  void on_datagram(const std::uint8_t* data, std::size_t size,
                   const Origin& origin);
  void forward(UdpAddr to, const std::uint8_t* data, std::size_t size);

  UdpTransport io_;
  Rng rng_;
  ProxyChaosOptions options_;
  UdpAddr a_{};
  UdpAddr b_{};
  bool outage_ = false;
  std::size_t forwarded_ = 0;
  std::size_t dropped_ = 0;
  std::size_t duplicated_ = 0;
  std::size_t delayed_ = 0;
};

}  // namespace decseq::transport
