#include "transport/udp_transport.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace decseq::transport {

namespace {

double monotonic_ms() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) * 1000.0 +
         static_cast<double>(ts.tv_nsec) / 1.0e6;
}

sockaddr_in to_sockaddr(UdpAddr addr) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = addr.ip_be;
  sa.sin_port = htons(addr.port);
  return sa;
}

/// Largest datagram we ever receive: a frame header plus an encoded
/// message; 64 KiB covers the UDP maximum.
constexpr std::size_t kRecvBufferBytes = 65536;

}  // namespace

std::uint32_t parse_ipv4(const std::string& dotted) {
  in_addr addr{};
  DECSEQ_CHECK_MSG(inet_pton(AF_INET, dotted.c_str(), &addr) == 1,
                   "bad IPv4 address: " << dotted);
  return addr.s_addr;
}

struct UdpTransport::Impl {
  int fd = -1;
  std::unordered_map<EdgeId, sockaddr_in> peers;
  std::vector<std::uint8_t> recv_buffer;
};

UdpTransport::UdpTransport(const std::string& ip, std::uint16_t port)
    : impl_(new Impl) {
  impl_->recv_buffer.resize(kRecvBufferBytes);
  impl_->fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  DECSEQ_CHECK_MSG(impl_->fd >= 0,
                   "socket() failed: " << std::strerror(errno));
  sockaddr_in bind_addr = to_sockaddr(UdpAddr{parse_ipv4(ip), port});
  DECSEQ_CHECK_MSG(::bind(impl_->fd,
                          reinterpret_cast<const sockaddr*>(&bind_addr),
                          sizeof(bind_addr)) == 0,
                   "bind() failed: " << std::strerror(errno));
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  DECSEQ_CHECK(::getsockname(impl_->fd, reinterpret_cast<sockaddr*>(&bound),
                             &len) == 0);
  local_.ip_be = bound.sin_addr.s_addr;
  local_.port = ntohs(bound.sin_port);
  clock_base_ = monotonic_ms();
}

UdpTransport::~UdpTransport() {
  if (impl_->fd >= 0) ::close(impl_->fd);
  delete impl_;
}

void UdpTransport::add_edge(EdgeId edge, UdpAddr peer) {
  impl_->peers[edge] = to_sockaddr(peer);
}

bool UdpTransport::has_edge(EdgeId edge) const {
  return impl_->peers.contains(edge);
}

void UdpTransport::send_to(UdpAddr peer, const std::uint8_t* data,
                           std::size_t size) {
  const sockaddr_in sa = to_sockaddr(peer);
  const ssize_t n =
      ::sendto(impl_->fd, data, size, 0,
               reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
  if (n < 0) {
    ++send_errors_;  // a dropped datagram; retransmission owns this
  } else {
    ++sent_;
  }
}

double UdpTransport::now_ms() {
  // Keep the timer heap's clock monotone with wall time even between
  // polls: channels read now_ms() when stamping deadlines.
  const double now = monotonic_ms() - clock_base_;
  return std::max(now, timers_.now());
}

void UdpTransport::send(EdgeId edge, const std::uint8_t* data,
                        std::size_t size) {
  const auto it = impl_->peers.find(edge);
  DECSEQ_CHECK_MSG(it != impl_->peers.end(),
                   "send on unregistered edge " << edge);
  const ssize_t n =
      ::sendto(impl_->fd, data, size, 0,
               reinterpret_cast<const sockaddr*>(&it->second),
               sizeof(it->second));
  if (n < 0) {
    ++send_errors_;
  } else {
    ++sent_;
  }
}

void UdpTransport::set_datagram_sink(DatagramSink sink) {
  sink_ = std::move(sink);
}

Transport::TimerId UdpTransport::schedule_after(double delay_ms,
                                                sim::Simulator::Callback cb) {
  // Advance the heap's clock first so "after" means "after wall-now", not
  // "after the last poll".
  timers_.run_until(monotonic_ms() - clock_base_);
  return timers_.schedule_after(std::max(0.0, delay_ms), std::move(cb));
}

bool UdpTransport::cancel(TimerId id) { return timers_.cancel(id); }

std::size_t UdpTransport::poll(double max_wait_ms) {
  DECSEQ_CHECK(max_wait_ms >= 0.0);
  double now = monotonic_ms() - clock_base_;
  timers_.run_until(now);

  // Sleep until the earliest timer or the caller's bound, whichever comes
  // first; a readable socket wakes us earlier.
  now = monotonic_ms() - clock_base_;
  double wait = max_wait_ms;
  const double next_timer = timers_.next_event_time();
  if (next_timer < std::numeric_limits<double>::infinity()) {
    wait = std::min(wait, std::max(0.0, next_timer - now));
  }
  pollfd pfd{};
  pfd.fd = impl_->fd;
  pfd.events = POLLIN;
  const int timeout = static_cast<int>(std::ceil(wait));
  ::poll(&pfd, 1, timeout);

  std::size_t delivered = 0;
  if ((pfd.revents & POLLIN) != 0) {
    while (true) {
      sockaddr_in from{};
      socklen_t from_len = sizeof(from);
      const ssize_t n = ::recvfrom(
          impl_->fd, impl_->recv_buffer.data(), impl_->recv_buffer.size(), 0,
          reinterpret_cast<sockaddr*>(&from), &from_len);
      if (n < 0) break;  // EAGAIN: drained
      ++received_;
      if (sink_) {
        Origin origin;
        origin.ip_be = from.sin_addr.s_addr;
        origin.port = ntohs(from.sin_port);
        sink_(impl_->recv_buffer.data(), static_cast<std::size_t>(n), origin);
        ++delivered;
      }
    }
  }
  timers_.run_until(monotonic_ms() - clock_base_);
  return delivered;
}

}  // namespace decseq::transport
