// Nonblocking UDP backend for the transport interface.
//
// One endpoint = one SOCK_DGRAM socket bound to a loopback (or given)
// address; a directed edge is a peer socket address registered with
// add_edge(), so send(edge, bytes) is a single sendto() and every inbound
// datagram — whatever edge its frame names — arrives on the one socket and
// is handed to the datagram sink with its source address (the JOIN
// bootstrap needs the source; channels demux by the edge id inside the
// frame).
//
// Timers reuse the 4-ary slab-pooled heap from sim/simulator.h verbatim: a
// private sim::Simulator whose clock is *driven by CLOCK_MONOTONIC* — each
// poll() advances it to wall-now with run_until(), firing whatever came
// due. The heap neither knows nor cares that "simulated milliseconds" are
// now real ones; schedule/cancel/backoff logic above is byte-for-byte the
// code the simulator runs (the Protolib ProtoTimer move).
//
// poll(max_wait_ms) is the whole event loop step:
//   1. advance timers to wall-now;
//   2. block in ::poll() on the socket until the earliest pending timer or
//      max_wait_ms, whichever is sooner;
//   3. drain every readable datagram into the sink;
//   4. advance timers again.
// Run loops (the decseqd daemon, the proxy, the tests) just call poll() in
// a loop and check their own exit conditions between calls.
//
// Send errors are deliberately not surfaced: a full socket buffer
// (EAGAIN/ENOBUFS) drops the datagram exactly like the network would, and
// the channel layer's retransmission already owns that failure mode. They
// are counted (send_errors()) for observability.
#pragma once

#include <cstdint>
#include <string>

#include "sim/simulator.h"
#include "transport/transport.h"

namespace decseq::transport {

/// A peer's socket address in plain-data form (no <netinet/in.h> in this
/// header; the .cc converts).
struct UdpAddr {
  std::uint32_t ip_be = 0;  ///< IPv4, network byte order
  std::uint16_t port = 0;   ///< host byte order

  friend bool operator==(const UdpAddr&, const UdpAddr&) = default;
};

/// Parse dotted-quad "a.b.c.d" into network byte order; CHECK-fails on
/// malformed input.
[[nodiscard]] std::uint32_t parse_ipv4(const std::string& dotted);

class UdpTransport final : public Transport {
 public:
  /// Bind to `ip`:`port` (port 0 = kernel-assigned; read it back with
  /// local_addr()). Throws CheckFailure if the socket cannot be set up.
  explicit UdpTransport(const std::string& ip = "127.0.0.1",
                        std::uint16_t port = 0);
  ~UdpTransport() override;
  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  [[nodiscard]] UdpAddr local_addr() const { return local_; }

  /// Map a directed edge to its peer. Re-registering an edge overwrites
  /// the peer address (the bootstrap registers the coordinator first, then
  /// the real address book).
  void add_edge(EdgeId edge, UdpAddr peer);
  [[nodiscard]] bool has_edge(EdgeId edge) const;

  /// Send a datagram straight to an address, outside any edge — the JOIN
  /// bootstrap, before the address book exists.
  void send_to(UdpAddr peer, const std::uint8_t* data, std::size_t size);

  /// One event-loop step; see file header. Returns the number of
  /// datagrams delivered to the sink.
  std::size_t poll(double max_wait_ms);

  // --- Transport interface ---
  [[nodiscard]] double now_ms() override;
  void send(EdgeId edge, const std::uint8_t* data, std::size_t size) override;
  void set_datagram_sink(DatagramSink sink) override;
  TimerId schedule_after(double delay_ms,
                         sim::Simulator::Callback cb) override;
  bool cancel(TimerId id) override;

  // --- Stats ---
  [[nodiscard]] std::size_t datagrams_sent() const { return sent_; }
  [[nodiscard]] std::size_t datagrams_received() const { return received_; }
  [[nodiscard]] std::size_t send_errors() const { return send_errors_; }

 private:
  struct Impl;  ///< holds the fd, peer table, and receive buffer
  Impl* impl_;

  UdpAddr local_;
  sim::Simulator timers_;
  DatagramSink sink_;
  double clock_base_ = 0.0;  ///< CLOCK_MONOTONIC at construction (ms)
  std::size_t sent_ = 0;
  std::size_t received_ = 0;
  std::size_t send_errors_ = 0;
};

}  // namespace decseq::transport
