// Counting operator new/delete for the whole test binary (see
// alloc_probe.h). Pure counting plus malloc passthrough — safe
// binary-wide, including under sanitizers.
#include "tests/alloc_probe.h"

#include <cstdlib>
#include <new>

namespace {
thread_local std::size_t g_test_allocs = 0;

void* test_counted_alloc(std::size_t size) {
  ++g_test_allocs;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
}  // namespace

namespace decseq::test {

std::size_t alloc_count() { return g_test_allocs; }

}  // namespace decseq::test

void* operator new(std::size_t size) { return test_counted_alloc(size); }
void* operator new[](std::size_t size) { return test_counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_test_allocs;
  const std::size_t a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
// The nothrow family must be replaced alongside the throwing one: under
// ASan the library-provided nothrow new (used by e.g. std::stable_sort's
// temporary buffer) would otherwise come from the sanitizer's allocator
// while our replaced operator delete frees with std::free — an
// alloc-dealloc mismatch. Defining all variants keeps every path on
// malloc/free.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_test_allocs;
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++g_test_allocs;
  return std::malloc(size);
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  ++g_test_allocs;
  const std::size_t a = static_cast<std::size_t>(align);
  return std::aligned_alloc(a, (size + a - 1) / a * a);
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return operator new(size, align, std::nothrow);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
