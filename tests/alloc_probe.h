// Binary-wide instrumented allocator for the test binary.
//
// alloc_probe.cc replaces the global operator new/delete with a counting
// passthrough (same idiom as bench/dataplane_bench.cc), so zero-allocation
// claims — the receiver's slab design, the full-system steady state — are
// asserted against real heap traffic, not modeled. One TU owns the
// replacement (the ODR allows exactly one per binary); every test reads
// the counter through this header.
#pragma once

#include <cstddef>

namespace decseq::test {

/// Heap allocations performed by this thread since the binary started.
/// Diff it around the section under test.
[[nodiscard]] std::size_t alloc_count();

}  // namespace decseq::test
