#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "baseline/centralized.h"
#include "baseline/per_group.h"
#include "baseline/propagation_graph.h"
#include "baseline/vector_clock.h"
#include "common/rng.h"
#include "sim/simulator.h"
#include "tests/test_util.h"
#include "topology/hosts.h"
#include "topology/shortest_path.h"
#include "topology/transit_stub.h"

namespace decseq::baseline {
namespace {

using test::G;
using test::N;

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng topo_rng(21);
    topo_ = topology::generate_transit_stub(test::small_topology(), topo_rng);
    hosts_ = std::make_unique<topology::HostMap>(topology::attach_hosts(
        topo_, {.num_hosts = 8, .num_clusters = 2}, topo_rng));
    oracle_ = std::make_unique<topology::DistanceOracle>(topo_.graph);
  }

  topology::TransitStubTopology topo_;
  std::unique_ptr<topology::HostMap> hosts_;
  std::unique_ptr<topology::DistanceOracle> oracle_;
  sim::Simulator sim_;
};

TEST_F(BaselineTest, CentralizedDeliversToGroupAndCountsLoad) {
  const auto m = test::make_membership(8, {{0, 1, 2}, {2, 3, 4}});
  Rng rng(1);
  CentralizedOrdering central(sim_, m, *hosts_, *oracle_, topo_.graph,
                              {CentralizedOptions::Placement::kMedian}, rng);
  std::map<NodeId, std::size_t> got;
  central.set_delivery_callback(
      [&](NodeId r, MsgId, GroupId, NodeId, sim::Time) { ++got[r]; });
  central.publish(N(0), G(0));
  central.publish(N(4), G(1));
  central.publish(N(2), G(0));
  sim_.run();
  EXPECT_EQ(central.sequencer_load(), 3u);  // every message transits it
  EXPECT_EQ(got[N(2)], 3u);                 // member of both groups
  EXPECT_EQ(got[N(0)], 2u);
  EXPECT_EQ(got[N(4)], 1u);
}

TEST_F(BaselineTest, CentralizedMedianNoFartherThanWorstHost) {
  const auto m = test::make_membership(8, {{0, 1, 2, 3, 4, 5, 6, 7}});
  Rng rng(2);
  CentralizedOrdering median(sim_, m, *hosts_, *oracle_, topo_.graph,
                             {CentralizedOptions::Placement::kMedian}, rng);
  double median_sum = 0.0;
  for (const RouterId r : hosts_->attachment_routers()) {
    median_sum += oracle_->distance(median.sequencer_router(), r);
  }
  for (const RouterId candidate : hosts_->attachment_routers()) {
    double sum = 0.0;
    for (const RouterId r : hosts_->attachment_routers()) {
      sum += oracle_->distance(candidate, r);
    }
    EXPECT_LE(median_sum, sum + 1e-9);
  }
}

TEST_F(BaselineTest, VectorClockDeliversCausally) {
  VectorClockBroadcast vc(sim_, 8, *hosts_, *oracle_);
  std::vector<std::pair<NodeId, MsgId>> deliveries;
  bool reacted = false;
  MsgId cause, effect;
  vc.set_delivery_callback(
      [&](NodeId receiver, const VcMessage& m, sim::Time) {
        deliveries.push_back({receiver, m.id});
        if (receiver == N(3) && m.id == cause && !reacted) {
          reacted = true;
          effect = vc.publish(N(3), G(0));
        }
      });
  cause = vc.publish(N(0), G(0));
  sim_.run();
  ASSERT_TRUE(reacted);
  // Everyone who saw both must see cause first.
  std::map<NodeId, std::vector<MsgId>> per_node;
  for (const auto& [node, msg] : deliveries) per_node[node].push_back(msg);
  for (const auto& [node, msgs] : per_node) {
    const auto ci = std::find(msgs.begin(), msgs.end(), cause);
    const auto ei = std::find(msgs.begin(), msgs.end(), effect);
    if (ci != msgs.end() && ei != msgs.end()) {
      EXPECT_LT(ci - msgs.begin(), ei - msgs.begin()) << "node " << node;
    }
  }
}

TEST_F(BaselineTest, VectorClockBuffersOutOfCausalOrder) {
  VectorClockBroadcast vc(sim_, 8, *hosts_, *oracle_);
  std::size_t delivered = 0;
  vc.set_delivery_callback(
      [&](NodeId, const VcMessage&, sim::Time) { ++delivered; });
  // Two concurrent messages and one dependent message: all must deliver.
  vc.publish(N(0), G(0));
  vc.publish(N(5), G(0));
  sim_.run();
  vc.publish(N(0), G(0));
  sim_.run();
  EXPECT_EQ(delivered, 3u * 7u);  // each broadcast reaches the 7 others
  for (unsigned n = 0; n < 8; ++n) {
    EXPECT_EQ(vc.node(N(n)).buffered(), 0u);
  }
}

TEST_F(BaselineTest, VectorClockOverheadIsLinearInNodes) {
  VectorClockBroadcast vc(sim_, 8, *hosts_, *oracle_);
  EXPECT_EQ(vc.header_bytes_per_message(), 4u + 4u + 8u * 8u);
}

TEST_F(BaselineTest, PerGroupSequencerOrdersWithinGroup) {
  const auto m = test::make_membership(8, {{0, 1, 2, 3}});
  Rng rng(3);
  PerGroupOrdering pg(sim_, m, *hosts_, *oracle_, rng);
  std::map<NodeId, std::vector<SeqNo>> seqs;
  pg.set_delivery_callback(
      [&](NodeId r, MsgId, GroupId, NodeId, SeqNo s, sim::Time) {
        seqs[r].push_back(s);
      });
  for (int i = 0; i < 6; ++i) {
    pg.publish(N(static_cast<unsigned>(i % 4)), G(0));
  }
  sim_.run();
  for (const auto& [node, observed] : seqs) {
    ASSERT_EQ(observed.size(), 6u);
    EXPECT_TRUE(std::is_sorted(observed.begin(), observed.end()))
        << "per-group sequence must arrive in order at node " << node;
  }
  EXPECT_TRUE(m.is_member(G(0), pg.sequencer_of(G(0))));
}

TEST_F(BaselineTest, PropagationGraphDeliversToAllMembers) {
  const auto m = test::make_membership(8, {{0, 1, 2, 3}, {2, 3, 4, 5}});
  PropagationGraphOrdering pg(sim_, m, *hosts_, *oracle_);
  std::map<NodeId, std::vector<MsgId>> got;
  pg.set_delivery_callback(
      [&](NodeId r, MsgId id, GroupId, NodeId, sim::Time) {
        got[r].push_back(id);
      });
  const MsgId a = pg.publish(N(0), G(0));
  const MsgId b = pg.publish(N(5), G(1));
  sim_.run();
  EXPECT_EQ(got[N(0)], std::vector<MsgId>{a});
  EXPECT_EQ(got[N(4)], std::vector<MsgId>{b});
  EXPECT_EQ(got[N(2)].size(), 2u);  // member of both
  EXPECT_EQ(got[N(3)].size(), 2u);
}

TEST_F(BaselineTest, PropagationGraphOrdersConsistently) {
  const auto m = test::make_membership(8, {{0, 1, 2, 3}, {2, 3, 4, 5}});
  PropagationGraphOrdering pg(sim_, m, *hosts_, *oracle_);
  std::map<NodeId, std::vector<MsgId>> got;
  pg.set_delivery_callback(
      [&](NodeId r, MsgId id, GroupId, NodeId, sim::Time) {
        got[r].push_back(id);
      });
  for (int i = 0; i < 10; ++i) {
    pg.publish(N(0), G(0));
    pg.publish(N(5), G(1));
  }
  sim_.run();
  // Overlap members 2 and 3 see the interleaving identically.
  EXPECT_EQ(got[N(2)], got[N(3)]);
}

TEST_F(BaselineTest, PropagationGraphRootSequencesEverything) {
  const auto m = test::make_membership(8, {{0, 1, 2, 3}, {2, 3, 4, 5}});
  PropagationGraphOrdering pg(sim_, m, *hosts_, *oracle_);
  pg.set_delivery_callback([](NodeId, MsgId, GroupId, NodeId, sim::Time) {});
  EXPECT_EQ(pg.num_trees(), 1u);  // one shares-a-member component
  EXPECT_EQ(pg.root_of(G(0)), pg.root_of(G(1)));
  const NodeId root = pg.root_of(G(0));
  // Roots subscribe the most: nodes 2 and 3 are in both groups.
  EXPECT_EQ(m.subscription_count(root), 2u);
  for (int i = 0; i < 12; ++i) pg.publish(N(0), G(0));
  for (int i = 0; i < 5; ++i) pg.publish(N(4), G(1));
  sim_.run();
  EXPECT_EQ(pg.node_load(root), 17u) << "GM-style root handles every message";
}

TEST_F(BaselineTest, PropagationGraphSeparatesUnrelatedComponents) {
  const auto m = test::make_membership(8, {{0, 1, 2}, {4, 5, 6}});
  PropagationGraphOrdering pg(sim_, m, *hosts_, *oracle_);
  EXPECT_EQ(pg.num_trees(), 2u);
  EXPECT_NE(pg.root_of(G(0)), pg.root_of(G(1)));
}

}  // namespace
}  // namespace decseq::baseline
