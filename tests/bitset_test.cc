#include <gtest/gtest.h>

#include "common/bitset.h"
#include "common/rng.h"

namespace decseq {
namespace {

TEST(DynamicBitset, SetTestReset) {
  DynamicBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_FALSE(b.test(63));
  b.set(63);
  b.set(64);
  b.set(99);
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(99));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
  EXPECT_THROW(b.set(100), CheckFailure);
}

TEST(DynamicBitset, IntersectionCountAcrossWordBoundaries) {
  DynamicBitset a(130), b(130);
  for (const std::size_t i : {0u, 63u, 64u, 127u, 128u, 129u}) a.set(i);
  for (const std::size_t i : {1u, 63u, 64u, 100u, 129u}) b.set(i);
  EXPECT_EQ(a.intersection_count(b), 3u);  // 63, 64, 129
  const auto bits = a.intersection_bits(b);
  EXPECT_EQ(bits, (std::vector<std::size_t>{63, 64, 129}));
}

TEST(DynamicBitset, SubsetRelation) {
  DynamicBitset small(70), large(70);
  small.set(3);
  small.set(66);
  large.set(3);
  large.set(66);
  large.set(10);
  EXPECT_TRUE(small.is_subset_of(large));
  EXPECT_FALSE(large.is_subset_of(small));
  EXPECT_TRUE(small.is_subset_of(small));
}

TEST(DynamicBitset, SetBitsEnumeration) {
  DynamicBitset b(200);
  const std::vector<std::size_t> expected{0, 5, 64, 128, 199};
  for (const std::size_t i : expected) b.set(i);
  EXPECT_EQ(b.set_bits(), expected);
}

TEST(DynamicBitset, MismatchedSizesRejected) {
  DynamicBitset a(10), b(20);
  EXPECT_THROW((void)a.intersection_count(b), CheckFailure);
  EXPECT_THROW((void)a.is_subset_of(b), CheckFailure);
}

TEST(DynamicBitset, RandomizedAgainstReference) {
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.next_below(300);
    DynamicBitset a(n), b(n);
    std::vector<bool> ra(n, false), rb(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.next_bool(0.3)) {
        a.set(i);
        ra[i] = true;
      }
      if (rng.next_bool(0.3)) {
        b.set(i);
        rb[i] = true;
      }
    }
    std::size_t expected = 0;
    bool subset = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (ra[i] && rb[i]) ++expected;
      if (ra[i] && !rb[i]) subset = false;
    }
    EXPECT_EQ(a.intersection_count(b), expected);
    EXPECT_EQ(a.is_subset_of(b), subset);
    EXPECT_EQ(a.intersection_bits(b).size(), expected);
  }
}

}  // namespace
}  // namespace decseq
