#include <gtest/gtest.h>

#include <algorithm>

#include "common/bitset.h"
#include "common/rng.h"

namespace decseq {
namespace {

TEST(DynamicBitset, SetTestReset) {
  DynamicBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_FALSE(b.test(63));
  b.set(63);
  b.set(64);
  b.set(99);
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(99));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
  EXPECT_THROW(b.set(100), CheckFailure);
}

TEST(DynamicBitset, IntersectionCountAcrossWordBoundaries) {
  DynamicBitset a(130), b(130);
  for (const std::size_t i : {0u, 63u, 64u, 127u, 128u, 129u}) a.set(i);
  for (const std::size_t i : {1u, 63u, 64u, 100u, 129u}) b.set(i);
  EXPECT_EQ(a.intersection_count(b), 3u);  // 63, 64, 129
  const auto bits = a.intersection_bits(b);
  EXPECT_EQ(bits, (std::vector<std::size_t>{63, 64, 129}));
}

TEST(DynamicBitset, SubsetRelation) {
  DynamicBitset small(70), large(70);
  small.set(3);
  small.set(66);
  large.set(3);
  large.set(66);
  large.set(10);
  EXPECT_TRUE(small.is_subset_of(large));
  EXPECT_FALSE(large.is_subset_of(small));
  EXPECT_TRUE(small.is_subset_of(small));
}

TEST(DynamicBitset, SetBitsEnumeration) {
  DynamicBitset b(200);
  const std::vector<std::size_t> expected{0, 5, 64, 128, 199};
  for (const std::size_t i : expected) b.set(i);
  EXPECT_EQ(b.set_bits(), expected);
}

TEST(DynamicBitset, MismatchedSizesRejected) {
  DynamicBitset a(10), b(20);
  EXPECT_THROW((void)a.intersection_count(b), CheckFailure);
  EXPECT_THROW((void)a.is_subset_of(b), CheckFailure);
}

TEST(RankSelectBitset, EmptyRows) {
  const auto zero = RankSelectBitset::from_sorted({}, 0);
  EXPECT_EQ(zero.size(), 0u);
  EXPECT_EQ(zero.count(), 0u);

  const auto empty = RankSelectBitset::from_sorted({}, 1000);
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_TRUE(empty.is_sparse());
  EXPECT_FALSE(empty.test(0));
  EXPECT_FALSE(empty.test(999));
  EXPECT_EQ(empty.rank(500), 0u);
  EXPECT_EQ(empty.rank(1000), 0u);
  EXPECT_TRUE(empty.set_bits().empty());
  EXPECT_THROW((void)empty.select(0), CheckFailure);
}

TEST(RankSelectBitset, FullRow) {
  std::vector<std::uint32_t> all(300);
  for (std::uint32_t i = 0; i < 300; ++i) all[i] = i;
  const auto full = RankSelectBitset::from_sorted(all, 300);
  EXPECT_EQ(full.count(), 300u);
  EXPECT_FALSE(full.is_sparse()) << "a full row must choose the dense form";
  for (std::size_t i = 0; i < 300; ++i) {
    EXPECT_TRUE(full.test(i));
    EXPECT_EQ(full.rank(i), i);
    EXPECT_EQ(full.select(i), i);
  }
  EXPECT_EQ(full.rank(300), 300u);
}

TEST(RankSelectBitset, DenseWordAndDirectoryBoundaries) {
  // Dense row (every even bit over 2048 = four 512-bit directory blocks);
  // probe rank/select exactly at word (64) and directory-block (512) edges.
  std::vector<std::uint32_t> evens;
  for (std::uint32_t i = 0; i < 2048; i += 2) evens.push_back(i);
  const auto row = RankSelectBitset::from_sorted(evens, 2048);
  ASSERT_FALSE(row.is_sparse());
  for (const std::size_t i : {0u, 1u, 63u, 64u, 65u, 511u, 512u, 513u,
                              1023u, 1024u, 1535u, 1536u, 2047u}) {
    EXPECT_EQ(row.rank(i), (i + 1) / 2) << "rank at " << i;
    EXPECT_EQ(row.test(i), i % 2 == 0) << "test at " << i;
  }
  for (const std::size_t k : {0u, 31u, 32u, 255u, 256u, 257u, 767u, 1023u}) {
    EXPECT_EQ(row.select(k), 2 * k) << "select at " << k;
  }
  EXPECT_EQ(row.rank(2048), 1024u);
}

TEST(RankSelectBitset, SparseClusteredBucketWalk) {
  // 21 consecutive positions land in the same Elias–Fano high-bits bucket,
  // exercising the in-bucket low-bits walk of rank/test.
  std::vector<std::uint32_t> run;
  for (std::uint32_t i = 5000; i < 5021; ++i) run.push_back(i);
  const auto row = RankSelectBitset::from_sorted(run, 10000);
  ASSERT_TRUE(row.is_sparse());
  EXPECT_EQ(row.rank(5000), 0u);
  EXPECT_EQ(row.rank(5010), 10u);
  EXPECT_EQ(row.rank(5021), 21u);
  EXPECT_EQ(row.rank(9999), 21u);
  EXPECT_TRUE(row.test(5020));
  EXPECT_FALSE(row.test(5021));
  EXPECT_FALSE(row.test(4999));
  for (std::size_t k = 0; k < 21; ++k) EXPECT_EQ(row.select(k), 5000 + k);
}

TEST(RankSelectBitset, DensityCrossover) {
  // Sweep density upward at a fixed universe: the representation must
  // switch sparse -> dense exactly once and never back.
  const std::size_t universe = 4096;
  bool saw_sparse = false, saw_dense = false;
  bool previous_sparse = true;
  for (std::size_t n = 1; n <= universe; n *= 2) {
    std::vector<std::uint32_t> positions;
    const std::size_t stride = universe / n;
    for (std::size_t i = 0; i < n; ++i) {
      positions.push_back(static_cast<std::uint32_t>(i * stride));
    }
    const auto row = RankSelectBitset::from_sorted(positions, universe);
    if (row.is_sparse()) {
      EXPECT_TRUE(previous_sparse) << "dense must not revert to sparse";
      saw_sparse = true;
    } else {
      saw_dense = true;
    }
    previous_sparse = row.is_sparse();
    EXPECT_EQ(row.count(), n);
    EXPECT_EQ(row.select(n - 1), (n - 1) * stride);
  }
  EXPECT_TRUE(saw_sparse);
  EXPECT_TRUE(saw_dense);
}

TEST(RankSelectBitset, MillionHostRowCostsHundredsOfBytes) {
  // The headline economics: 50 subscribers over a 1M-host universe must
  // cost hundreds of bytes, not the 125 KB of a plain bitmap.
  Rng rng(99);
  std::vector<std::uint32_t> subs;
  while (subs.size() < 50) {
    subs.push_back(static_cast<std::uint32_t>(rng.next_below(1000000)));
    std::sort(subs.begin(), subs.end());
    subs.erase(std::unique(subs.begin(), subs.end()), subs.end());
  }
  const auto row = RankSelectBitset::from_sorted(subs, 1000000);
  EXPECT_TRUE(row.is_sparse());
  EXPECT_LT(row.memory_bytes(), 1024u);
  for (const std::uint32_t v : subs) EXPECT_TRUE(row.test(v));
}

TEST(RankSelectBitset, RandomizedEquivalenceAgainstDynamicBitset) {
  Rng rng(23);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 1 + rng.next_below(3000);
    // Sweep density across trials so both representations are exercised.
    const double density = rng.next_double();
    DynamicBitset reference(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.next_bool(density)) reference.set(i);
    }
    const auto row = RankSelectBitset::from_bitset(reference);
    ASSERT_EQ(row.size(), n);
    ASSERT_EQ(row.count(), reference.count());
    EXPECT_EQ(row.set_bits(), reference.set_bits());

    std::size_t running = 0;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(row.rank(i), running) << "trial " << trial << " rank " << i;
      ASSERT_EQ(row.test(i), reference.test(i))
          << "trial " << trial << " test " << i;
      if (reference.test(i)) {
        ASSERT_EQ(row.select(running), i)
            << "trial " << trial << " select " << running;
        ++running;
      }
    }
    ASSERT_EQ(row.rank(n), reference.count());
  }
}

TEST(RankSelectBitset, RejectsUnsortedAndOutOfRange) {
  EXPECT_THROW((void)RankSelectBitset::from_sorted({5, 5}, 10), CheckFailure);
  EXPECT_THROW((void)RankSelectBitset::from_sorted({7, 3}, 10), CheckFailure);
  EXPECT_THROW((void)RankSelectBitset::from_sorted({10}, 10), CheckFailure);
}

TEST(DynamicBitset, RandomizedAgainstReference) {
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.next_below(300);
    DynamicBitset a(n), b(n);
    std::vector<bool> ra(n, false), rb(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.next_bool(0.3)) {
        a.set(i);
        ra[i] = true;
      }
      if (rng.next_bool(0.3)) {
        b.set(i);
        rb[i] = true;
      }
    }
    std::size_t expected = 0;
    bool subset = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (ra[i] && rb[i]) ++expected;
      if (ra[i] && !rb[i]) subset = false;
    }
    EXPECT_EQ(a.intersection_count(b), expected);
    EXPECT_EQ(a.is_subset_of(b), subset);
    EXPECT_EQ(a.intersection_bits(b).size(), expected);
  }
}

}  // namespace
}  // namespace decseq
