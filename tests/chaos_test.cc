// Chaos soak: loss + sequencer crashes + group termination + concurrent
// traffic, all at once, across random memberships. The ordering guarantees
// must survive everything the harness can throw at the protocol in one run.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "pubsub/system.h"
#include "tests/test_util.h"

namespace decseq {
namespace {

using test::N;

class ChaosProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosProperty, EverythingAtOnce) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 524287 + 99);

  auto config = test::small_config(seed + 400, /*num_hosts=*/14);
  config.network.channel.loss_probability = 0.15;
  config.network.channel.retransmit_timeout_ms = 40.0;
  config.network.channel.max_retransmits = 2000;
  pubsub::PubSubSystem system(config);

  // Membership: 6 random groups, sizes 3..8.
  std::vector<GroupId> groups;
  for (int g = 0; g < 6; ++g) {
    std::vector<NodeId> all;
    for (unsigned n = 0; n < 14; ++n) all.push_back(N(n));
    rng.shuffle(all);
    groups.push_back(system.create_group(std::vector<NodeId>(
        all.begin(), all.begin() + 3 + static_cast<long>(rng.next_below(6)))));
  }

  auto& sim = system.simulator();
  // Crash a random sequencing machine for a window inside the run.
  const SeqNodeId victim(
      static_cast<unsigned>(rng.next_below(system.colocation().num_nodes())));
  const double crash_at = 100.0 + rng.next_double() * 200.0;
  sim.schedule_at(crash_at, [&] { system.fail_sequencing_node(victim); });
  sim.schedule_at(crash_at + 250.0,
                  [&] { system.recover_sequencing_node(victim); });

  // Terminate one group partway through; stop publishing to it after that.
  const GroupId doomed = groups.back();
  const double fin_at = 400.0;
  bool fin_sent = false;
  sim.schedule_at(fin_at, [&] {
    fin_sent = true;
    system.terminate_group(doomed, system.membership().members(doomed)[0]);
  });

  // Traffic: 60 publishes over 800ms (skipping the doomed group once its
  // FIN is scheduled to have been injected).
  std::map<MsgId, GroupId> sent;
  for (int i = 0; i < 60; ++i) {
    const double at = rng.next_double() * 800.0;
    const GroupId g = groups[rng.next_below(groups.size())];
    if (g == doomed && at >= fin_at) continue;
    const NodeId sender = N(static_cast<unsigned>(rng.next_below(14)));
    sim.schedule_at(at, [&system, &sent, sender, g] {
      sent[system.publish(sender, g)] = g;
    });
  }
  system.run();

  // Liveness: every accepted message delivered to exactly its group; a
  // publish to the doomed group may lose the race against the FIN and be
  // rejected at the ingress instead.
  std::map<MsgId, std::set<NodeId>> delivered_to;
  for (const auto& d : system.deliveries()) {
    EXPECT_TRUE(delivered_to[d.message].insert(d.receiver).second)
        << "duplicate delivery";
  }
  for (const auto& [msg, group] : sent) {
    if (system.record(msg).rejected) {
      EXPECT_EQ(group, doomed) << "only the terminated group may reject";
      EXPECT_TRUE(delivered_to[msg].empty());
      continue;
    }
    const auto& members = system.membership().members(group);
    EXPECT_EQ(delivered_to[msg].size(), members.size()) << "message " << msg;
  }
  EXPECT_EQ(system.network().buffered_at_receivers(), 0u);
  EXPECT_TRUE(fin_sent);
  EXPECT_TRUE(system.network().group_terminated(doomed));

  // Consistency under fire.
  const auto violation = test::find_order_violation(system.deliveries());
  EXPECT_FALSE(violation.has_value()) << *violation;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosProperty,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace decseq
