#include <gtest/gtest.h>

#include "common/rng.h"
#include "protocol/codec.h"

namespace decseq::protocol {
namespace {

Message sample_message() {
  return Message::make(
      {.id = MsgId(12345), .group = GroupId(7), .sender = NodeId(42),
       .group_seq = 300, .payload = 0xdeadbeefULL},
      {{AtomId(1), 1}, {AtomId(200), 129}, {AtomId(65536), 1ULL << 40}});
}

TEST(Varint, RoundTripsBoundaries) {
  for (const std::uint64_t v :
       {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL, (1ULL << 32),
        ~0ULL}) {
    std::vector<std::uint8_t> buffer;
    encode_varint(v, buffer);
    EXPECT_EQ(buffer.size(), varint_size(v));
    std::size_t offset = 0;
    const auto decoded = decode_varint(buffer, offset);
    ASSERT_TRUE(decoded.has_value()) << v;
    EXPECT_EQ(*decoded, v);
    EXPECT_EQ(offset, buffer.size());
  }
}

TEST(Varint, SmallValuesAreOneByte) {
  std::vector<std::uint8_t> buffer;
  encode_varint(127, buffer);
  EXPECT_EQ(buffer.size(), 1u);
  encode_varint(128, buffer);
  EXPECT_EQ(buffer.size(), 3u);  // second value took two bytes
}

TEST(Varint, ByteLengthTransitions) {
  // LEB128 crosses from k to k+1 bytes exactly at 2^(7k). Pin the edges on
  // both sides for the 1-, 2-, 4-, and 8-byte encodings (and, cheaply, the
  // whole ladder up to the 10-byte cap for a full 64-bit value).
  for (const unsigned k : {1u, 2u, 4u, 8u}) {
    const std::uint64_t boundary = 1ULL << (7 * k);
    EXPECT_EQ(varint_size(boundary - 1), k) << "below 2^" << 7 * k;
    EXPECT_EQ(varint_size(boundary), k + 1) << "at 2^" << 7 * k;
    for (const std::uint64_t v : {boundary - 1, boundary, boundary + 1}) {
      std::vector<std::uint8_t> buffer;
      encode_varint(v, buffer);
      EXPECT_EQ(buffer.size(), varint_size(v)) << v;
      std::size_t offset = 0;
      const auto decoded = decode_varint(buffer, offset);
      ASSERT_TRUE(decoded.has_value()) << v;
      EXPECT_EQ(*decoded, v);
    }
  }
  for (unsigned k = 1; k <= 9; ++k) {
    EXPECT_EQ(varint_size((1ULL << (7 * k)) - 1), k);
  }
  EXPECT_EQ(varint_size(~0ULL), 10u);  // 64 bits / 7 rounds up to 10
}

TEST(Varint, TruncationDetected) {
  std::vector<std::uint8_t> buffer;
  encode_varint(1ULL << 40, buffer);
  buffer.pop_back();
  std::size_t offset = 0;
  EXPECT_FALSE(decode_varint(buffer, offset).has_value());
}

TEST(Codec, RoundTrip) {
  const Message original = sample_message();
  const auto wire = encode_message(original);
  const auto decoded = decode_message(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->id(), original.id());
  EXPECT_EQ(decoded->group(), original.group());
  EXPECT_EQ(decoded->sender(), original.sender());
  EXPECT_EQ(decoded->group_seq, original.group_seq);
  EXPECT_EQ(decoded->payload(), original.payload());
  ASSERT_EQ(decoded->stamps.size(), original.stamps.size());
  for (std::size_t i = 0; i < original.stamps.size(); ++i) {
    EXPECT_EQ(decoded->stamps[i].atom, original.stamps[i].atom);
    EXPECT_EQ(decoded->stamps[i].seq, original.stamps[i].seq);
  }
}

TEST(Codec, EncodedSizeMatchesBuffer) {
  const Message m = sample_message();
  EXPECT_EQ(encode_message(m).size(), encoded_size(m));
  const Message empty = Message::make(
      {.id = MsgId(0), .group = GroupId(0), .sender = NodeId(0),
       .group_seq = 1});
  EXPECT_EQ(encode_message(empty).size(), encoded_size(empty));
}

TEST(Codec, CompactForTypicalMessages) {
  // A realistic message (few stamps, small ids) stays tiny — far below the
  // 1 KiB a 128-node vector timestamp costs.
  const Message m = Message::make(
      {.id = MsgId(90), .group = GroupId(3), .sender = NodeId(17),
       .group_seq = 12},
      {{AtomId(4), 9}, {AtomId(11), 13}});
  EXPECT_LE(encoded_size(m), 16u);
  EXPECT_LT(encoded_size(m), vector_timestamp_bytes(128) / 50);
}

Message message_with_stamps(std::size_t count) {
  StampVec stamps;
  for (std::size_t i = 0; i < count; ++i) {
    stamps.push_back({AtomId(static_cast<unsigned>(i)), 100 + i});
  }
  return Message::make(
      {.id = MsgId(5), .group = GroupId(2), .sender = NodeId(3),
       .group_seq = 9},
      std::move(stamps));
}

TEST(Codec, StampVecSpillsToHeapAtExactlyNineStamps) {
  // kInlineStamps == 8: the 8th stamp still lives inline, the 9th forces
  // the spill. Both sides of the boundary must round-trip through the
  // codec identically — the wire format doesn't know about the storage.
  StampVec v;
  for (std::size_t i = 0; i < kInlineStamps; ++i) {
    v.push_back({AtomId(static_cast<unsigned>(i)), i + 1});
    EXPECT_TRUE(v.is_inline()) << "stamp " << i + 1 << " spilled early";
  }
  v.push_back({AtomId(8), 9});
  EXPECT_FALSE(v.is_inline()) << "9th stamp should spill to heap";

  for (const std::size_t count : {kInlineStamps, kInlineStamps + 1}) {
    const Message m = message_with_stamps(count);
    EXPECT_EQ(m.stamps.is_inline(), count <= kInlineStamps);
    const auto decoded = decode_message(encode_message(m));
    ASSERT_TRUE(decoded.has_value()) << count << " stamps";
    ASSERT_EQ(decoded->stamps.size(), count);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(decoded->stamps[i].atom, m.stamps[i].atom);
      EXPECT_EQ(decoded->stamps[i].seq, m.stamps[i].seq);
    }
  }
}

TEST(Codec, TruncatedSpilledStampMessageRejectedEverywhere) {
  // A message whose stamp list spilled past the inline capacity must still
  // reject truncation at every byte offset (the decoder's stamp loop walks
  // into the spilled region).
  const auto wire = encode_message(message_with_stamps(kInlineStamps + 1));
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(
        wire.begin(), wire.begin() + static_cast<long>(cut));
    EXPECT_FALSE(decode_message(prefix).has_value()) << "cut at " << cut;
  }
}

TEST(Codec, RejectsBadMagicAndVersion) {
  auto wire = encode_message(sample_message());
  auto bad_magic = wire;
  bad_magic[0] = 0x00;
  EXPECT_FALSE(decode_message(bad_magic).has_value());
  auto bad_version = wire;
  bad_version[1] = 99;
  EXPECT_FALSE(decode_message(bad_version).has_value());
}

TEST(Codec, RejectsTruncationAnywhere) {
  const auto wire = encode_message(sample_message());
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(wire.begin(),
                                           wire.begin() + static_cast<long>(cut));
    EXPECT_FALSE(decode_message(prefix).has_value()) << "cut at " << cut;
  }
}

TEST(Codec, RejectsTrailingGarbage) {
  auto wire = encode_message(sample_message());
  wire.push_back(0x00);
  EXPECT_FALSE(decode_message(wire).has_value());
}

TEST(Codec, RejectsHugeStampCount) {
  // Hand-craft a header whose stamp count claims more than the buffer can
  // hold; the decoder must refuse rather than allocate.
  std::vector<std::uint8_t> wire{0xD5, 0x01};
  for (int field = 0; field < 5; ++field) encode_varint(0, wire);
  encode_varint(1ULL << 40, wire);  // absurd stamp count
  EXPECT_FALSE(decode_message(wire).has_value());
}

TEST(Codec, EmptyBufferRejected) {
  EXPECT_FALSE(decode_message({}).has_value());
  EXPECT_FALSE(decode_message({0xD5}).has_value());
}

TEST(Codec, BodyBytesRoundTrip) {
  Message m = sample_message();
  m = Message::make(
      {.id = m.id(), .group = m.group(), .sender = m.sender(),
       .group_seq = m.group_seq, .payload = m.payload(),
       .body = {0x00, 0xff, 0x42, 0x80, 0x7f}},
      m.stamps);
  const auto wire = encode_message(m);
  EXPECT_EQ(wire.size(), encoded_size(m));
  const auto decoded = decode_message(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->body(), m.body());
}

TEST(Codec, BodyLengthOverrunRejected) {
  const Message m = Message::make(
      {.id = MsgId(9), .group = GroupId(1), .sender = NodeId(2),
       .group_seq = 4, .body = {1, 2, 3}});
  auto wire = encode_message(m);
  // Drop the final body byte: the declared length now overruns the buffer.
  wire.pop_back();
  EXPECT_FALSE(decode_message(wire).has_value());
}

TEST(Codec, FuzzRandomBuffersNeverCrash) {
  // Arbitrary bytes must decode to nullopt or to a structurally valid
  // message — never crash, never over-allocate.
  Rng rng(31337);
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<std::uint8_t> bytes(rng.next_below(64));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
    const auto decoded = decode_message(bytes);
    if (decoded.has_value()) {
      // Anything that decodes must re-encode to the same bytes (canonical
      // encoding: one varint form per value).
      EXPECT_EQ(encode_message(*decoded), bytes);
    }
  }
}

TEST(Codec, FuzzBitFlipsRejectedOrReencodable) {
  Rng rng(4242);
  const auto wire = encode_message(sample_message());
  for (int trial = 0; trial < 2000; ++trial) {
    auto mutated = wire;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    const auto decoded = decode_message(mutated);
    if (decoded.has_value()) {
      EXPECT_EQ(encode_message(*decoded), mutated);
    }
  }
}

TEST(Codec, FuzzRandomMessagesRoundTrip) {
  Rng rng(987);
  for (int trial = 0; trial < 500; ++trial) {
    StampVec stamps;
    const std::size_t num_stamps = rng.next_below(12);
    for (std::size_t s = 0; s < num_stamps; ++s) {
      stamps.push_back(
          {AtomId(static_cast<unsigned>(rng.next_below(1u << 24))), rng()});
    }
    const Message m = Message::make(
        {.id = MsgId(static_cast<unsigned>(rng.next_below(1u << 30))),
         .group = GroupId(static_cast<unsigned>(rng.next_below(1u << 16))),
         .sender = NodeId(static_cast<unsigned>(rng.next_below(1u << 20))),
         .group_seq = rng(),
         .payload = rng()},
        std::move(stamps));
    const auto decoded = decode_message(encode_message(m));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->group_seq, m.group_seq);
    EXPECT_EQ(decoded->payload(), m.payload());
    ASSERT_EQ(decoded->stamps.size(), m.stamps.size());
    for (std::size_t s = 0; s < num_stamps; ++s) {
      EXPECT_EQ(decoded->stamps[s].seq, m.stamps[s].seq);
    }
  }
}

TEST(Codec, WireVsNominalHeaderBytes) {
  // Randomized pinning of the two header metrics. ordering_header_bytes()
  // is the *nominal* fixed-width figure (group + sender + group_seq at
  // 4+4+8 bytes plus 12 per stamp) used for the §4.4 comparison against
  // vector timestamps; wire_ordering_header_bytes() is what the varint
  // codec actually spends. Two invariants:
  //  1. encoded_size decomposes exactly into framing + id + payload tag +
  //     wire header + body framing — for *any* message.
  //  2. For realistic field magnitudes (dense ids, 64-group deployments,
  //     sequence numbers below 2^32), the wire header never exceeds the
  //     nominal one: varints only help.
  Rng rng(20060806);
  for (int trial = 0; trial < 1000; ++trial) {
    StampVec stamps;
    const std::size_t num_stamps = rng.next_below(17);
    for (std::size_t s = 0; s < num_stamps; ++s) {
      stamps.push_back(
          {AtomId(static_cast<unsigned>(rng.next_below(1u << 24))),
           1 + rng.next_below(1ULL << 48)});
    }
    std::vector<std::uint8_t> body(rng.next_below(100));
    for (auto& b : body) b = static_cast<std::uint8_t>(rng.next_below(256));
    const Message m = Message::make(
        {.id = MsgId(static_cast<unsigned>(rng.next_below(1u << 21))),
         .group = GroupId(static_cast<unsigned>(rng.next_below(1u << 16))),
         .sender = NodeId(static_cast<unsigned>(rng.next_below(1u << 20))),
         .group_seq = 1 + rng.next_below(1ULL << 32),
         .payload = rng(),
         .body = std::move(body)},
        std::move(stamps));

    const std::size_t framing = 2 + varint_size(m.id().value()) +
                                varint_size(m.payload()) +
                                varint_size(m.body().size()) +
                                m.body().size();
    EXPECT_EQ(encoded_size(m), framing + wire_ordering_header_bytes(m));
    EXPECT_EQ(encode_message(m).size(), encoded_size(m));
    EXPECT_LE(wire_ordering_header_bytes(m), ordering_header_bytes(m));
  }
}

TEST(Codec, GoldenWireBytes) {
  // Pin the exact wire bytes of a representative message. The codec is
  // byte-oriented by construction (LEB128 varints, no unaligned or
  // host-endian loads anywhere — audited when the transport frame header
  // was added), so this encoding is identical on every platform; any codec
  // change that shifts a byte lands here.
  const Message m = Message::make(
      {.id = MsgId(3), .group = GroupId(2), .sender = NodeId(5),
       .group_seq = 300, .payload = 9, .body = {'o', 'k'}},
      {{AtomId(4), 1}});
  const std::vector<std::uint8_t> expected = {
      0xD5, 0x01,  // magic, version
      0x03,        // id
      0x02,        // group
      0x05,        // sender
      0xAC, 0x02,  // group_seq = 300: LEB128 little-endian groups
      0x09,        // payload
      0x01,        // stamp count
      0x04, 0x01,  // stamp: atom 4, seq 1
      0x02,        // body length
      'o', 'k',    // body verbatim
  };
  EXPECT_EQ(encode_message(m), expected);

  const auto decoded = decode_message(expected);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->id(), MsgId(3));
  EXPECT_EQ(decoded->group_seq, 300u);
  ASSERT_EQ(decoded->stamps.size(), 1u);
  EXPECT_EQ(decoded->stamps[0], (Stamp{AtomId(4), 1}));
  EXPECT_EQ(encode_message(*decoded), expected);
}

}  // namespace
}  // namespace decseq::protocol
