#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <set>
#include <unordered_set>

#include "common/check.h"
#include "common/ids.h"
#include "common/ring_buffer.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/zipf.h"
#include "tests/alloc_probe.h"

namespace decseq {
namespace {

TEST(Ids, DefaultIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
  EXPECT_TRUE(NodeId(0).valid());
  EXPECT_TRUE(NodeId(7).valid());
}

TEST(Ids, ComparesByValue) {
  EXPECT_EQ(GroupId(3), GroupId(3));
  EXPECT_NE(GroupId(3), GroupId(4));
  EXPECT_LT(GroupId(3), GroupId(4));
}

TEST(Ids, HashableAndDistinctTypes) {
  std::unordered_set<NodeId> nodes{NodeId(1), NodeId(2), NodeId(1)};
  EXPECT_EQ(nodes.size(), 2u);
  // GroupId and NodeId must not be interchangeable; this is a compile-time
  // property, asserted here by construction of both.
  static_assert(!std::is_convertible_v<NodeId, GroupId>);
}

TEST(Check, ThrowsWithLocation) {
  try {
    DECSEQ_CHECK_MSG(1 == 2, "math broke " << 42);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math broke 42"), std::string::npos);
    EXPECT_NE(what.find("common_test.cc"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a(), vb = b();
    EXPECT_EQ(va, vb);
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) {
    if (a2() != c()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(10), 10u);
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoolProbabilityRoughlyHolds) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<int> original = v;
  rng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), original.begin()));
}

TEST(Rng, ForkIndependent) {
  Rng rng(17);
  Rng child = rng.fork();
  EXPECT_NE(child(), rng());
}

TEST(Zipf, HarmonicNumbers) {
  EXPECT_DOUBLE_EQ(harmonic_number(1, 1.0), 1.0);
  EXPECT_NEAR(harmonic_number(4, 1.0), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
  EXPECT_NEAR(harmonic_number(3, 2.0), 1.0 + 0.25 + 1.0 / 9, 1e-12);
}

TEST(Zipf, GroupSizesMonotoneAndClamped) {
  const auto sizes = zipf_group_sizes(16, 128, 40);
  ASSERT_EQ(sizes.size(), 16u);
  EXPECT_EQ(sizes[0], 40u);  // rank 1 gets max_size
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_LE(sizes[i], sizes[i - 1]);  // Zipf is decreasing in rank
    EXPECT_GE(sizes[i], 2u);            // never below the overlap-useful floor
  }
}

TEST(Zipf, SamplerFavorsLowRanks) {
  ZipfSampler sampler(50, 1.0);
  Rng rng(23);
  std::size_t rank1 = 0, rank50 = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::size_t r = sampler.sample(rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 50u);
    if (r == 1) ++rank1;
    if (r == 50) ++rank50;
  }
  EXPECT_GT(rank1, rank50 * 10);
}

TEST(Stats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({2.0, 4.0, 6.0}), 4.0);
  EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
  EXPECT_NEAR(stddev({2.0, 4.0, 6.0}), 2.0, 1e-12);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
}

TEST(Stats, PercentileUnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({9.0, 1.0, 5.0}, 50.0), 5.0);
}

TEST(Stats, EmpiricalCdfMonotone) {
  const auto cdf = empirical_cdf({3.0, 1.0, 2.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_NEAR(cdf[0].fraction, 1.0 / 3, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[2].value, 3.0);
  EXPECT_DOUBLE_EQ(cdf[2].fraction, 1.0);
}

TEST(RingBuffer, FifoAcrossWraparoundAndGrowth) {
  common::RingBuffer<int> ring;
  EXPECT_TRUE(ring.empty());
  // Net +1 element per round: the head index laps the storage repeatedly
  // while the buffer also grows through several capacity doublings.
  int next_push = 0;
  int next_pop = 0;
  for (int round = 0; round < 100; ++round) {
    ring.push_back(next_push++);
    ring.push_back(next_push++);
    EXPECT_EQ(ring.front(), next_pop);
    ring.pop_front();
    ++next_pop;
  }
  ASSERT_EQ(ring.size(), 100u);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring[i], next_pop + static_cast<int>(i));
  }
  EXPECT_EQ(ring.back(), next_push - 1);
  ring.clear();
  EXPECT_TRUE(ring.empty());
}

TEST(RingBuffer, PopReleasesElementResourcesImmediately) {
  // The channel parks payload-holding elements in rings; a popped slot must
  // drop its resources at pop time (so pooled payload blocks recycle), not
  // when the slot happens to be overwritten.
  common::RingBuffer<std::shared_ptr<int>> ring;
  auto p = std::make_shared<int>(7);
  ring.push_back(p);
  EXPECT_EQ(p.use_count(), 2);
  ring.pop_front();
  EXPECT_EQ(p.use_count(), 1) << "slot must be reset at pop time";
}

TEST(RingBuffer, ResizeDefaultFillsAndSteadyStateStopsAllocating) {
  common::RingBuffer<std::uint32_t> ring;
  ring.resize(5);  // the reorder-window idiom
  ASSERT_EQ(ring.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(ring[i], 0u);
  ring.clear();

  // Flow-through at a bounded occupancy: once grown to the high-water
  // mark, the ring never touches the allocator again (the property that
  // lets channel buffers sit on the zero-allocation delivery path). One
  // warm push/pop first — the loop peaks at 17 elements, one above the
  // resting occupancy, and that high-water growth is part of warmup.
  for (std::uint32_t i = 0; i < 16; ++i) ring.push_back(i);
  ring.push_back(16);
  ring.pop_front();
  const std::size_t allocs_before = test::alloc_count();
  for (std::uint32_t i = 0; i < 10000; ++i) {
    ring.push_back(i);
    ring.pop_front();
  }
  EXPECT_EQ(test::alloc_count() - allocs_before, 0u);
  EXPECT_EQ(ring.size(), 16u);
}

TEST(Stats, SummaryFields) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
}

}  // namespace
}  // namespace decseq
