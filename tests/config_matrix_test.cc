// Configuration-matrix property test: the ordering guarantee must hold for
// EVERY combination of build strategy, co-location mode, and machine
// assignment — the knobs only move performance, never correctness.
#include <gtest/gtest.h>

#include <tuple>

#include "pubsub/system.h"
#include "tests/test_util.h"

namespace decseq {
namespace {

using test::N;

using Config = std::tuple<seqgraph::BuildStrategy, placement::ColocationMode,
                          placement::AssignmentMode>;

class ConfigMatrix : public ::testing::TestWithParam<Config> {};

TEST_P(ConfigMatrix, ConsistencyHoldsEverywhere) {
  const auto [strategy, colocation, assignment] = GetParam();
  auto config = test::small_config(777, /*num_hosts=*/12);
  config.graph.strategy = strategy;
  config.colocation.mode = colocation;
  config.assignment.mode = assignment;
  pubsub::PubSubSystem system(config);

  const GroupId g0 = system.create_group({N(0), N(1), N(2), N(3), N(4)});
  const GroupId g1 = system.create_group({N(3), N(4), N(5), N(6)});
  const GroupId g2 = system.create_group({N(0), N(4), N(6), N(7)});
  const GroupId g3 = system.create_group({N(8), N(9)});

  for (int i = 0; i < 5; ++i) {
    system.publish(N(0), g0, static_cast<std::uint64_t>(i));
    system.publish(N(5), g1, 100 + static_cast<std::uint64_t>(i));
    system.publish(N(7), g2, 200 + static_cast<std::uint64_t>(i));
    system.publish(N(8), g3, 300 + static_cast<std::uint64_t>(i));
  }
  system.run();

  // Node 4 subscribes to g0, g1, g2: the hardest vantage point.
  EXPECT_EQ(system.deliveries_to(N(4)).size(), 15u);
  EXPECT_EQ(system.network().buffered_at_receivers(), 0u);
  const auto violation = test::find_order_violation(system.deliveries());
  EXPECT_FALSE(violation.has_value()) << *violation;
}

INSTANTIATE_TEST_SUITE_P(
    AllKnobs, ConfigMatrix,
    ::testing::Combine(
        ::testing::Values(seqgraph::BuildStrategy::kChain,
                          seqgraph::BuildStrategy::kChainUnordered,
                          seqgraph::BuildStrategy::kGreedyTree),
        ::testing::Values(placement::ColocationMode::kNone,
                          placement::ColocationMode::kSubsetOnly,
                          placement::ColocationMode::kFull),
        ::testing::Values(placement::AssignmentMode::kPaperHeuristic,
                          placement::AssignmentMode::kAllRandom)));

}  // namespace
}  // namespace decseq
