// Determinism: two systems built from the same configuration and fed the
// same calls must produce byte-identical delivery logs. This is the
// regression net for bugs like the one DistanceOracle::distance had, where
// a cache-state-dependent ULP difference reordered simultaneous events.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "metrics/logio.h"
#include "pubsub/system.h"
#include "tests/test_util.h"

namespace decseq {
namespace {

using test::N;

std::string run_scenario(std::uint64_t seed) {
  auto config = test::small_config(seed, /*num_hosts=*/12);
  config.network.channel.loss_probability = 0.1;  // exercises channel RNG
  config.network.channel.retransmit_timeout_ms = 40.0;
  pubsub::PubSubSystem system(config);
  Rng rng(seed + 5);
  std::vector<GroupId> groups;
  for (int g = 0; g < 4; ++g) {
    std::vector<NodeId> all;
    for (unsigned n = 0; n < 12; ++n) all.push_back(N(n));
    rng.shuffle(all);
    groups.push_back(system.create_group(std::vector<NodeId>(
        all.begin(), all.begin() + 3 + static_cast<long>(rng.next_below(4)))));
  }
  auto& sim = system.simulator();
  for (int i = 0; i < 30; ++i) {
    const GroupId g = rng.pick(groups);
    const NodeId sender = rng.pick(system.membership().members(g));
    sim.schedule_at(rng.next_double() * 400.0,
                    [&system, sender, g, i] {
                      system.publish(sender, g, static_cast<std::uint64_t>(i));
                    });
  }
  system.run();
  std::stringstream out;
  metrics::write_delivery_log(system.deliveries(), out);
  return out.str();
}

TEST(Determinism, IdenticalRunsProduceIdenticalLogs) {
  for (const std::uint64_t seed : {1ull, 9ull, 42ull}) {
    const std::string first = run_scenario(seed);
    const std::string second = run_scenario(seed);
    EXPECT_EQ(first, second) << "seed " << seed;
    EXPECT_GT(first.size(), 100u) << "scenario must actually deliver";
  }
}

TEST(Determinism, DifferentSeedsDiffer) {
  EXPECT_NE(run_scenario(1), run_scenario(2));
}

TEST(Determinism, OracleDistanceIsCacheStateIndependent) {
  Rng rng(7);
  const auto topo = topology::generate_transit_stub(test::small_topology(), rng);
  const RouterId a(3), b(40);
  // Fresh oracle, query (a,b) first:
  topology::DistanceOracle first(topo.graph);
  const double d1 = first.distance(a, b);
  // Different oracle, warm the reverse direction first:
  topology::DistanceOracle second(topo.graph);
  (void)second.distances_from(b);
  (void)second.distances_from(a);
  const double d2 = second.distance(a, b);
  EXPECT_EQ(d1, d2) << "must be bit-identical, not just approximately equal";
  EXPECT_EQ(first.distance(b, a), d1) << "and symmetric";
}

}  // namespace
}  // namespace decseq
