#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "dht/directory.h"
#include "dht/ring.h"
#include "tests/test_util.h"
#include "topology/hosts.h"
#include "topology/transit_stub.h"

namespace decseq::dht {
namespace {

using test::G;
using test::N;

ChordRing make_ring(unsigned nodes) {
  ChordRing ring;
  for (unsigned n = 0; n < nodes; ++n) ring.join(N(n));
  return ring;
}

TEST(Hashing, DeterministicAndSpread) {
  EXPECT_EQ(hash_key("group:1"), hash_key("group:1"));
  EXPECT_NE(hash_key("group:1"), hash_key("group:2"));
  EXPECT_EQ(hash_node(N(5)), hash_node(N(5)));
  EXPECT_NE(hash_node(N(5)), hash_node(N(6)));
}

TEST(ChordRing, JoinLeaveLifecycle) {
  ChordRing ring = make_ring(8);
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_TRUE(ring.contains(N(3)));
  ring.leave(N(3));
  EXPECT_FALSE(ring.contains(N(3)));
  EXPECT_EQ(ring.size(), 7u);
  EXPECT_THROW(ring.leave(N(3)), CheckFailure);
  ring.join(N(3));
  EXPECT_THROW(ring.join(N(3)), CheckFailure);
}

TEST(ChordRing, OwnerMatchesBruteForce) {
  const ChordRing ring = make_ring(32);
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const RingKey key = rng();
    // Brute force: node with the smallest position >= key, else minimum.
    NodeId expected;
    RingKey best = 0;
    bool found = false;
    RingKey min_pos = ~RingKey{0};
    NodeId min_node;
    for (unsigned n = 0; n < 32; ++n) {
      const RingKey pos = hash_node(N(n));
      if (pos < min_pos) {
        min_pos = pos;
        min_node = N(n);
      }
      if (pos >= key && (!found || pos < best)) {
        best = pos;
        expected = N(n);
        found = true;
      }
    }
    if (!found) expected = min_node;
    EXPECT_EQ(ring.owner_of(key), expected);
  }
}

TEST(ChordRing, LookupReachesOwner) {
  const ChordRing ring = make_ring(64);
  Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    const RingKey key = rng();
    const NodeId from = N(static_cast<unsigned>(rng.next_below(64)));
    const LookupResult result = ring.lookup(key, from);
    EXPECT_EQ(result.owner, ring.owner_of(key));
    EXPECT_EQ(result.path.front(), from);
    EXPECT_EQ(result.path.back(), result.owner);
    // No node visited twice.
    std::set<NodeId> distinct(result.path.begin(), result.path.end());
    EXPECT_EQ(distinct.size(), result.path.size());
  }
}

TEST(ChordRing, LookupIsLogarithmic) {
  const ChordRing ring = make_ring(128);
  Rng rng(13);
  double total_hops = 0;
  std::size_t max_hops = 0, trials = 400;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const auto result =
        ring.lookup(rng(), N(static_cast<unsigned>(rng.next_below(128))));
    total_hops += static_cast<double>(result.hops());
    max_hops = std::max(max_hops, result.hops());
  }
  const double mean_hops = total_hops / static_cast<double>(trials);
  // Chord: ~(1/2) log2 n expected, log2 n + slack worst case.
  EXPECT_LE(mean_hops, std::log2(128.0));
  EXPECT_LE(max_hops, 2 * static_cast<std::size_t>(std::log2(128.0)) + 2);
  EXPECT_GT(mean_hops, 1.0) << "queries should not be one-hop on average";
}

TEST(ChordRing, SelfLookupZeroOrOneHop) {
  const ChordRing ring = make_ring(16);
  for (unsigned n = 0; n < 16; ++n) {
    const RingKey own = hash_node(N(n));
    const auto result = ring.lookup(own, N(n));
    EXPECT_EQ(result.owner, N(n));
    EXPECT_EQ(result.hops(), 0u);
  }
}

TEST(ChordRing, ReplicasDistinctAndStartAtOwner) {
  const ChordRing ring = make_ring(16);
  const RingKey key = hash_key("group:3");
  const auto replicas = ring.replicas_of(key, 5);
  ASSERT_EQ(replicas.size(), 5u);
  EXPECT_EQ(replicas.front(), ring.owner_of(key));
  const std::set<NodeId> distinct(replicas.begin(), replicas.end());
  EXPECT_EQ(distinct.size(), 5u);
  // Clamped to ring size.
  EXPECT_EQ(ring.replicas_of(key, 99).size(), 16u);
}

TEST(ChordRing, FingersSortedAlongArcAndReachable) {
  const ChordRing ring = make_ring(64);
  const auto fingers = ring.fingers_of(N(0));
  EXPECT_GE(fingers.size(), 3u);  // ~log2(64) distinct fingers expected
  EXPECT_LE(fingers.size(), 64u);
  for (const NodeId f : fingers) EXPECT_TRUE(ring.contains(f));
}

TEST(ChordRing, LeaveTransfersOwnership) {
  ChordRing ring = make_ring(16);
  const RingKey key = hash_key("group:7");
  const NodeId before = ring.owner_of(key);
  ring.leave(before);
  const NodeId after = ring.owner_of(key);
  EXPECT_NE(after, before);
  // The new owner is the old replica list's second entry.
  ring.join(before);
  const auto replicas = ring.replicas_of(key, 2);
  EXPECT_EQ(replicas[1], after);
}

class DirectoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(41);
    topo_ = topology::generate_transit_stub(test::small_topology(), rng);
    hosts_ = std::make_unique<topology::HostMap>(topology::attach_hosts(
        topo_, {.num_hosts = 24, .num_clusters = 6}, rng));
    oracle_ = std::make_unique<topology::DistanceOracle>(topo_.graph);
  }
  topology::TransitStubTopology topo_;
  std::unique_ptr<topology::HostMap> hosts_;
  std::unique_ptr<topology::DistanceOracle> oracle_;
};

TEST_F(DirectoryTest, FetchReturnsMembershipWithCost) {
  const auto m = test::make_membership(24, {{0, 1, 2, 3}, {4, 5, 6}});
  MembershipDirectory dir(m, *hosts_, *oracle_);
  const auto fetch = dir.fetch(G(0), N(10));
  EXPECT_EQ(fetch.members, m.members(G(0)));
  EXPECT_GT(fetch.latency_ms, 0.0);
  EXPECT_TRUE(dir.ring().contains(fetch.served_by));
  EXPECT_THROW((void)dir.fetch(G(9), N(0)), CheckFailure);
}

TEST_F(DirectoryTest, UpdateTracksMembershipChanges) {
  auto m = test::make_membership(24, {{0, 1, 2}});
  MembershipDirectory dir(m, *hosts_, *oracle_);
  m.add_member(G(0), N(9));
  dir.update(G(0), m);
  EXPECT_EQ(dir.fetch(G(0), N(5)).members.size(), 4u);
  m.remove_group(G(0));
  dir.update(G(0), m);
  EXPECT_THROW((void)dir.fetch(G(0), N(5)), CheckFailure);
}

TEST_F(DirectoryTest, ReplicationProvidesFallbackOwners) {
  const auto m = test::make_membership(24, {{0, 1, 2}});
  MembershipDirectory dir(m, *hosts_, *oracle_, /*replication=*/3);
  const auto replicas = dir.replicas(G(0));
  ASSERT_EQ(replicas.size(), 3u);
  const std::set<NodeId> distinct(replicas.begin(), replicas.end());
  EXPECT_EQ(distinct.size(), 3u);
}

}  // namespace
}  // namespace decseq::dht
