// Failure-injection tests: sequencing machines crash and recover mid-run.
// The paper assumes fail-free sequencers (§2's "typical assumptions for
// fault-tolerant behavior"); this suite exercises the mechanisms a real
// deployment leans on — §3.1's retransmission buffers and ingress retries —
// under a fail-stop-with-state model, and asserts the ordering guarantees
// hold across crash windows.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "pubsub/system.h"
#include "tests/test_util.h"

namespace decseq::pubsub {
namespace {

using test::N;

/// Config tuned for crash tests: fast retries so retransmission, not the
/// timeout, dominates recovery time.
SystemConfig crash_config(std::uint64_t seed) {
  auto config = test::small_config(seed);
  config.network.channel.retransmit_timeout_ms = 50.0;
  config.network.channel.max_retransmits = 1000;
  return config;
}

/// The sequencing node hosting the overlap atom of the first overlap.
SeqNodeId overlap_node(const PubSubSystem& system) {
  for (const auto& atom : system.graph().atoms()) {
    if (!atom.is_ingress_only()) return system.colocation().node_of(atom.id);
  }
  throw std::logic_error("no overlap atom");
}

TEST(Failure, CrashedIngressDelaysButDeliversEverything) {
  PubSubSystem system(crash_config(71));
  const GroupId g = system.create_group({N(0), N(1), N(2)});
  const SeqNodeId ingress_node =
      system.colocation().node_of(system.graph().path(g).front());

  system.fail_sequencing_node(ingress_node);
  EXPECT_TRUE(system.network().node_failed(ingress_node));
  for (std::uint64_t i = 0; i < 5; ++i) system.publish(N(0), g, i);
  // Recover after several retry periods.
  system.simulator().schedule_at(500.0, [&] {
    system.recover_sequencing_node(ingress_node);
  });
  system.run();
  for (unsigned n = 0; n < 3; ++n) {
    const auto log = system.deliveries_to(N(n));
    ASSERT_EQ(log.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(log[i].payload, i);
    // Delivery cannot predate the recovery.
    EXPECT_GT(log.front().delivered_at, 500.0);
  }
}

TEST(Failure, CrashedOverlapAtomQueuesInRetransmissionBuffers) {
  PubSubSystem system(crash_config(72));
  const GroupId g0 = system.create_group({N(0), N(1), N(2), N(3)});
  const GroupId g1 = system.create_group({N(2), N(3), N(4), N(5)});
  ASSERT_EQ(system.graph().num_overlap_atoms(), 1u);
  const SeqNodeId shared = overlap_node(system);
  // Only interesting when the overlap atom is not also both ingresses'
  // machine; with co-location it may be — then the ingress retry covers it.

  system.fail_sequencing_node(shared);
  for (int i = 0; i < 4; ++i) {
    system.publish(N(0), g0, 100 + static_cast<std::uint64_t>(i));
    system.publish(N(4), g1, 200 + static_cast<std::uint64_t>(i));
  }
  system.simulator().schedule_at(800.0, [&] {
    system.recover_sequencing_node(shared);
  });
  system.run();
  // Everything delivered exactly once, consistently.
  EXPECT_EQ(system.deliveries_to(N(2)).size(), 8u);
  EXPECT_EQ(system.deliveries_to(N(0)).size(), 4u);
  std::set<std::pair<NodeId, MsgId>> seen;
  for (const auto& d : system.deliveries()) {
    EXPECT_TRUE(seen.insert({d.receiver, d.message}).second)
        << "duplicate delivery after retransmission";
  }
  EXPECT_FALSE(test::find_order_violation(system.deliveries()).has_value());
  EXPECT_EQ(system.network().buffered_at_receivers(), 0u);
}

TEST(Failure, RepeatedCrashesSurvive) {
  PubSubSystem system(crash_config(73));
  const GroupId g0 = system.create_group({N(0), N(1), N(2), N(3)});
  const GroupId g1 = system.create_group({N(2), N(3), N(4), N(5)});
  const SeqNodeId shared = overlap_node(system);

  auto& sim = system.simulator();
  // Crash/recover twice while traffic flows.
  sim.schedule_at(10.0, [&] { system.fail_sequencing_node(shared); });
  sim.schedule_at(300.0, [&] { system.recover_sequencing_node(shared); });
  sim.schedule_at(600.0, [&] { system.fail_sequencing_node(shared); });
  sim.schedule_at(900.0, [&] { system.recover_sequencing_node(shared); });
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(i * 100.0, [&system, i, g0] {
      system.publish(N(0), g0, static_cast<std::uint64_t>(i));
    });
    sim.schedule_at(i * 100.0 + 50.0, [&system, i, g1] {
      system.publish(N(4), g1, 100 + static_cast<std::uint64_t>(i));
    });
  }
  system.run();
  EXPECT_EQ(system.deliveries_to(N(2)).size(), 20u);
  EXPECT_EQ(system.deliveries_to(N(4)).size(), 10u);
  EXPECT_FALSE(test::find_order_violation(system.deliveries()).has_value());
  (void)g1;
}

TEST(Failure, DoubleFailRejected) {
  PubSubSystem system(crash_config(74));
  system.create_group({N(0), N(1), N(2)});
  const SeqNodeId node(0);
  system.fail_sequencing_node(node);
  EXPECT_THROW(system.fail_sequencing_node(node), CheckFailure);
  system.recover_sequencing_node(node);
  EXPECT_THROW(system.recover_sequencing_node(node), CheckFailure);
}

TEST(Failure, SeveredLinkQueuesAndRecovers) {
  // Three groups chained so the sequencing path has at least one
  // inter-atom channel; sever it mid-traffic.
  PubSubSystem system(crash_config(76));
  const GroupId g0 = system.create_group({N(0), N(1), N(2), N(3)});
  const GroupId g1 = system.create_group({N(2), N(3), N(4), N(5)});
  const GroupId g2 = system.create_group({N(4), N(5), N(6), N(7)});
  (void)g1;

  // Find a group whose path crosses a channel.
  AtomId from, to;
  bool found = false;
  for (const GroupId g : system.graph().groups()) {
    const auto& path = system.graph().path(g);
    if (path.size() >= 2) {
      from = path[0];
      to = path[1];
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found) << "expected a multi-atom path";

  system.network_mutable().fail_link(from, to);
  EXPECT_TRUE(system.network().link_failed(from, to));
  for (int i = 0; i < 4; ++i) {
    system.publish(N(0), g0, static_cast<std::uint64_t>(i));
    system.publish(N(6), g2, 100 + static_cast<std::uint64_t>(i));
  }
  system.simulator().schedule_at(600.0, [&] {
    system.network_mutable().recover_link(from, to);
  });
  system.run();

  // Everything delivered exactly once, consistent.
  std::map<std::pair<NodeId, std::uint64_t>, int> count;
  for (const auto& d : system.deliveries()) {
    ++count[{d.receiver, d.payload}];
  }
  for (const auto& [key, c] : count) EXPECT_EQ(c, 1);
  EXPECT_EQ(system.deliveries_to(N(0)).size(), 4u);
  EXPECT_EQ(system.deliveries_to(N(6)).size(), 4u);
  EXPECT_FALSE(test::find_order_violation(system.deliveries()).has_value());
  EXPECT_EQ(system.network().buffered_at_receivers(), 0u);
}

TEST(Failure, LinkFailureValidation) {
  PubSubSystem system(crash_config(77));
  system.create_group({N(0), N(1), N(2)});
  // No multi-atom path: there is no channel to fail.
  EXPECT_THROW(system.network_mutable().fail_link(AtomId(0), AtomId(1)),
               CheckFailure);
}

TEST(Failure, UnrelatedGroupsUnaffectedByCrash) {
  PubSubSystem system(crash_config(75));
  const GroupId g0 = system.create_group({N(0), N(1), N(2), N(3)});
  const GroupId g1 = system.create_group({N(2), N(3), N(4), N(5)});
  const GroupId isolated = system.create_group({N(6), N(7)});
  const SeqNodeId shared = overlap_node(system);

  system.fail_sequencing_node(shared);
  system.publish(N(0), g0, 1);
  system.publish(N(6), isolated, 2);
  // Never recover within this window; run until only blocked work remains.
  system.simulator().run_until(200.0);
  // The isolated group's ingress machine is separate, so its message flows.
  ASSERT_EQ(system.deliveries_to(N(7)).size(), 1u);
  EXPECT_EQ(system.deliveries_to(N(7))[0].payload, 2u);
  EXPECT_TRUE(system.deliveries_to(N(1)).empty());
  system.recover_sequencing_node(shared);
  system.run();
  EXPECT_EQ(system.deliveries_to(N(1)).size(), 1u);
  (void)g1;
}

TEST(Failure, OutageLongerThanBudgetSurfacesChannelFault) {
  // Shrink the retransmission budget so a node outage outlives it: the
  // channels into the downed machine must surface faults (queryable via
  // channel_faults()/faulted_edges()), keep their buffers, and recover —
  // never abort the run.
  auto config = crash_config(76);
  config.network.channel.max_retransmits = 2;  // exhausts by ~350ms at rto 50
  PubSubSystem system(config);
  const GroupId g0 = system.create_group({N(0), N(1), N(2), N(3)});
  const GroupId g1 = system.create_group({N(2), N(3), N(4), N(5)});
  const GroupId g2 = system.create_group({N(4), N(5), N(6), N(7)});
  (void)g1;
  (void)g2;

  // First machine-crossing edge on some path whose upstream atoms all live
  // elsewhere: failing its destination machine stalls exactly that channel
  // while the ingress keeps feeding it.
  GroupId victim_group = g0;
  AtomId from, to;
  SeqNodeId downed;
  bool found = false;
  for (const GroupId g : system.graph().groups()) {
    const auto& path = system.graph().path(g);
    for (std::size_t i = 0; i + 1 < path.size() && !found; ++i) {
      const SeqNodeId dest = system.colocation().node_of(path[i + 1]);
      bool upstream_clear = true;
      for (std::size_t k = 0; k <= i; ++k) {
        if (system.colocation().node_of(path[k]) == dest) {
          upstream_clear = false;
          break;
        }
      }
      if (upstream_clear) {
        victim_group = g;
        from = path[i];
        to = path[i + 1];
        downed = dest;
        found = true;
      }
    }
    if (found) break;
  }
  ASSERT_TRUE(found) << "expected a machine-crossing path edge";

  NodeId sender = N(0);
  for (const NodeId n : system.membership().members(victim_group)) {
    sender = n;
    break;
  }
  system.fail_sequencing_node(downed);
  for (std::uint64_t i = 0; i < 4; ++i) system.publish(sender, victim_group, i);

  // Mid-outage, past the ~350ms exhaustion point: the fault is visible.
  system.simulator().schedule_at(700.0, [&] {
    EXPECT_FALSE(system.network().channel_faults().empty())
        << "budget exhaustion must be recorded";
    const auto edges = system.network().faulted_edges();
    EXPECT_TRUE(std::find(edges.begin(), edges.end(),
                          std::make_pair(from, to)) != edges.end())
        << "the stalled channel must report itself faulted";
  });
  system.simulator().schedule_at(1000.0, [&] {
    system.recover_sequencing_node(downed);
  });
  system.run();

  EXPECT_TRUE(system.network().faulted_edges().empty())
      << "recovery must clear every live fault";
  std::set<std::pair<NodeId, std::uint64_t>> seen;
  for (const auto& d : system.deliveries()) {
    EXPECT_TRUE(seen.insert({d.receiver, d.payload}).second);
  }
  for (const NodeId n : system.membership().members(victim_group)) {
    EXPECT_EQ(system.deliveries_to(n).size(), 4u)
        << "faulted channels still deliver after recovery";
  }
  EXPECT_FALSE(test::find_order_violation(system.deliveries()).has_value());
}

TEST(Failure, CrashedPublisherFailsIngressVisibly) {
  PubSubSystem system(crash_config(78));
  const GroupId g = system.create_group({N(0), N(1), N(2)});

  system.fail_publisher(N(0));
  const MsgId dead = system.publish(N(0), g, 7);
  system.run();
  EXPECT_TRUE(system.record(dead).ingress_failed)
      << "a publish from a crashed host must fail visibly, not hang";
  for (const auto& d : system.deliveries()) EXPECT_NE(d.payload, 7u);

  // Other hosts are unaffected, and recovery restores the crashed one.
  system.recover_publisher(N(0));
  system.publish(N(0), g, 8);
  system.publish(N(1), g, 9);
  system.run();
  std::set<std::uint64_t> at_n2;
  for (const auto& d : system.deliveries_to(N(2))) at_n2.insert(d.payload);
  EXPECT_EQ(at_n2, (std::set<std::uint64_t>{8, 9}));
}

TEST(Failure, PublisherCrashMidRetryAbandonsIngress) {
  // The publisher's host dies while its message is stuck in the ingress
  // retry loop (ingress machine down): the retries stop attributing the
  // message to a live sender and abandon it as ingress_failed instead of
  // retrying forever on behalf of a corpse.
  PubSubSystem system(crash_config(79));
  const GroupId g = system.create_group({N(0), N(1), N(2)});
  const SeqNodeId ingress_node =
      system.colocation().node_of(system.graph().path(g).front());

  system.fail_sequencing_node(ingress_node);
  const MsgId id = system.publish(N(1), g, 11);
  system.simulator().schedule_at(200.0, [&] { system.fail_publisher(N(1)); });
  system.simulator().schedule_at(600.0, [&] {
    system.recover_sequencing_node(ingress_node);
  });
  system.run();

  EXPECT_TRUE(system.record(id).ingress_failed);
  EXPECT_GE(system.record(id).ingress_retries, 1u)
      << "the message must have cycled the retry loop before abandonment";
  for (const auto& d : system.deliveries()) EXPECT_NE(d.payload, 11u);
}

TEST(Failure, CausalChainFromCrashedPublisherIsDropped) {
  // A causal publish that fails ingress must drop its queued successors
  // instead of wedging run(): the chain's ordering obligation dies with
  // the publisher.
  PubSubSystem system(crash_config(80));
  const GroupId g = system.create_group({N(0), N(1), N(2)});
  system.fail_publisher(N(0));
  system.publish_causal(N(0), g, 21);
  system.publish_causal(N(0), g, 22);
  system.publish(N(1), g, 23);
  system.run();  // must terminate despite the dead chain

  std::set<std::uint64_t> at_n2;
  for (const auto& d : system.deliveries_to(N(2))) at_n2.insert(d.payload);
  EXPECT_EQ(at_n2, (std::set<std::uint64_t>{23}))
      << "the crashed publisher's chain must vanish, the live one flow";
}

}  // namespace
}  // namespace pubsub
