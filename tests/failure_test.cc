// Failure-injection tests: sequencing machines crash and recover mid-run.
// The paper assumes fail-free sequencers (§2's "typical assumptions for
// fault-tolerant behavior"); this suite exercises the mechanisms a real
// deployment leans on — §3.1's retransmission buffers and ingress retries —
// under a fail-stop-with-state model, and asserts the ordering guarantees
// hold across crash windows.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "pubsub/system.h"
#include "tests/test_util.h"

namespace decseq::pubsub {
namespace {

using test::N;

/// Config tuned for crash tests: fast retries so retransmission, not the
/// timeout, dominates recovery time.
SystemConfig crash_config(std::uint64_t seed) {
  auto config = test::small_config(seed);
  config.network.channel.retransmit_timeout_ms = 50.0;
  config.network.channel.max_retransmits = 1000;
  return config;
}

/// The sequencing node hosting the overlap atom of the first overlap.
SeqNodeId overlap_node(const PubSubSystem& system) {
  for (const auto& atom : system.graph().atoms()) {
    if (!atom.is_ingress_only()) return system.colocation().node_of(atom.id);
  }
  throw std::logic_error("no overlap atom");
}

TEST(Failure, CrashedIngressDelaysButDeliversEverything) {
  PubSubSystem system(crash_config(71));
  const GroupId g = system.create_group({N(0), N(1), N(2)});
  const SeqNodeId ingress_node =
      system.colocation().node_of(system.graph().path(g).front());

  system.fail_sequencing_node(ingress_node);
  EXPECT_TRUE(system.network().node_failed(ingress_node));
  for (std::uint64_t i = 0; i < 5; ++i) system.publish(N(0), g, i);
  // Recover after several retry periods.
  system.simulator().schedule_at(500.0, [&] {
    system.recover_sequencing_node(ingress_node);
  });
  system.run();
  for (unsigned n = 0; n < 3; ++n) {
    const auto log = system.deliveries_to(N(n));
    ASSERT_EQ(log.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(log[i].payload, i);
    // Delivery cannot predate the recovery.
    EXPECT_GT(log.front().delivered_at, 500.0);
  }
}

TEST(Failure, CrashedOverlapAtomQueuesInRetransmissionBuffers) {
  PubSubSystem system(crash_config(72));
  const GroupId g0 = system.create_group({N(0), N(1), N(2), N(3)});
  const GroupId g1 = system.create_group({N(2), N(3), N(4), N(5)});
  ASSERT_EQ(system.graph().num_overlap_atoms(), 1u);
  const SeqNodeId shared = overlap_node(system);
  // Only interesting when the overlap atom is not also both ingresses'
  // machine; with co-location it may be — then the ingress retry covers it.

  system.fail_sequencing_node(shared);
  for (int i = 0; i < 4; ++i) {
    system.publish(N(0), g0, 100 + static_cast<std::uint64_t>(i));
    system.publish(N(4), g1, 200 + static_cast<std::uint64_t>(i));
  }
  system.simulator().schedule_at(800.0, [&] {
    system.recover_sequencing_node(shared);
  });
  system.run();
  // Everything delivered exactly once, consistently.
  EXPECT_EQ(system.deliveries_to(N(2)).size(), 8u);
  EXPECT_EQ(system.deliveries_to(N(0)).size(), 4u);
  std::set<std::pair<NodeId, MsgId>> seen;
  for (const auto& d : system.deliveries()) {
    EXPECT_TRUE(seen.insert({d.receiver, d.message}).second)
        << "duplicate delivery after retransmission";
  }
  EXPECT_FALSE(test::find_order_violation(system.deliveries()).has_value());
  EXPECT_EQ(system.network().buffered_at_receivers(), 0u);
}

TEST(Failure, RepeatedCrashesSurvive) {
  PubSubSystem system(crash_config(73));
  const GroupId g0 = system.create_group({N(0), N(1), N(2), N(3)});
  const GroupId g1 = system.create_group({N(2), N(3), N(4), N(5)});
  const SeqNodeId shared = overlap_node(system);

  auto& sim = system.simulator();
  // Crash/recover twice while traffic flows.
  sim.schedule_at(10.0, [&] { system.fail_sequencing_node(shared); });
  sim.schedule_at(300.0, [&] { system.recover_sequencing_node(shared); });
  sim.schedule_at(600.0, [&] { system.fail_sequencing_node(shared); });
  sim.schedule_at(900.0, [&] { system.recover_sequencing_node(shared); });
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(i * 100.0, [&system, i, g0] {
      system.publish(N(0), g0, static_cast<std::uint64_t>(i));
    });
    sim.schedule_at(i * 100.0 + 50.0, [&system, i, g1] {
      system.publish(N(4), g1, 100 + static_cast<std::uint64_t>(i));
    });
  }
  system.run();
  EXPECT_EQ(system.deliveries_to(N(2)).size(), 20u);
  EXPECT_EQ(system.deliveries_to(N(4)).size(), 10u);
  EXPECT_FALSE(test::find_order_violation(system.deliveries()).has_value());
  (void)g1;
}

TEST(Failure, DoubleFailRejected) {
  PubSubSystem system(crash_config(74));
  system.create_group({N(0), N(1), N(2)});
  const SeqNodeId node(0);
  system.fail_sequencing_node(node);
  EXPECT_THROW(system.fail_sequencing_node(node), CheckFailure);
  system.recover_sequencing_node(node);
  EXPECT_THROW(system.recover_sequencing_node(node), CheckFailure);
}

TEST(Failure, SeveredLinkQueuesAndRecovers) {
  // Three groups chained so the sequencing path has at least one
  // inter-atom channel; sever it mid-traffic.
  PubSubSystem system(crash_config(76));
  const GroupId g0 = system.create_group({N(0), N(1), N(2), N(3)});
  const GroupId g1 = system.create_group({N(2), N(3), N(4), N(5)});
  const GroupId g2 = system.create_group({N(4), N(5), N(6), N(7)});
  (void)g1;

  // Find a group whose path crosses a channel.
  AtomId from, to;
  bool found = false;
  for (const GroupId g : system.graph().groups()) {
    const auto& path = system.graph().path(g);
    if (path.size() >= 2) {
      from = path[0];
      to = path[1];
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found) << "expected a multi-atom path";

  system.network_mutable().fail_link(from, to);
  EXPECT_TRUE(system.network().link_failed(from, to));
  for (int i = 0; i < 4; ++i) {
    system.publish(N(0), g0, static_cast<std::uint64_t>(i));
    system.publish(N(6), g2, 100 + static_cast<std::uint64_t>(i));
  }
  system.simulator().schedule_at(600.0, [&] {
    system.network_mutable().recover_link(from, to);
  });
  system.run();

  // Everything delivered exactly once, consistent.
  std::map<std::pair<NodeId, std::uint64_t>, int> count;
  for (const auto& d : system.deliveries()) {
    ++count[{d.receiver, d.payload}];
  }
  for (const auto& [key, c] : count) EXPECT_EQ(c, 1);
  EXPECT_EQ(system.deliveries_to(N(0)).size(), 4u);
  EXPECT_EQ(system.deliveries_to(N(6)).size(), 4u);
  EXPECT_FALSE(test::find_order_violation(system.deliveries()).has_value());
  EXPECT_EQ(system.network().buffered_at_receivers(), 0u);
}

TEST(Failure, LinkFailureValidation) {
  PubSubSystem system(crash_config(77));
  system.create_group({N(0), N(1), N(2)});
  // No multi-atom path: there is no channel to fail.
  EXPECT_THROW(system.network_mutable().fail_link(AtomId(0), AtomId(1)),
               CheckFailure);
}

TEST(Failure, UnrelatedGroupsUnaffectedByCrash) {
  PubSubSystem system(crash_config(75));
  const GroupId g0 = system.create_group({N(0), N(1), N(2), N(3)});
  const GroupId g1 = system.create_group({N(2), N(3), N(4), N(5)});
  const GroupId isolated = system.create_group({N(6), N(7)});
  const SeqNodeId shared = overlap_node(system);

  system.fail_sequencing_node(shared);
  system.publish(N(0), g0, 1);
  system.publish(N(6), isolated, 2);
  // Never recover within this window; run until only blocked work remains.
  system.simulator().run_until(200.0);
  // The isolated group's ingress machine is separate, so its message flows.
  ASSERT_EQ(system.deliveries_to(N(7)).size(), 1u);
  EXPECT_EQ(system.deliveries_to(N(7))[0].payload, 2u);
  EXPECT_TRUE(system.deliveries_to(N(1)).empty());
  system.recover_sequencing_node(shared);
  system.run();
  EXPECT_EQ(system.deliveries_to(N(1)).size(), 1u);
  (void)g1;
}

}  // namespace
}  // namespace pubsub
