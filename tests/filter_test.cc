#include <gtest/gtest.h>

#include "filter/predicate.h"
#include "filter/subscription_table.h"
#include "tests/test_util.h"

namespace decseq::filter {
namespace {

using test::N;

Event trade(std::string symbol, std::int64_t price, std::string industry) {
  Event e;
  e.set("symbol", std::move(symbol))
      .set("price", price)
      .set("industry", std::move(industry));
  return e;
}

TEST(Predicate, IntComparisons) {
  const Event e = trade("AAPL", 150, "tech");
  EXPECT_TRUE(Predicate{}.ge("price", 100).matches(e));
  EXPECT_TRUE(Predicate{}.le("price", 150).matches(e));
  EXPECT_FALSE(Predicate{}.ge("price", 151).matches(e));
  EXPECT_TRUE(Predicate{}.eq("price", 150).matches(e));
  EXPECT_TRUE(Predicate{}
                  .where("price", Constraint::Op::kLt, Value::of(151))
                  .matches(e));
  EXPECT_TRUE(Predicate{}
                  .where("price", Constraint::Op::kGt, Value::of(149))
                  .matches(e));
  EXPECT_TRUE(Predicate{}
                  .where("price", Constraint::Op::kNe, Value::of(0))
                  .matches(e));
}

TEST(Predicate, StringEquality) {
  const Event e = trade("AAPL", 150, "tech");
  EXPECT_TRUE(Predicate{}.eq("industry", "tech").matches(e));
  EXPECT_FALSE(Predicate{}.eq("industry", "energy").matches(e));
  EXPECT_TRUE(Predicate{}
                  .where("industry", Constraint::Op::kNe,
                         Value::of(std::string("energy")))
                  .matches(e));
}

TEST(Predicate, StringOrderingRejected) {
  const Event e = trade("AAPL", 150, "tech");
  EXPECT_THROW((void)Predicate{}
                   .where("industry", Constraint::Op::kLt,
                          Value::of(std::string("x")))
                   .matches(e),
               CheckFailure);
}

TEST(Predicate, MissingAttribute) {
  const Event e = trade("AAPL", 150, "tech");
  EXPECT_FALSE(Predicate{}.ge("volume", 1).matches(e));
  EXPECT_FALSE(Predicate{}.where_exists("volume").matches(e));
  EXPECT_TRUE(Predicate{}.where_exists("price").matches(e));
  // Absent attribute satisfies !=.
  EXPECT_TRUE(Predicate{}
                  .where("volume", Constraint::Op::kNe, Value::of(5))
                  .matches(e));
}

TEST(Predicate, ConjunctionSemantics) {
  const Event e = trade("AAPL", 150, "tech");
  EXPECT_TRUE(
      Predicate{}.eq("industry", "tech").ge("price", 100).matches(e));
  EXPECT_FALSE(
      Predicate{}.eq("industry", "tech").ge("price", 200).matches(e));
  EXPECT_TRUE(Predicate{}.matches(e)) << "empty predicate matches all";
}

TEST(Predicate, CanonicalFormOrderInsensitive) {
  Predicate a, b;
  a.eq("industry", "tech").ge("price", 100);
  b.ge("price", 100).eq("industry", "tech");
  EXPECT_EQ(a.canonical(), b.canonical());
  // Duplicates collapse.
  Predicate c;
  c.ge("price", 100).ge("price", 100).eq("industry", "tech");
  EXPECT_EQ(c.canonical(), a.canonical());
  // Different constants differ.
  Predicate d;
  d.eq("industry", "tech").ge("price", 101);
  EXPECT_NE(d.canonical(), a.canonical());
}

TEST(ContentLayer, SamePredicateSharesGroup) {
  pubsub::PubSubSystem system(test::small_config(81));
  ContentLayer layer(system);
  Predicate tech;
  tech.eq("industry", "tech");
  const GroupId g1 = layer.subscribe(N(0), tech);
  const GroupId g2 = layer.subscribe(N(1), tech);
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(layer.num_predicates(), 1u);
  EXPECT_EQ(system.membership().members(g1).size(), 2u);
}

TEST(ContentLayer, PublishFansOutToMatchingGroups) {
  pubsub::PubSubSystem system(test::small_config(82));
  ContentLayer layer(system);
  Predicate tech, pricey, energy;
  tech.eq("industry", "tech");
  pricey.ge("price", 100);
  energy.eq("industry", "energy");
  layer.subscribe(N(0), tech);
  layer.subscribe(N(1), tech);
  layer.subscribe(N(1), pricey);
  layer.subscribe(N(2), pricey);
  layer.subscribe(N(3), energy);

  const auto hit = layer.publish(N(4), trade("AAPL", 150, "tech"), 7);
  EXPECT_EQ(hit.size(), 2u);  // tech and pricey, not energy
  system.run();
  EXPECT_EQ(system.deliveries_to(N(0)).size(), 1u);
  EXPECT_EQ(system.deliveries_to(N(1)).size(), 2u);  // both groups
  EXPECT_EQ(system.deliveries_to(N(3)).size(), 0u);
}

TEST(ContentLayer, OverlappingPredicateGroupsStayConsistent) {
  // Two predicates sharing two subscribers: their groups double-overlap, so
  // the ordering layer sequences them and shared subscribers agree.
  pubsub::PubSubSystem system(test::small_config(83));
  ContentLayer layer(system);
  Predicate tech, pricey;
  tech.eq("industry", "tech");
  pricey.ge("price", 100);
  layer.subscribe_all({{N(0), tech},
                       {N(1), tech},
                       {N(2), tech},
                       {N(1), pricey},
                       {N(2), pricey},
                       {N(3), pricey}});
  EXPECT_EQ(system.overlaps().num_overlaps(), 1u);

  for (int i = 0; i < 6; ++i) {
    layer.publish(N(4), trade("AAPL", 150, "tech"),
                  static_cast<std::uint64_t>(i));       // both groups
    layer.publish(N(5), trade("XOM", 110, "energy"),
                  static_cast<std::uint64_t>(100 + i)); // pricey only
  }
  system.run();
  EXPECT_FALSE(test::find_order_violation(system.deliveries()).has_value());
  EXPECT_EQ(system.deliveries_to(N(1)).size(), 18u);  // 6*2 + 6
}

TEST(ContentLayer, UnsubscribeDropsGroupWithLastMember) {
  pubsub::PubSubSystem system(test::small_config(84));
  ContentLayer layer(system);
  Predicate tech;
  tech.eq("industry", "tech");
  const GroupId g = layer.subscribe(N(0), tech);
  layer.subscribe(N(1), tech);
  layer.unsubscribe(N(0), tech);
  EXPECT_TRUE(system.membership().is_alive(g));
  layer.unsubscribe(N(1), tech);
  EXPECT_EQ(layer.num_predicates(), 0u);
  EXPECT_FALSE(layer.group_of(tech).has_value());
  EXPECT_THROW(layer.unsubscribe(N(1), tech), CheckFailure);
}

TEST(ContentLayer, BatchSubscribeOnePredicatePerGroup) {
  pubsub::PubSubSystem system(test::small_config(85));
  ContentLayer layer(system);
  std::vector<std::pair<NodeId, Predicate>> subs;
  for (unsigned n = 0; n < 6; ++n) {
    Predicate p;
    p.ge("price", (n % 3) * 100);  // three distinct predicates
    subs.emplace_back(N(n), p);
  }
  layer.subscribe_all(subs);
  EXPECT_EQ(layer.num_predicates(), 3u);
  EXPECT_EQ(system.membership().num_groups(), 3u);
}

}  // namespace
}  // namespace decseq::filter
