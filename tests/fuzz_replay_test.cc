// Replays the committed fuzz corpus (fuzz/corpus/*.repro) and requires
// every scenario to pass the full oracle set. Each corpus file is a
// previously interesting scenario — a shrunken failure that was fixed, or
// a seed that exercises a rare schedule — so this is the regression net
// for the whole protocol stack, and runs under the sanitizer CI job too.
//
// DECSEQ_FUZZ_CORPUS_DIR is injected by tests/CMakeLists.txt.
#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/oracle.h"
#include "fuzz/repro.h"
#include "fuzz/runner.h"

namespace decseq::fuzz {
namespace {

TEST(FuzzReplay, CorpusPassesAllOracles) {
  namespace fs = std::filesystem;
  const fs::path dir = DECSEQ_FUZZ_CORPUS_DIR;
  ASSERT_TRUE(fs::is_directory(dir)) << "missing corpus dir " << dir;

  std::vector<fs::path> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".repro") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty()) << "empty corpus in " << dir;

  const std::vector<Oracle> oracles = default_oracles();
  for (const fs::path& file : files) {
    SCOPED_TRACE(file.filename().string());
    const Scenario scenario = load_repro(file.string());
    const RunTrace trace = run_scenario(scenario);
    const auto verdict = check_oracles(trace, oracles);
    EXPECT_FALSE(verdict.has_value())
        << scenario.summary() << " violated [" << verdict->oracle
        << "]: " << verdict->detail;
  }
}

}  // namespace
}  // namespace decseq::fuzz
