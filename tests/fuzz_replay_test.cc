// Replays the committed fuzz corpus (fuzz/corpus/*.repro) and requires
// every scenario to pass the full oracle set. Each corpus file is a
// previously interesting scenario — a shrunken failure that was fixed, or
// a seed that exercises a rare schedule — so this is the regression net
// for the whole protocol stack, and runs under the sanitizer CI job too.
//
// DECSEQ_FUZZ_CORPUS_DIR is injected by tests/CMakeLists.txt.
#include <algorithm>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/oracle.h"
#include "fuzz/repro.h"
#include "fuzz/runner.h"

namespace decseq::fuzz {
namespace {

std::vector<std::filesystem::path> corpus_files() {
  namespace fs = std::filesystem;
  const fs::path dir = DECSEQ_FUZZ_CORPUS_DIR;
  std::vector<fs::path> files;
  if (!fs::is_directory(dir)) return files;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".repro") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Byte-stable rendering of a trace (mirror of tests/fuzz_test.cc).
std::string fingerprint(const RunTrace& t) {
  std::ostringstream os;
  os.precision(17);
  for (const pubsub::Delivery& d : t.log) {
    os << d.receiver << ',' << d.message << ',' << d.group << ',' << d.sender
       << ',' << d.payload << ',' << d.sent_at << ',' << d.delivered_at
       << '\n';
  }
  for (const PublishRecord& r : t.publishes) {
    os << r.payload << ':' << r.rejected << ';';
  }
  os << '\n' << t.threw << ':' << t.exception_what;
  return os.str();
}

TEST(FuzzReplay, CorpusPassesAllOracles) {
  const auto files = corpus_files();
  ASSERT_FALSE(files.empty())
      << "empty corpus in " << DECSEQ_FUZZ_CORPUS_DIR;

  const std::vector<Oracle> oracles = default_oracles();
  for (const auto& file : files) {
    SCOPED_TRACE(file.filename().string());
    const Scenario scenario = load_repro(file.string());
    const RunTrace trace = run_scenario(scenario);
    const auto verdict = check_oracles(trace, oracles);
    EXPECT_FALSE(verdict.has_value())
        << scenario.summary() << " violated [" << verdict->oracle
        << "]: " << verdict->detail;
  }
}

TEST(FuzzReplay, CorpusMatchesAcrossShardCounts) {
  // Every regression scenario in the corpus must replay to the identical
  // observable trace under 1, 2, and 4 worker shards — the corpus doubles
  // as the determinism regression net for the sharded runtime.
  const auto files = corpus_files();
  ASSERT_FALSE(files.empty());
  const std::vector<Oracle> oracles = default_oracles();
  for (const auto& file : files) {
    SCOPED_TRACE(file.filename().string());
    const Scenario scenario = load_repro(file.string());
    RunnerOptions options;
    options.shards = 1;
    const RunTrace one = run_scenario(scenario, options);
    EXPECT_FALSE(one.threw) << one.exception_what;
    const auto verdict = check_oracles(one, oracles);
    EXPECT_FALSE(verdict.has_value())
        << "sharded replay violated [" << verdict->oracle
        << "]: " << verdict->detail;
    const std::string want = fingerprint(one);
    for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
      options.shards = shards;
      EXPECT_EQ(want, fingerprint(run_scenario(scenario, options)))
          << "1 vs " << shards << " shards";
    }
  }
}

}  // namespace
}  // namespace decseq::fuzz
