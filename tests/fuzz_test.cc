// Self-tests for the scenario fuzzer: generator and run determinism, the
// oracle set on clean seeds and on synthetic bad traces, repro round-trip,
// shrinker mutation algebra, and the end-to-end bug hunt — an injected
// ordering bug (receivers skipping stamp validation) must be caught by the
// oracles and shrunk to a minimal scenario.
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "fuzz/oracle.h"
#include "fuzz/repro.h"
#include "fuzz/runner.h"
#include "fuzz/scenario.h"
#include "fuzz/shrink.h"
#include "protocol/receiver.h"

namespace decseq::fuzz {
namespace {

/// Scoped enable for the hidden receiver bug (always restored, also on
/// test failure).
class StampBugGuard {
 public:
  StampBugGuard() { protocol::testhooks::g_skip_stamp_validation = true; }
  ~StampBugGuard() { protocol::testhooks::g_skip_stamp_validation = false; }
};

/// Byte-stable rendering of everything observable in a trace; two runs of
/// the same scenario must produce identical fingerprints.
std::string fingerprint(const RunTrace& t) {
  std::ostringstream os;
  os.precision(17);
  for (const pubsub::Delivery& d : t.log) {
    os << d.receiver << ',' << d.message << ',' << d.group << ',' << d.sender
       << ',' << d.payload << ',' << d.sent_at << ',' << d.delivered_at
       << '\n';
  }
  for (const PublishRecord& r : t.publishes) {
    os << r.payload << ':' << r.rejected << ';';
  }
  os << '\n';
  for (const std::size_t b : t.buffered_after_phase) os << b << ' ';
  os << '\n' << t.threw << ':' << t.exception_what;
  for (const std::string& e : t.graph_errors) os << '\n' << e;
  return os.str();
}

TEST(FuzzScenario, GeneratorIsDeterministic) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 31337ULL}) {
    EXPECT_EQ(generate_scenario(seed), generate_scenario(seed))
        << "seed " << seed;
  }
}

TEST(FuzzScenario, DistinctSeedsDiverge) {
  EXPECT_NE(generate_scenario(1), generate_scenario(2));
}

TEST(FuzzRunner, RunIsBitDeterministic) {
  for (const std::uint64_t seed : {3ULL, 11ULL, 29ULL}) {
    const Scenario scenario = generate_scenario(seed);
    const std::string a = fingerprint(run_scenario(scenario));
    const std::string b = fingerprint(run_scenario(scenario));
    EXPECT_EQ(a, b) << "seed " << seed << " not deterministic";
  }
}

TEST(FuzzRunner, CleanSeedsPassAllOracles) {
  const std::vector<Oracle> oracles = default_oracles();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Scenario scenario = generate_scenario(seed);
    const RunTrace trace = run_scenario(scenario);
    const auto verdict = check_oracles(trace, oracles);
    EXPECT_FALSE(verdict.has_value())
        << "seed " << seed << " (" << scenario.summary() << ") violated ["
        << verdict->oracle << "]: " << verdict->detail;
  }
}

// The oracles must also fire on bad data — exercised with synthetic traces
// so each failure mode is pinned down independently of the protocol.
TEST(FuzzOracle, LivenessCatchesLostAndDuplicatedDeliveries) {
  const std::vector<Oracle> oracles = default_oracles();
  RunTrace t;
  PublishRecord r;
  r.payload = 0;
  r.ordinal = 0;
  r.expected_receivers = {NodeId(1), NodeId(2)};
  t.publishes.push_back(r);

  // Missing delivery at node 2.
  t.log.push_back({NodeId(1), MsgId(0), GroupId(0), NodeId(0), 0, 0.0, 1.0});
  auto verdict = check_oracles(t, oracles);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->oracle, "liveness");

  // Duplicate delivery at node 1.
  t.log.push_back({NodeId(2), MsgId(0), GroupId(0), NodeId(0), 0, 0.0, 1.0});
  t.log.push_back({NodeId(1), MsgId(0), GroupId(0), NodeId(0), 0, 0.0, 2.0});
  verdict = check_oracles(t, oracles);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->oracle, "liveness");

  // Exactly once to both members: clean.
  t.log.pop_back();
  EXPECT_FALSE(check_oracles(t, oracles).has_value());

  // A delivery matching no issued publish.
  t.log.push_back({NodeId(1), MsgId(9), GroupId(0), NodeId(0), 99, 0.0, 3.0});
  verdict = check_oracles(t, oracles);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->oracle, "liveness");
}

TEST(FuzzOracle, CausalityCatchesInvertedChain) {
  const std::vector<Oracle> oracles = default_oracles();
  RunTrace t;
  for (std::uint32_t ordinal : {0u, 1u}) {
    PublishRecord r;
    r.ordinal = ordinal;
    r.payload = ordinal | kCausalPayloadBit;
    r.causal = true;
    r.expected_receivers = {NodeId(1)};
    t.publishes.push_back(r);
  }
  // Node 1 observes sender 0's causal chain inverted: #1 before #0.
  t.log.push_back({NodeId(1), MsgId(1), GroupId(0), NodeId(0),
                   1 | kCausalPayloadBit, 0.0, 1.0});
  t.log.push_back({NodeId(1), MsgId(0), GroupId(1), NodeId(0),
                   0 | kCausalPayloadBit, 0.0, 2.0});
  const auto verdict = check_oracles(t, oracles);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->oracle, "causality");
}

TEST(FuzzRepro, RoundTripsExactly) {
  for (const std::uint64_t seed : {1ULL, 5ULL, 23ULL, 99ULL}) {
    const Scenario original = generate_scenario(seed);
    std::stringstream buffer;
    write_repro(original, buffer);
    const Scenario reloaded = read_repro(buffer);
    EXPECT_EQ(original, reloaded) << "seed " << seed << " repro not exact";
  }
}

TEST(FuzzRepro, RejectsMalformedInput) {
  const auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return read_repro(in);
  };
  EXPECT_THROW(parse(""), CheckFailure);
  EXPECT_THROW(parse("scenario v2\n"), CheckFailure);
  const std::string header =
      "scenario v1\nseed 1\nhosts 8\nclusters 2\nloss 0\nrto 40\n";
  EXPECT_THROW(parse(header), CheckFailure);  // no phase block
  EXPECT_THROW(parse(header + "phase\ncreate 0 1\n"), CheckFailure);  // no end
  EXPECT_THROW(parse(header + "phase\nwarp 1\nend\n"), CheckFailure);
  EXPECT_THROW(parse(header + "phase\npub 1.0 3\nend\n"), CheckFailure);
  EXPECT_THROW(parse(header + "phase\njoin 0 x\nend\n"), CheckFailure);
  // Missing header field.
  EXPECT_THROW(parse("scenario v1\nseed 1\nphase\nend\n"), CheckFailure);
  // Comments and blank lines are fine.
  EXPECT_NO_THROW(parse("# hi\n" + header + "\nphase\ncreate 0 1\nend\n"));
}

/// Hand-built scenario for the mutation-algebra tests:
///   phase 0: create g0, create g1; fin g1; pubs to g0 and g1
///   phase 1: create g2; join(g0), leave(g2); pub to g2; crash
Scenario two_phase_fixture() {
  Scenario s;
  s.num_hosts = 8;
  Phase p0;
  p0.reconfig.push_back({MembershipOp::Kind::kCreate, 0, 0, {0, 1, 2}});
  p0.reconfig.push_back({MembershipOp::Kind::kCreate, 0, 0, {1, 2, 3}});
  p0.publishes.push_back({10.0, 0, 0, false});
  p0.publishes.push_back({20.0, 1, 1, false});
  p0.terminations.push_back({1, 50.0, 0});
  Phase p1;
  p1.reconfig.push_back({MembershipOp::Kind::kCreate, 0, 0, {4, 5, 6}});
  p1.reconfig.push_back({MembershipOp::Kind::kJoin, 0, 7, {}});
  p1.reconfig.push_back({MembershipOp::Kind::kLeave, 2, 4, {}});
  p1.publishes.push_back({5.0, 4, 2, false});
  p1.crashes.push_back({3, 0.0, 60.0});
  s.phases = {std::move(p0), std::move(p1)};
  return s;
}

TEST(FuzzShrink, RemoveGroupRenumbersReferences) {
  const Scenario shrunk = remove_scenario_group(two_phase_fixture(), 1);
  EXPECT_EQ(shrunk.num_groups(), 2u);
  // g1's publish and fin are gone; g2's references renumbered to 1.
  ASSERT_EQ(shrunk.phases[0].publishes.size(), 1u);
  EXPECT_EQ(shrunk.phases[0].publishes[0].group, 0u);
  EXPECT_TRUE(shrunk.phases[0].terminations.empty());
  ASSERT_EQ(shrunk.phases[1].publishes.size(), 1u);
  EXPECT_EQ(shrunk.phases[1].publishes[0].group, 1u);
  ASSERT_EQ(shrunk.phases[1].reconfig.size(), 3u);
  EXPECT_EQ(shrunk.phases[1].reconfig[1].group, 0u);  // join g0 untouched
  EXPECT_EQ(shrunk.phases[1].reconfig[2].group, 1u);  // leave g2 -> g1
}

TEST(FuzzShrink, DropPhaseRemovesItsGroupsEverywhere) {
  const Scenario shrunk = drop_phase(two_phase_fixture(), 0);
  ASSERT_EQ(shrunk.phases.size(), 1u);
  EXPECT_EQ(shrunk.num_groups(), 1u);
  // g2 becomes g0; the join on (now nonexistent) g0 is dropped.
  std::size_t joins = 0;
  for (const MembershipOp& op : shrunk.phases[0].reconfig) {
    if (op.kind == MembershipOp::Kind::kJoin) ++joins;
  }
  EXPECT_EQ(joins, 0u);
  ASSERT_EQ(shrunk.phases[0].publishes.size(), 1u);
  EXPECT_EQ(shrunk.phases[0].publishes[0].group, 0u);
  ASSERT_EQ(shrunk.phases[0].reconfig.size(), 2u);
  EXPECT_EQ(shrunk.phases[0].reconfig[1].group, 0u);  // leave g2 -> g0
}

// The acceptance self-test: hide a real ordering bug behind the test hook,
// let the fuzzer find it, and require the shrinker to reduce the failure
// to a tiny scenario.
TEST(FuzzEndToEnd, InjectedStampBugIsCaughtAndShrunkSmall) {
  StampBugGuard bug;
  const std::vector<Oracle> oracles = default_oracles();

  std::optional<Scenario> failing;
  std::string failing_oracle;
  for (std::uint64_t seed = 1; seed <= 60 && !failing; ++seed) {
    const Scenario scenario = generate_scenario(seed);
    const auto verdict = check_oracles(run_scenario(scenario), oracles);
    if (verdict) {
      failing = scenario;
      failing_oracle = verdict->oracle;
    }
  }
  ASSERT_TRUE(failing.has_value())
      << "no seed in 1..60 exposed the injected stamp bug";

  const ShrinkResult result = shrink(
      *failing,
      [&](const Scenario& candidate) {
        const auto v = check_oracles(run_scenario(candidate), oracles);
        return v.has_value() && v->oracle == failing_oracle;
      },
      {.max_runs = 400});

  // Still failing, and minimal: the cross-group ordering bug needs two
  // overlapping groups and a handful of publishes, nothing more.
  const auto verdict = check_oracles(run_scenario(result.scenario), oracles);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->oracle, failing_oracle);
  EXPECT_LE(result.scenario.num_groups(), 3u)
      << result.scenario.summary() << " after " << result.runs << " runs";
  EXPECT_LE(result.scenario.num_publishes(), 10u)
      << result.scenario.summary() << " after " << result.runs << " runs";
  EXPECT_LE(result.scenario.phases.size(), 2u);
}

}  // namespace
}  // namespace decseq::fuzz
