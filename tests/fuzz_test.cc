// Self-tests for the scenario fuzzer: generator and run determinism, the
// oracle set on clean seeds and on synthetic bad traces, repro round-trip,
// shrinker mutation algebra, and the end-to-end bug hunt — an injected
// ordering bug (receivers skipping stamp validation) must be caught by the
// oracles and shrunk to a minimal scenario.
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "fuzz/oracle.h"
#include "fuzz/repro.h"
#include "fuzz/runner.h"
#include "fuzz/scenario.h"
#include "fuzz/shrink.h"
#include "protocol/receiver.h"

namespace decseq::fuzz {
namespace {

/// Scoped enable for the hidden receiver bug (always restored, also on
/// test failure).
class StampBugGuard {
 public:
  StampBugGuard() { protocol::testhooks::g_skip_stamp_validation = true; }
  ~StampBugGuard() { protocol::testhooks::g_skip_stamp_validation = false; }
};

/// Byte-stable rendering of everything observable in a trace; two runs of
/// the same scenario must produce identical fingerprints.
std::string fingerprint(const RunTrace& t) {
  std::ostringstream os;
  os.precision(17);
  for (const pubsub::Delivery& d : t.log) {
    os << d.receiver << ',' << d.message << ',' << d.group << ',' << d.sender
       << ',' << d.payload << ',' << d.sent_at << ',' << d.delivered_at
       << '\n';
  }
  for (const PublishRecord& r : t.publishes) {
    os << r.payload << ':' << r.rejected << ';';
  }
  os << '\n';
  for (const std::size_t b : t.buffered_after_phase) os << b << ' ';
  os << '\n' << t.threw << ':' << t.exception_what;
  for (const std::string& e : t.graph_errors) os << '\n' << e;
  return os.str();
}

TEST(FuzzScenario, GeneratorIsDeterministic) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 31337ULL}) {
    EXPECT_EQ(generate_scenario(seed), generate_scenario(seed))
        << "seed " << seed;
  }
}

TEST(FuzzScenario, DistinctSeedsDiverge) {
  EXPECT_NE(generate_scenario(1), generate_scenario(2));
}

TEST(FuzzScenario, ChurnOpsNeverTargetSameBatchCreates) {
  // Regression: churn join/leave draws used to include the group created
  // earlier in the same phase's batch — an index the runner cannot resolve
  // to a GroupId yet, so the op was silently skipped and the sweep lost
  // that scenario weight. The generator must validate targets itself.
  GeneratorOptions churny;
  churny.max_phases = 5;
  churny.reconfigure_probability = 0.95;
  churny.max_churn_ops_per_phase = 4;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const Scenario scenario =
        seed % 2 == 0 ? generate_scenario(seed, churny)
                      : generate_scenario(seed);
    std::uint32_t groups_before_phase = 0;
    for (std::size_t p = 0; p < scenario.phases.size(); ++p) {
      std::uint32_t created_this_phase = 0;
      for (const MembershipOp& op : scenario.phases[p].reconfig) {
        if (op.kind == MembershipOp::Kind::kCreate) {
          ++created_this_phase;
          continue;
        }
        if (op.kind == MembershipOp::Kind::kJoin ||
            op.kind == MembershipOp::Kind::kLeave) {
          EXPECT_LT(op.group, groups_before_phase)
              << "seed " << seed << " phase " << p
              << " churn op targets a group created in the same batch";
        }
      }
      groups_before_phase += created_this_phase;
    }
  }
}

TEST(FuzzRunner, RunIsBitDeterministic) {
  for (const std::uint64_t seed : {3ULL, 11ULL, 29ULL}) {
    const Scenario scenario = generate_scenario(seed);
    const std::string a = fingerprint(run_scenario(scenario));
    const std::string b = fingerprint(run_scenario(scenario));
    EXPECT_EQ(a, b) << "seed " << seed << " not deterministic";
  }
}

TEST(FuzzRunner, CleanSeedsPassAllOracles) {
  const std::vector<Oracle> oracles = default_oracles();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Scenario scenario = generate_scenario(seed);
    const RunTrace trace = run_scenario(scenario);
    const auto verdict = check_oracles(trace, oracles);
    EXPECT_FALSE(verdict.has_value())
        << "seed " << seed << " (" << scenario.summary() << ") violated ["
        << verdict->oracle << "]: " << verdict->detail;
  }
}

// The oracles must also fire on bad data — exercised with synthetic traces
// so each failure mode is pinned down independently of the protocol.
TEST(FuzzOracle, LivenessCatchesLostAndDuplicatedDeliveries) {
  const std::vector<Oracle> oracles = default_oracles();
  RunTrace t;
  PublishRecord r;
  r.payload = 0;
  r.ordinal = 0;
  r.expected_receivers = {NodeId(1), NodeId(2)};
  t.publishes.push_back(r);

  // Missing delivery at node 2.
  t.log.push_back({NodeId(1), MsgId(0), GroupId(0), NodeId(0), 0, 0.0, 1.0});
  auto verdict = check_oracles(t, oracles);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->oracle, "liveness");

  // Duplicate delivery at node 1.
  t.log.push_back({NodeId(2), MsgId(0), GroupId(0), NodeId(0), 0, 0.0, 1.0});
  t.log.push_back({NodeId(1), MsgId(0), GroupId(0), NodeId(0), 0, 0.0, 2.0});
  verdict = check_oracles(t, oracles);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->oracle, "liveness");

  // Exactly once to both members: clean.
  t.log.pop_back();
  EXPECT_FALSE(check_oracles(t, oracles).has_value());

  // A delivery matching no issued publish.
  t.log.push_back({NodeId(1), MsgId(9), GroupId(0), NodeId(0), 99, 0.0, 3.0});
  verdict = check_oracles(t, oracles);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->oracle, "liveness");
}

TEST(FuzzOracle, CausalityCatchesInvertedChain) {
  const std::vector<Oracle> oracles = default_oracles();
  RunTrace t;
  for (std::uint32_t ordinal : {0u, 1u}) {
    PublishRecord r;
    r.ordinal = ordinal;
    r.payload = ordinal | kCausalPayloadBit;
    r.causal = true;
    r.expected_receivers = {NodeId(1)};
    t.publishes.push_back(r);
  }
  // Node 1 observes sender 0's causal chain inverted: #1 before #0.
  t.log.push_back({NodeId(1), MsgId(1), GroupId(0), NodeId(0),
                   1 | kCausalPayloadBit, 0.0, 1.0});
  t.log.push_back({NodeId(1), MsgId(0), GroupId(1), NodeId(0),
                   0 | kCausalPayloadBit, 0.0, 2.0});
  const auto verdict = check_oracles(t, oracles);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->oracle, "causality");
}

TEST(FuzzRepro, RoundTripsExactly) {
  for (const std::uint64_t seed : {1ULL, 5ULL, 23ULL, 99ULL}) {
    const Scenario original = generate_scenario(seed);
    std::stringstream buffer;
    write_repro(original, buffer);
    const Scenario reloaded = read_repro(buffer);
    EXPECT_EQ(original, reloaded) << "seed " << seed << " repro not exact";
  }
}

TEST(FuzzRepro, RejectsMalformedInput) {
  const auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return read_repro(in);
  };
  EXPECT_THROW(parse(""), CheckFailure);
  EXPECT_THROW(parse("scenario v2\n"), CheckFailure);
  const std::string header =
      "scenario v1\nseed 1\nhosts 8\nclusters 2\nloss 0\nrto 40\n";
  EXPECT_THROW(parse(header), CheckFailure);  // no phase block
  EXPECT_THROW(parse(header + "phase\ncreate 0 1\n"), CheckFailure);  // no end
  EXPECT_THROW(parse(header + "phase\nwarp 1\nend\n"), CheckFailure);
  EXPECT_THROW(parse(header + "phase\npub 1.0 3\nend\n"), CheckFailure);
  EXPECT_THROW(parse(header + "phase\njoin 0 x\nend\n"), CheckFailure);
  // Missing header field.
  EXPECT_THROW(parse("scenario v1\nseed 1\nphase\nend\n"), CheckFailure);
  // Comments and blank lines are fine.
  EXPECT_NO_THROW(parse("# hi\n" + header + "\nphase\ncreate 0 1\nend\n"));
}

TEST(FuzzOracle, FifoForgivesRetriedIngressButCatchesPlainInversion) {
  const std::vector<Oracle> oracles = default_oracles();
  RunTrace t;
  for (std::uint32_t ordinal : {0u, 1u, 2u}) {
    PublishRecord r;
    r.ordinal = ordinal;
    r.payload = ordinal;
    r.id = MsgId(ordinal);
    r.expected_receivers = {NodeId(1)};
    t.publishes.push_back(r);
  }
  // Publish #0's ingress leg was retried (its machine was down): the retry
  // may legitimately land after the sender's later traffic.
  t.publishes[0].ingress_retried = true;
  t.log.push_back({NodeId(1), MsgId(1), GroupId(0), NodeId(0), 1, 0.0, 1.0});
  t.log.push_back({NodeId(1), MsgId(2), GroupId(0), NodeId(0), 2, 0.0, 2.0});
  t.log.push_back({NodeId(1), MsgId(0), GroupId(0), NodeId(0), 0, 0.0, 3.0});
  EXPECT_FALSE(check_oracles(t, oracles).has_value())
      << "the retried publish's late arrival is not a FIFO violation";

  // Inverting the two NON-retried publishes is a real violation; the
  // oracle must run (not be skipped) despite the fault in the trace.
  std::swap(t.log[0], t.log[1]);
  const auto verdict = check_oracles(t, oracles);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->oracle, "fifo");
}

TEST(FuzzOracle, ChannelFaultsCatchStuckFault) {
  const std::vector<Oracle> oracles = default_oracles();
  RunTrace t;
  // Faults that entered and later recovered are legal (informational).
  t.channel_fault_events = 3;
  EXPECT_FALSE(check_oracles(t, oracles).has_value());
  // An edge still faulted after a phase drain means a lost recovery.
  t.stuck_channel_faults.push_back("phase 0: 2->5");
  const auto verdict = check_oracles(t, oracles);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->oracle, "channel-faults");
}

TEST(FuzzOracle, LivenessCatchesUnexplainedIngressFailure) {
  const std::vector<Oracle> oracles = default_oracles();
  RunTrace t;
  PublishRecord r;
  r.payload = 0;
  r.expected_receivers = {NodeId(1)};
  r.ingress_failed = true;
  t.publishes.push_back(r);
  // Failed ingress with no publisher-crash window to blame: violation.
  auto verdict = check_oracles(t, oracles);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->oracle, "liveness");
  // Blamed on a crash window: clean, and nobody expects a delivery.
  t.publishes[0].ingress_failure_allowed = true;
  EXPECT_FALSE(check_oracles(t, oracles).has_value());
  // A message that failed ingress must never also be delivered.
  t.log.push_back({NodeId(1), MsgId(0), GroupId(0), NodeId(0), 0, 0.0, 1.0});
  verdict = check_oracles(t, oracles);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->oracle, "liveness");
}

/// True when the legacy single-threaded runtime must produce the exact
/// trace the sharded one does: the comparison requires a schedule where the
/// channel RNGs never draw, because legacy channels share the system RNG
/// while sharded channels draw per-unit streams — one draw desynchronizes
/// not just that channel's jitter but the system RNG's position at every
/// later epoch rebuild (placement shifts, so whole pipelines move).
/// Channels draw on loss (loss coin per packet) and on retransmit (backoff
/// jitter) — and retransmits fire even on a loss-free channel whenever its
/// round trip exceeds the retransmit timeout, so the rto must be too large
/// for any spurious retransmit as well. Fault windows are excluded because
/// a harness event can collide with a same-instant protocol event (where
/// the two runtimes order the tie differently), and causal publishes
/// because two same-instant deliveries in different units can both release
/// a queued publish (legacy pumps those in heap interleaving order, the
/// sharded commit pumps them in merge order — either order is a valid
/// consistent order, but the released messages get different ids and
/// schedules). Shard-count invariance needs none of these exclusions; they
/// only gate the cross-runtime comparison.
bool legacy_comparable(const Scenario& s) {
  if (s.loss_probability > 0.0) return false;
  // Fuzz-topology round trips top out far below 1s; anything smaller risks
  // a spurious retransmit, whose jitter draw splits the RNG streams.
  if (s.retransmit_timeout_ms < 1000.0) return false;
  for (const Phase& p : s.phases) {
    if (!p.crashes.empty() || !p.partitions.empty() ||
        !p.publisher_crashes.empty()) {
      return false;
    }
    for (const PublishOp& op : p.publishes) {
      if (op.causal) return false;
    }
  }
  return true;
}

/// Hand-built scenario for the mutation-algebra tests:
///   phase 0: create g0, create g1; fin g1; pubs to g0 and g1
///   phase 1: create g2; join(g0), leave(g2); pub to g2; crash
Scenario two_phase_fixture() {
  Scenario s;
  s.num_hosts = 8;
  Phase p0;
  p0.reconfig.push_back({MembershipOp::Kind::kCreate, 0, 0, {0, 1, 2}});
  p0.reconfig.push_back({MembershipOp::Kind::kCreate, 0, 0, {1, 2, 3}});
  p0.publishes.push_back({10.0, 0, 0, false});
  p0.publishes.push_back({20.0, 1, 1, false});
  p0.terminations.push_back({1, 50.0, 0});
  Phase p1;
  p1.reconfig.push_back({MembershipOp::Kind::kCreate, 0, 0, {4, 5, 6}});
  p1.reconfig.push_back({MembershipOp::Kind::kJoin, 0, 7, {}});
  p1.reconfig.push_back({MembershipOp::Kind::kLeave, 2, 4, {}});
  p1.publishes.push_back({5.0, 4, 2, false});
  p1.crashes.push_back({3, 0.0, 60.0});
  s.phases = {std::move(p0), std::move(p1)};
  return s;
}

TEST(FuzzShrink, RemoveGroupRenumbersReferences) {
  const Scenario shrunk = remove_scenario_group(two_phase_fixture(), 1);
  EXPECT_EQ(shrunk.num_groups(), 2u);
  // g1's publish and fin are gone; g2's references renumbered to 1.
  ASSERT_EQ(shrunk.phases[0].publishes.size(), 1u);
  EXPECT_EQ(shrunk.phases[0].publishes[0].group, 0u);
  EXPECT_TRUE(shrunk.phases[0].terminations.empty());
  ASSERT_EQ(shrunk.phases[1].publishes.size(), 1u);
  EXPECT_EQ(shrunk.phases[1].publishes[0].group, 1u);
  ASSERT_EQ(shrunk.phases[1].reconfig.size(), 3u);
  EXPECT_EQ(shrunk.phases[1].reconfig[1].group, 0u);  // join g0 untouched
  EXPECT_EQ(shrunk.phases[1].reconfig[2].group, 1u);  // leave g2 -> g1
}

TEST(FuzzShrink, DropPhaseRemovesItsGroupsEverywhere) {
  const Scenario shrunk = drop_phase(two_phase_fixture(), 0);
  ASSERT_EQ(shrunk.phases.size(), 1u);
  EXPECT_EQ(shrunk.num_groups(), 1u);
  // g2 becomes g0; the join on (now nonexistent) g0 is dropped.
  std::size_t joins = 0;
  for (const MembershipOp& op : shrunk.phases[0].reconfig) {
    if (op.kind == MembershipOp::Kind::kJoin) ++joins;
  }
  EXPECT_EQ(joins, 0u);
  ASSERT_EQ(shrunk.phases[0].publishes.size(), 1u);
  EXPECT_EQ(shrunk.phases[0].publishes[0].group, 0u);
  ASSERT_EQ(shrunk.phases[0].reconfig.size(), 2u);
  EXPECT_EQ(shrunk.phases[0].reconfig[1].group, 0u);  // leave g2 -> g0
}

TEST(FuzzRepro, HostFaultFieldsRoundTrip) {
  Scenario s = two_phase_fixture();
  s.max_retransmits = 3;
  s.phases[0].publisher_crashes.push_back({5, 12.5, 80.0});
  s.phases[1].partitions.push_back({0xdeadbeefULL, 7.25, 150.0});
  std::stringstream buffer;
  write_repro(s, buffer);
  EXPECT_EQ(read_repro(buffer), s);
}

TEST(FuzzRepro, PreHostFaultFilesKeepDefaults) {
  // A v1 file written before host faults existed (no budget / pubcrash /
  // cut lines) must still parse, with the old defaults.
  std::istringstream in(
      "scenario v1\nseed 1\nhosts 8\nclusters 2\nloss 0\nrto 40\n"
      "phase\ncreate 0 1\npub 1.0 0 0\nend\n");
  const Scenario s = read_repro(in);
  EXPECT_EQ(s.max_retransmits, 5000u);
  ASSERT_EQ(s.phases.size(), 1u);
  EXPECT_TRUE(s.phases[0].publisher_crashes.empty());
  EXPECT_TRUE(s.phases[0].partitions.empty());
}

TEST(FuzzShrink, HostFaultWindowsDroppedAndNarrowed) {
  Scenario s = two_phase_fixture();
  s.phases[0].publisher_crashes.push_back({2, 5.0, 100.0});
  s.phases[1].partitions.push_back({99, 10.0, 200.0});

  // Against a predicate indifferent to faults, every host-fault window is
  // shrinkable noise and must be stripped.
  const ShrinkResult stripped =
      shrink(s, [](const Scenario&) { return true; }, {.max_runs = 500});
  EXPECT_EQ(stripped.scenario.num_host_faults(), 0u);

  // Against one that needs the partition, the window survives but the
  // narrowing pass halves it down.
  const ShrinkResult kept = shrink(
      s,
      [](const Scenario& candidate) {
        for (const Phase& p : candidate.phases) {
          if (!p.partitions.empty()) return true;
        }
        return false;
      },
      {.max_runs = 500});
  std::size_t windows = 0;
  double total_duration = 0.0;
  for (const Phase& p : kept.scenario.phases) {
    for (const PartitionWindow& w : p.partitions) {
      ++windows;
      total_duration += w.duration;
    }
  }
  ASSERT_EQ(windows, 1u);
  EXPECT_LT(total_duration, 200.0) << "narrowing must shrink the window";
}

/// Generator knobs matching the driver's --hostile mode.
GeneratorOptions hostile_options() {
  GeneratorOptions gen;
  gen.crash_probability = 0.7;
  gen.publisher_crash_probability = 0.6;
  gen.partition_probability = 0.5;
  gen.small_budget_probability = 0.5;
  return gen;
}

TEST(FuzzSharded, GeneratedScenariosMatchAcrossShardCounts) {
  // The sharded runtime's headline guarantee, pushed through the fuzzer's
  // full behavior space (reconfiguration, FINs, crashes, partitions,
  // causal chains, lossy channels): the observable trace is identical at
  // every shard count, and identical to the legacy runtime whenever the
  // RNG streams and tie-break schedules coincide.
  std::size_t legacy_checked = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Scenario scenario =
        seed % 2 == 0 ? generate_scenario(seed, hostile_options())
                      : generate_scenario(seed);
    RunnerOptions options;
    options.shards = 1;
    const std::string one = fingerprint(run_scenario(scenario, options));
    options.shards = 2;
    EXPECT_EQ(one, fingerprint(run_scenario(scenario, options)))
        << "seed " << seed << ": 1 vs 2 shards";
    options.shards = 4;
    EXPECT_EQ(one, fingerprint(run_scenario(scenario, options)))
        << "seed " << seed << ": 1 vs 4 shards";
    if (legacy_comparable(scenario)) {
      ++legacy_checked;
      EXPECT_EQ(fingerprint(run_scenario(scenario)), one)
          << "seed " << seed << ": legacy vs sharded";
    }
  }
  // The generator rarely emits an eligible scenario on its own, so also
  // compare against stripped-down variants that are eligible by
  // construction (same membership/traffic script, drawless schedule).
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Scenario scenario = generate_scenario(seed);
    scenario.loss_probability = 0.0;
    scenario.retransmit_timeout_ms = 10000.0;  // no spurious retransmits
    for (Phase& p : scenario.phases) {
      p.crashes.clear();
      p.partitions.clear();
      p.publisher_crashes.clear();
      for (PublishOp& op : p.publishes) op.causal = false;
    }
    ASSERT_TRUE(legacy_comparable(scenario));
    ++legacy_checked;
    RunnerOptions options;
    options.shards = 4;
    EXPECT_EQ(fingerprint(run_scenario(scenario)),
              fingerprint(run_scenario(scenario, options)))
        << "seed " << seed << " (stripped): legacy vs 4 shards";
  }
  EXPECT_GE(legacy_checked, 4u);
}

TEST(FuzzRunner, HostileSeedsPassOraclesAndExerciseFaults) {
  // Host-fault-heavy generation: every scenario must run abort-free and
  // clean through the full oracle set, and the sweep as a whole must
  // actually exercise the fault machinery (budget exhaustion, abandoned
  // ingress) — otherwise the knobs are decorative.
  const std::vector<Oracle> oracles = default_oracles();
  std::size_t with_host_faults = 0;
  std::size_t with_channel_faults = 0;
  std::size_t abandoned_publishes = 0;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const Scenario scenario = generate_scenario(seed, hostile_options());
    if (scenario.num_host_faults() > 0) ++with_host_faults;
    const RunTrace trace = run_scenario(scenario);
    EXPECT_FALSE(trace.threw)
        << "seed " << seed << " aborted: " << trace.exception_what;
    const auto verdict = check_oracles(trace, oracles);
    EXPECT_FALSE(verdict.has_value())
        << "seed " << seed << " (" << scenario.summary() << ") violated ["
        << verdict->oracle << "]: " << verdict->detail;
    if (trace.channel_fault_events > 0) ++with_channel_faults;
    for (const PublishRecord& r : trace.publishes) {
      if (r.ingress_failed) ++abandoned_publishes;
    }
  }
  EXPECT_GE(with_host_faults, 5u);
  EXPECT_GE(with_channel_faults, 1u)
      << "no scenario drove a channel past its budget";
  EXPECT_GE(abandoned_publishes, 1u)
      << "no publisher crash ever abandoned a publish";
}

TEST(FuzzEndToEnd, ExhaustedBudgetScenarioRunsAndShrinksCleanly) {
  // Outage windows longer than the retransmission budget used to hit the
  // channel's give-up CHECK and abort the whole run. Hunt a hostile seed
  // that exhausts a budget, confirm it runs clean, and shrink it against
  // a "still exhausts" predicate — the fault must survive minimization.
  std::optional<Scenario> found;
  for (std::uint64_t seed = 1; seed <= 40 && !found; ++seed) {
    const Scenario scenario = generate_scenario(seed, hostile_options());
    const RunTrace trace = run_scenario(scenario);
    EXPECT_FALSE(trace.threw)
        << "seed " << seed << " aborted: " << trace.exception_what;
    if (trace.channel_fault_events > 0) found = scenario;
  }
  ASSERT_TRUE(found.has_value())
      << "no hostile seed in 1..40 exhausted a channel budget";

  const ShrinkResult result = shrink(
      *found,
      [](const Scenario& candidate) {
        return run_scenario(candidate).channel_fault_events > 0;
      },
      {.max_runs = 120});
  const RunTrace small = run_scenario(result.scenario);
  EXPECT_FALSE(small.threw);
  EXPECT_GT(small.channel_fault_events, 0u);
  EXPECT_LE(result.scenario.num_publishes(), found->num_publishes());
}

// The acceptance self-test: hide a real ordering bug behind the test hook,
// let the fuzzer find it, and require the shrinker to reduce the failure
// to a tiny scenario.
TEST(FuzzEndToEnd, InjectedStampBugIsCaughtAndShrunkSmall) {
  StampBugGuard bug;
  const std::vector<Oracle> oracles = default_oracles();

  std::optional<Scenario> failing;
  std::string failing_oracle;
  for (std::uint64_t seed = 1; seed <= 60 && !failing; ++seed) {
    const Scenario scenario = generate_scenario(seed);
    const auto verdict = check_oracles(run_scenario(scenario), oracles);
    if (verdict) {
      failing = scenario;
      failing_oracle = verdict->oracle;
    }
  }
  ASSERT_TRUE(failing.has_value())
      << "no seed in 1..60 exposed the injected stamp bug";

  const ShrinkResult result = shrink(
      *failing,
      [&](const Scenario& candidate) {
        const auto v = check_oracles(run_scenario(candidate), oracles);
        return v.has_value() && v->oracle == failing_oracle;
      },
      {.max_runs = 400});

  // Still failing, and minimal: the cross-group ordering bug needs two
  // overlapping groups and a handful of publishes, nothing more.
  const auto verdict = check_oracles(run_scenario(result.scenario), oracles);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->oracle, failing_oracle);
  EXPECT_LE(result.scenario.num_groups(), 3u)
      << result.scenario.summary() << " after " << result.runs << " runs";
  EXPECT_LE(result.scenario.num_publishes(), 10u)
      << result.scenario.summary() << " after " << result.runs << " runs";
  EXPECT_LE(result.scenario.phases.size(), 2u);
}

}  // namespace
}  // namespace decseq::fuzz
