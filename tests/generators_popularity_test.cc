// Tests for the popularity-weighted membership generator and the
// machine-assignment seed policies — the two calibration knobs EXPERIMENTS.md
// documents.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "membership/generators.h"
#include "membership/overlap.h"
#include "placement/assignment.h"
#include "placement/colocation.h"
#include "seqgraph/graph.h"
#include "tests/test_util.h"
#include "topology/hosts.h"

namespace decseq::membership {
namespace {

using test::N;

TEST(PopularitySelection, PopularNodesJoinMoreGroups) {
  Rng rng(11);
  const auto m = zipf_membership(
      {.num_nodes = 64,
       .num_groups = 24,
       .scale = 1.0,
       .selection = MemberSelection::kZipfPopularity},
      rng);
  // Node 0 (rank 1) must subscribe to far more groups than node 63.
  const std::size_t popular = m.subscription_count(N(0));
  const std::size_t unpopular = m.subscription_count(N(63));
  EXPECT_GT(popular, unpopular + 3);
}

TEST(PopularitySelection, ProducesDenserOverlapsThanUniform) {
  std::size_t popularity_overlaps = 0, uniform_overlaps = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng r1(seed), r2(seed);
    const auto popular = zipf_membership(
        {.num_nodes = 64,
         .num_groups = 16,
         .selection = MemberSelection::kZipfPopularity},
        r1);
    const auto uniform = zipf_membership(
        {.num_nodes = 64,
         .num_groups = 16,
         .selection = MemberSelection::kUniform},
        r2);
    popularity_overlaps += OverlapIndex(popular).num_overlaps();
    uniform_overlaps += OverlapIndex(uniform).num_overlaps();
  }
  EXPECT_GT(popularity_overlaps, uniform_overlaps)
      << "popularity-weighted membership is what creates the paper's dense "
         "overlap structure";
}

TEST(PopularitySelection, SizesUnaffectedBySelection) {
  Rng r1(7), r2(7);
  const auto a = zipf_membership(
      {.num_nodes = 32, .num_groups = 8,
       .selection = MemberSelection::kZipfPopularity},
      r1);
  const auto b = zipf_membership(
      {.num_nodes = 32, .num_groups = 8,
       .selection = MemberSelection::kUniform},
      r2);
  for (std::size_t g = 0; g < 8; ++g) {
    EXPECT_EQ(a.members(test::G(static_cast<unsigned>(g))).size(),
              b.members(test::G(static_cast<unsigned>(g))).size());
  }
}

TEST(PopularitySelection, DenseGroupsStillFill) {
  // Rejection sampling must not stall when a group wants most nodes.
  Rng rng(13);
  const auto m = zipf_membership(
      {.num_nodes = 16,
       .num_groups = 4,
       .scale = 8.0,  // rank-1 group wants 16/H16*8 >> 16 -> clamped to 16
       .selection = MemberSelection::kZipfPopularity},
      rng);
  EXPECT_EQ(m.members(test::G(0)).size(), 16u);
}

class SeedPolicyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(31);
    topo_ = topology::generate_transit_stub(test::small_topology(), rng);
    hosts_ = std::make_unique<topology::HostMap>(topology::attach_hosts(
        topo_, {.num_hosts = 16, .num_clusters = 4}, rng));
    oracle_ = std::make_unique<topology::DistanceOracle>(topo_.graph);
  }
  topology::TransitStubTopology topo_;
  std::unique_ptr<topology::HostMap> hosts_;
  std::unique_ptr<topology::DistanceOracle> oracle_;
};

TEST_F(SeedPolicyTest, MemberSeedKeepsChainsNearSubscribers) {
  Rng data_rng(17);
  const auto m = zipf_membership({.num_nodes = 16, .num_groups = 8,
                                  .scale = 2.0},
                                 data_rng);
  const OverlapIndex idx(m);
  const auto graph = seqgraph::build_sequencing_graph(m, idx, {});
  Rng rng(18);
  const auto colocation = placement::colocate_atoms(graph, idx, {}, rng);

  auto mean_member_distance = [&](const placement::Assignment& a) {
    double total = 0.0;
    std::size_t count = 0;
    for (const GroupId g : graph.groups()) {
      const auto path = placement::seq_node_path(graph, colocation, g);
      const RouterId ingress = a.machine_of(path.front());
      for (const NodeId member : m.members(g)) {
        total += oracle_->distance(hosts_->router_of(member), ingress);
        ++count;
      }
    }
    return total / static_cast<double>(count);
  };

  // Averaged over several placement draws to damp randomness.
  double member_seed = 0.0, random_seed = 0.0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    Rng rm(100 + s), rr(100 + s);
    member_seed += mean_member_distance(placement::assign_machines(
        graph, colocation, m, *hosts_, topo_.graph,
        {.seed = placement::SeedPolicy::kGroupMember}, rm));
    random_seed += mean_member_distance(placement::assign_machines(
        graph, colocation, m, *hosts_, topo_.graph,
        {.seed = placement::SeedPolicy::kRandomRouter}, rr));
  }
  EXPECT_LT(member_seed, random_seed)
      << "seeding at a member's router must keep ingress closer to the group";
}

}  // namespace
}  // namespace decseq::membership
