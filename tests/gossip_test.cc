#include <gtest/gtest.h>

#include "common/rng.h"
#include "gossip/gossip.h"
#include "membership/membership.h"
#include "seqgraph/graph.h"
#include "tests/test_util.h"
#include "topology/transit_stub.h"

namespace decseq::gossip {
namespace {

using test::G;
using test::N;

class GossipTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(51);
    topo_ = topology::generate_transit_stub(test::small_topology(), rng);
    hosts_ = std::make_unique<topology::HostMap>(topology::attach_hosts(
        topo_, {.num_hosts = 16, .num_clusters = 4}, rng));
    oracle_ = std::make_unique<topology::DistanceOracle>(topo_.graph);
    rng_ = std::make_unique<Rng>(52);
  }

  topology::TransitStubTopology topo_;
  std::unique_ptr<topology::HostMap> hosts_;
  std::unique_ptr<topology::DistanceOracle> oracle_;
  std::unique_ptr<Rng> rng_;
  sim::Simulator sim_;
};

TEST_F(GossipTest, SingleUpdateReachesEveryNode) {
  GossipMesh mesh(sim_, *rng_, *hosts_, *oracle_);
  mesh.seed_update(N(3), G(0), {N(1), N(2), N(3)});
  mesh.start();
  sim_.run();
  ASSERT_TRUE(mesh.converged());
  for (unsigned n = 0; n < 16; ++n) {
    const auto view = mesh.view_of(N(n), G(0));
    ASSERT_TRUE(view.has_value()) << "node " << n;
    EXPECT_EQ(view->members, (std::vector<NodeId>{N(1), N(2), N(3)}));
    EXPECT_EQ(view->version, 1u);
  }
}

TEST_F(GossipTest, HigherVersionWinsEverywhere) {
  GossipMesh mesh(sim_, *rng_, *hosts_, *oracle_);
  // Two nodes seed conflicting views of the same group; the second one
  // (version 1 at a different origin) conflicts at equal version — seed it
  // through the same origin so versions order the conflict.
  mesh.seed_update(N(0), G(0), {N(0), N(1)});
  mesh.seed_update(N(0), G(0), {N(0), N(1), N(2)});  // version 2
  mesh.start();
  sim_.run();
  ASSERT_TRUE(mesh.converged());
  for (unsigned n = 0; n < 16; ++n) {
    const auto view = mesh.view_of(N(n), G(0));
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->version, 2u);
    EXPECT_EQ(view->members.size(), 3u);
  }
}

TEST_F(GossipTest, TombstonesPropagate) {
  GossipMesh mesh(sim_, *rng_, *hosts_, *oracle_);
  mesh.seed_update(N(0), G(0), {N(0), N(1)});
  mesh.seed_update(N(5), G(1), {N(5), N(6)});
  mesh.seed_update(N(0), G(0), {}, /*dead=*/true);  // group removed
  mesh.start();
  sim_.run();
  ASSERT_TRUE(mesh.converged());
  for (unsigned n = 0; n < 16; ++n) {
    const auto dead = mesh.view_of(N(n), G(0));
    ASSERT_TRUE(dead.has_value());
    EXPECT_TRUE(dead->dead);
    EXPECT_FALSE(mesh.view_of(N(n), G(1))->dead);
  }
}

TEST_F(GossipTest, ConvergenceTimeRecorded) {
  GossipMesh mesh(sim_, *rng_, *hosts_, *oracle_, {.fanout = 2});
  mesh.seed_update(N(7), G(0), {N(7), N(8)});
  mesh.start();
  sim_.run();
  ASSERT_TRUE(mesh.convergence_time().has_value());
  EXPECT_GT(*mesh.convergence_time(), 0.0);
  EXPECT_GT(mesh.messages_sent(), 0u);
  EXPECT_GT(mesh.entries_shipped(), 0u);
  // O(log n) rounds at fanout 2 for 16 nodes: far below the cap.
  EXPECT_LT(mesh.rounds_run(), 50u);
}

TEST_F(GossipTest, WakesUpForUpdatesAfterConvergence) {
  GossipMesh mesh(sim_, *rng_, *hosts_, *oracle_);
  mesh.seed_update(N(0), G(0), {N(0), N(1)});
  mesh.start();
  sim_.run();
  ASSERT_TRUE(mesh.converged());
  // The mesh is quiescent now; a fresh update must re-awaken the rounds.
  mesh.seed_update(N(9), G(1), {N(9), N(10)});
  EXPECT_FALSE(mesh.converged());
  sim_.run();
  ASSERT_TRUE(mesh.converged());
  for (unsigned n = 0; n < 16; ++n) {
    EXPECT_TRUE(mesh.view_of(N(n), G(1)).has_value()) << "node " << n;
  }
}

TEST_F(GossipTest, StopsAtRoundCapWithoutUpdates) {
  GossipMesh mesh(sim_, *rng_, *hosts_, *oracle_, {.max_rounds = 5});
  mesh.start();
  sim_.run();
  // All views empty => trivially converged at the first boundary.
  EXPECT_TRUE(mesh.converged());
  EXPECT_LE(mesh.rounds_run(), 5u);
}

TEST_F(GossipTest, ConvergedViewsYieldIdenticalSequencingGraphs) {
  // The whole point of "globally known": two nodes that build the graph
  // from their converged local copies must get the same structure.
  GossipMesh mesh(sim_, *rng_, *hosts_, *oracle_);
  mesh.seed_update(N(0), G(0), {N(0), N(1), N(2), N(3)});
  mesh.seed_update(N(4), G(1), {N(2), N(3), N(4), N(5)});
  mesh.seed_update(N(8), G(2), {N(0), N(2), N(8), N(9)});
  mesh.start();
  sim_.run();
  ASSERT_TRUE(mesh.converged());

  auto build_from_view = [&](NodeId node) {
    membership::GroupMembership m(16);
    for (unsigned g = 0; g < 3; ++g) {
      const auto view = mesh.view_of(node, G(g));
      if (view.has_value() && !view->dead) m.add_group(view->members);
    }
    const membership::OverlapIndex idx(m);
    const auto graph = seqgraph::build_sequencing_graph(m, idx, {});
    // Fingerprint: per group, the sequence of (group_a, group_b) pairs.
    std::vector<std::vector<std::pair<GroupId, GroupId>>> fp;
    for (const GroupId grp : graph.groups()) {
      std::vector<std::pair<GroupId, GroupId>> path;
      for (const AtomId a : graph.path(grp)) {
        path.push_back({graph.atom(a).group_a, graph.atom(a).group_b});
      }
      fp.push_back(std::move(path));
    }
    return fp;
  };
  const auto at_node1 = build_from_view(N(1));
  const auto at_node13 = build_from_view(N(13));
  EXPECT_EQ(at_node1, at_node13)
      << "graph construction is deterministic given the same membership";
}

}  // namespace
}  // namespace decseq::gossip
