#include <gtest/gtest.h>

#include <sstream>

#include "metrics/logio.h"
#include "tests/test_util.h"

namespace decseq::metrics {
namespace {

using test::N;

std::vector<pubsub::Delivery> sample_log() {
  return {
      {N(1), MsgId(10), test::G(0), N(0), 77, 1.5, 20.25},
      {N(2), MsgId(10), test::G(0), N(0), 77, 1.5, 31.0},
      {N(1), MsgId(11), test::G(1), N(3), 0, 2.0, 25.5},
  };
}

TEST(LogIo, RoundTrip) {
  const auto original = sample_log();
  std::stringstream buffer;
  write_delivery_log(original, buffer);
  const auto loaded = read_delivery_log(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].receiver, original[i].receiver);
    EXPECT_EQ(loaded[i].message, original[i].message);
    EXPECT_EQ(loaded[i].group, original[i].group);
    EXPECT_EQ(loaded[i].sender, original[i].sender);
    EXPECT_EQ(loaded[i].payload, original[i].payload);
    EXPECT_DOUBLE_EQ(loaded[i].sent_at, original[i].sent_at);
    EXPECT_DOUBLE_EQ(loaded[i].delivered_at, original[i].delivered_at);
  }
}

TEST(LogIo, RejectsMissingHeader) {
  std::stringstream buffer("1,2,3,4,5,6,7\n");
  EXPECT_THROW((void)read_delivery_log(buffer), CheckFailure);
}

TEST(LogIo, RejectsShortRow) {
  std::stringstream buffer;
  write_delivery_log({}, buffer);
  buffer << "1,2,3\n";
  EXPECT_THROW((void)read_delivery_log(buffer), CheckFailure);
}

TEST(LogIo, RejectsNonNumericField) {
  std::stringstream buffer;
  write_delivery_log({}, buffer);
  buffer << "1,2,3,4,banana,6,7\n";
  EXPECT_THROW((void)read_delivery_log(buffer), CheckFailure);
}

TEST(LogIo, SkipsBlankLines) {
  std::stringstream buffer;
  write_delivery_log(sample_log(), buffer);
  buffer << "\n\n";
  EXPECT_EQ(read_delivery_log(buffer).size(), 3u);
}

TEST(LogIo, OfflineVerifierAcceptsConsistentLog) {
  EXPECT_FALSE(find_order_violation(sample_log()).has_value());
}

TEST(LogIo, OfflineVerifierFlagsInversion) {
  // Receivers 1 and 2 both see messages 10 and 11, in opposite orders.
  const std::vector<pubsub::Delivery> bad = {
      {N(1), MsgId(10), test::G(0), N(0), 0, 0.0, 1.0},
      {N(1), MsgId(11), test::G(0), N(0), 0, 0.0, 2.0},
      {N(2), MsgId(11), test::G(0), N(0), 0, 0.0, 1.0},
      {N(2), MsgId(10), test::G(0), N(0), 0, 0.0, 2.0},
  };
  const auto violation = find_order_violation(bad);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("disagree"), std::string::npos);
}

TEST(LogIo, EndToEndSaveAndAudit) {
  pubsub::PubSubSystem system(test::small_config(131));
  const GroupId g0 = system.create_group({N(0), N(1), N(2)});
  const GroupId g1 = system.create_group({N(1), N(2), N(3)});
  for (int i = 0; i < 5; ++i) {
    system.publish(N(0), g0);
    system.publish(N(3), g1);
  }
  system.run();

  std::stringstream buffer;
  write_delivery_log(system.deliveries(), buffer);
  const auto loaded = read_delivery_log(buffer);
  EXPECT_EQ(loaded.size(), system.deliveries().size());
  EXPECT_FALSE(find_order_violation(loaded).has_value());
}

}  // namespace
}  // namespace decseq::metrics
