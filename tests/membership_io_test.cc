#include <gtest/gtest.h>

#include <sstream>

#include "membership/io.h"
#include "tests/test_util.h"

namespace decseq::membership {
namespace {

using test::G;
using test::N;

TEST(MembershipIo, ParsesGroupsCommentsAndCommas) {
  std::stringstream in(
      "# header comment\n"
      "0 1 2\n"
      "\n"
      "1,2,3   # trailing comment\n"
      "4 5\n");
  const auto m = read_membership(in);
  EXPECT_EQ(m.num_groups(), 3u);
  EXPECT_EQ(m.num_nodes(), 6u);
  EXPECT_EQ(m.members(G(0)), (std::vector<NodeId>{N(0), N(1), N(2)}));
  EXPECT_EQ(m.members(G(1)), (std::vector<NodeId>{N(1), N(2), N(3)}));
}

TEST(MembershipIo, MinNodesExtendsPopulation) {
  std::stringstream in("0 1\n");
  const auto m = read_membership(in, /*min_nodes=*/10);
  EXPECT_EQ(m.num_nodes(), 10u);
}

TEST(MembershipIo, RejectsGarbageAndDuplicates) {
  std::stringstream bad_token("0 banana\n");
  EXPECT_THROW((void)read_membership(bad_token), CheckFailure);
  std::stringstream duplicate("0 0 1\n");
  EXPECT_THROW((void)read_membership(duplicate), CheckFailure);
  std::stringstream empty("# nothing\n\n");
  EXPECT_THROW((void)read_membership(empty), CheckFailure);
}

TEST(MembershipIo, RoundTrip) {
  const auto original = test::make_membership(
      8, {{0, 1, 2, 3}, {2, 3, 4}, {5, 6, 7}});
  std::stringstream buffer;
  write_membership(original, buffer);
  const auto loaded = read_membership(buffer);
  ASSERT_EQ(loaded.num_groups(), original.num_groups());
  for (const GroupId g : original.live_groups()) {
    EXPECT_EQ(loaded.members(g), original.members(g));
  }
}

}  // namespace
}  // namespace decseq::membership
