#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "membership/generators.h"
#include "membership/membership.h"
#include "membership/overlap.h"
#include "tests/test_util.h"

namespace decseq::membership {
namespace {

using test::G;
using test::N;

TEST(Membership, AddAndQueryGroups) {
  GroupMembership m(8);
  const GroupId g0 = m.add_group({N(3), N(1), N(5)});
  EXPECT_EQ(m.num_groups(), 1u);
  EXPECT_TRUE(m.is_alive(g0));
  // Members come back sorted regardless of insertion order.
  EXPECT_EQ(m.members(g0), (std::vector<NodeId>{N(1), N(3), N(5)}));
  EXPECT_TRUE(m.is_member(g0, N(3)));
  EXPECT_FALSE(m.is_member(g0, N(2)));
}

TEST(Membership, RejectsDuplicatesAndOutOfRange) {
  GroupMembership m(4);
  EXPECT_THROW(m.add_group({N(1), N(1)}), CheckFailure);
  EXPECT_THROW(m.add_group({N(9)}), CheckFailure);
}

TEST(Membership, JoinLeaveLifecycle) {
  GroupMembership m(8);
  const GroupId g = m.add_group({N(0), N(1)});
  m.add_member(g, N(2));
  EXPECT_EQ(m.members(g).size(), 3u);
  EXPECT_THROW(m.add_member(g, N(2)), CheckFailure);  // already present
  m.remove_member(g, N(0));
  m.remove_member(g, N(1));
  EXPECT_TRUE(m.is_alive(g));
  // Last member leaving kills the group (§3.2).
  m.remove_member(g, N(2));
  EXPECT_FALSE(m.is_alive(g));
  EXPECT_EQ(m.num_groups(), 0u);
}

TEST(Membership, RemoveGroupTombstonesId) {
  GroupMembership m(4);
  const GroupId g0 = m.add_group({N(0), N(1)});
  const GroupId g1 = m.add_group({N(2), N(3)});
  m.remove_group(g0);
  EXPECT_FALSE(m.is_alive(g0));
  EXPECT_TRUE(m.is_alive(g1));
  EXPECT_THROW((void)m.members(g0), CheckFailure);
  EXPECT_EQ(m.live_groups(), std::vector<GroupId>{g1});
}

TEST(Membership, GroupsOfAndSubscriptionCount) {
  GroupMembership m(4);
  const GroupId g0 = m.add_group({N(0), N(1)});
  const GroupId g1 = m.add_group({N(1), N(2)});
  EXPECT_EQ(m.groups_of(N(1)), (std::vector<GroupId>{g0, g1}));
  EXPECT_EQ(m.groups_of(N(3)), std::vector<GroupId>{});
  EXPECT_EQ(m.subscription_count(N(1)), 2u);
  EXPECT_EQ(m.subscription_count(N(0)), 1u);
}

TEST(Membership, InvertedIndexMatchesBruteForceScanUnderChurn) {
  // groups_of / subscription_count / is_member are served by the inverted
  // node->groups index; they must agree exactly with a brute-force scan of
  // every group slot, including tombstoned groups and node-level churn.
  Rng rng(404);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t num_nodes = 4 + rng.next_below(40);
    GroupMembership m(num_nodes);
    std::vector<GroupId> created;
    const std::size_t num_groups = 1 + rng.next_below(20);
    for (std::size_t g = 0; g < num_groups; ++g) {
      std::vector<NodeId> members;
      for (std::size_t n = 0; n < num_nodes; ++n) {
        if (rng.next_bool(0.3)) {
          members.push_back(NodeId(static_cast<NodeId::underlying_type>(n)));
        }
      }
      if (members.empty()) continue;
      created.push_back(m.add_group(std::move(members)));
    }
    // Churn: tombstone some groups outright, drain others member by member
    // (the last leave kills the group), and add/remove single members.
    for (const GroupId g : created) {
      if (!m.is_alive(g)) continue;
      const double dice = rng.next_double();
      if (dice < 0.2) {
        m.remove_group(g);
      } else if (dice < 0.4) {
        while (m.is_alive(g)) m.remove_member(g, m.members(g).front());
      } else if (dice < 0.6) {
        const NodeId n(static_cast<NodeId::underlying_type>(
            rng.next_below(num_nodes)));
        if (!m.is_member(g, n)) m.add_member(g, n);
      }
    }

    for (std::size_t n = 0; n < num_nodes; ++n) {
      const NodeId node(static_cast<NodeId::underlying_type>(n));
      std::vector<GroupId> brute;
      for (std::size_t s = 0; s < m.num_group_slots(); ++s) {
        const GroupId g(static_cast<GroupId::underlying_type>(s));
        if (!m.is_alive(g)) continue;
        const auto& members = m.members(g);
        if (std::binary_search(members.begin(), members.end(), node)) {
          brute.push_back(g);
        }
      }
      ASSERT_EQ(m.groups_of(node), brute) << "trial " << trial;
      ASSERT_EQ(m.subscription_count(node), brute.size());
      ASSERT_EQ(m.subscriptions(node), brute);
      for (const GroupId g : brute) ASSERT_TRUE(m.is_member(g, node));
    }
  }
}

TEST(Membership, Intersect) {
  GroupMembership m(8);
  const GroupId g0 = m.add_group({N(0), N(1), N(2), N(5)});
  const GroupId g1 = m.add_group({N(1), N(2), N(7)});
  EXPECT_EQ(m.intersect(g0, g1), (std::vector<NodeId>{N(1), N(2)}));
}

TEST(Overlap, DetectsOnlyDoubleOverlaps) {
  // g0 ∩ g1 = {1,2} (double), g0 ∩ g2 = {0} (single), g1 ∩ g2 = {} (none).
  const auto m = test::make_membership(8, {{0, 1, 2}, {1, 2, 3}, {0, 4, 5}});
  const OverlapIndex idx(m);
  ASSERT_EQ(idx.num_overlaps(), 1u);
  EXPECT_EQ(idx.overlap(0).first, G(0));
  EXPECT_EQ(idx.overlap(0).second, G(1));
  EXPECT_EQ(idx.overlap(0).members, (std::vector<NodeId>{N(1), N(2)}));
  EXPECT_TRUE(idx.has_overlaps(G(0)));
  EXPECT_FALSE(idx.has_overlaps(G(2)));
}

TEST(Overlap, PaperFigure2Triangle) {
  // G0={A,B,D}, G1={A,B,C}, G2={B,C,D} with A=0,B=1,C=2,D=3: three pairwise
  // double overlaps — the paper's Fig 2 example.
  const auto m = test::make_membership(4, {{0, 1, 3}, {0, 1, 2}, {1, 2, 3}});
  const OverlapIndex idx(m);
  EXPECT_EQ(idx.num_overlaps(), 3u);
  ASSERT_EQ(idx.components().size(), 1u);
  EXPECT_EQ(idx.components()[0].size(), 3u);
}

TEST(Overlap, ComponentsSeparateUnrelatedGroups) {
  const auto m = test::make_membership(
      12, {{0, 1, 2}, {1, 2, 3}, {6, 7, 8}, {7, 8, 9}, {10, 11}});
  const OverlapIndex idx(m);
  EXPECT_EQ(idx.num_overlaps(), 2u);
  ASSERT_EQ(idx.components().size(), 2u);
  EXPECT_EQ(idx.component_of(G(0)), idx.component_of(G(1)));
  EXPECT_EQ(idx.component_of(G(2)), idx.component_of(G(3)));
  EXPECT_NE(idx.component_of(G(0)), idx.component_of(G(2)));
  // Group 4 has no overlaps: no component.
  EXPECT_EQ(idx.component_of(G(4)), SIZE_MAX);
}

TEST(Overlap, OverlapsOfListsAll) {
  const auto m = test::make_membership(
      6, {{0, 1, 2, 3}, {0, 1, 4}, {2, 3, 4}, {0, 2, 4}});
  const OverlapIndex idx(m);
  // g0 overlaps g1 ({0,1}), g2 ({2,3}), g3 ({0,2}).
  EXPECT_EQ(idx.overlaps_of(G(0)).size(), 3u);
}

TEST(Generators, ZipfRespectsScaleAndFloor) {
  Rng rng(1);
  const auto m = zipf_membership(
      {.num_nodes = 128, .num_groups = 16, .exponent = 1.0, .scale = 1.0},
      rng);
  EXPECT_EQ(m.num_groups(), 16u);
  std::size_t prev = SIZE_MAX;
  for (const GroupId g : m.live_groups()) {
    const std::size_t size = m.members(g).size();
    EXPECT_GE(size, 2u);
    EXPECT_LE(size, prev);  // rank order == id order, sizes non-increasing
    prev = size;
  }
}

TEST(Generators, ZipfMembersAreValidNodes) {
  Rng rng(2);
  const auto m =
      zipf_membership({.num_nodes = 32, .num_groups = 8}, rng);
  for (const GroupId g : m.live_groups()) {
    for (const NodeId n : m.members(g)) {
      EXPECT_LT(n.value(), 32u);
    }
  }
}

TEST(Generators, OccupancyZeroAndOne) {
  Rng rng(3);
  const auto empty =
      occupancy_membership({.num_nodes = 16, .num_groups = 8, .occupancy = 0.0},
                           rng);
  EXPECT_EQ(empty.num_groups(), 0u);  // all empty groups dropped

  const auto full =
      occupancy_membership({.num_nodes = 16, .num_groups = 8, .occupancy = 1.0},
                           rng);
  EXPECT_EQ(full.num_groups(), 8u);
  for (const GroupId g : full.live_groups()) {
    EXPECT_EQ(full.members(g).size(), 16u);
  }
}

TEST(Generators, OccupancyDensityApproximatesP) {
  Rng rng(4);
  const auto m = occupancy_membership(
      {.num_nodes = 64, .num_groups = 32, .occupancy = 0.25}, rng);
  std::size_t total = 0;
  for (const GroupId g : m.live_groups()) total += m.members(g).size();
  const double density = static_cast<double>(total) / (64.0 * 32.0);
  EXPECT_NEAR(density, 0.25, 0.05);
}

}  // namespace
}  // namespace decseq::membership
