#include <gtest/gtest.h>

#include "common/rng.h"
#include "membership/generators.h"
#include "metrics/stretch.h"
#include "metrics/structure.h"
#include "tests/test_util.h"

namespace decseq::metrics {
namespace {

using test::N;

TEST(Stretch, WorkloadPublishesOneMessagePerSubscription) {
  pubsub::PubSubSystem system(test::small_config(31));
  system.create_group({N(0), N(1), N(2)});
  system.create_group({N(1), N(2), N(3)});
  const auto result = measure_stretch(system);
  EXPECT_EQ(result.messages_published, 6u);
  // Samples: per message, one per receiver != sender => 2 each.
  EXPECT_EQ(result.samples.size(), 12u);
  for (const auto& s : result.samples) {
    EXPECT_GT(s.unicast_delay_ms, 0.0);
    EXPECT_GE(s.ratio(), 1.0 - 1e-9)
        << "sequencing cannot beat the direct path";
  }
}

TEST(Stretch, PerDestinationAveragesCoverSubscribers) {
  pubsub::PubSubSystem system(test::small_config(32));
  system.create_group({N(0), N(1), N(2), N(3)});
  const auto result = measure_stretch(system);
  const auto per_dest = stretch_per_destination(result.samples, 16);
  EXPECT_EQ(per_dest.size(), 4u);
  for (const double v : per_dest) EXPECT_GE(v, 1.0 - 1e-9);
}

TEST(Stretch, RdpPointsOnePerPair) {
  pubsub::PubSubSystem system(test::small_config(33));
  system.create_group({N(0), N(1), N(2)});
  const auto result = measure_stretch(system);
  const auto points = rdp_points(result.samples);
  EXPECT_EQ(points.size(), 6u);  // 3 nodes x 2 others, directed
  for (const auto& p : points) {
    EXPECT_GT(p.unicast_delay_ms, 0.0);
    EXPECT_GE(p.rdp, 1.0 - 1e-9);
  }
}

TEST(Structure, CountsOverlapsAndNodes) {
  Rng rng(34);
  const auto m = test::make_membership(
      8, {{0, 1, 2, 3}, {0, 1, 4, 5}, {2, 3, 4, 5}});
  const auto result = build_and_measure(m, rng);
  EXPECT_EQ(result.num_double_overlaps, 3u);
  EXPECT_GE(result.num_sequencing_nodes, 1u);
  EXPECT_LE(result.num_sequencing_nodes, 3u);
  EXPECT_EQ(result.stress.size(), result.num_sequencing_nodes);
  for (const double s : result.stress) {
    EXPECT_GT(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(Structure, AtomsPerPathOneSamplePerSubscription) {
  Rng rng(35);
  const auto m = test::make_membership(6, {{0, 1, 2}, {1, 2, 3}});
  const auto result = build_and_measure(m, rng);
  EXPECT_EQ(result.atoms_per_path_ratio.size(), 6u);
  for (const double r : result.atoms_per_path_ratio) {
    EXPECT_DOUBLE_EQ(r, 1.0 / 6.0);  // one stamping atom, six nodes
  }
}

TEST(Structure, FullOccupancyCollapsesToOneNode) {
  // Every node in every group: all overlaps share the full population, so
  // the subset rule folds them onto a single sequencing node (the paper's
  // Fig 8 right edge).
  Rng rng(36);
  const auto m = test::make_membership(
      6, {{0, 1, 2, 3, 4, 5}, {0, 1, 2, 3, 4, 5}, {0, 1, 2, 3, 4, 5}});
  const auto result = build_and_measure(m, rng);
  EXPECT_EQ(result.num_double_overlaps, 3u);
  EXPECT_EQ(result.num_sequencing_nodes, 1u);
}

TEST(Structure, DisjointGroupsNeedNoSequencingNodes) {
  Rng rng(37);
  const auto m = test::make_membership(8, {{0, 1}, {2, 3}, {4, 5}, {6, 7}});
  const auto result = build_and_measure(m, rng);
  EXPECT_EQ(result.num_double_overlaps, 0u);
  EXPECT_EQ(result.num_sequencing_nodes, 0u);
  EXPECT_TRUE(result.stress.empty());
  for (const double r : result.atoms_per_path_ratio) {
    EXPECT_DOUBLE_EQ(r, 0.0);
  }
}

}  // namespace
}  // namespace decseq::metrics
