#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/test_util.h"
#include "topology/multicast_tree.h"
#include "topology/shortest_path.h"
#include "topology/transit_stub.h"

namespace decseq::topology {
namespace {

/// Line graph a-b-c-d plus a spur b-e.
struct LineFixture {
  Graph g;
  RouterId a, b, c, d, e;
  LineFixture() {
    a = g.add_router();
    b = g.add_router();
    c = g.add_router();
    d = g.add_router();
    e = g.add_router();
    g.add_edge(a, b, 1.0);
    g.add_edge(b, c, 2.0);
    g.add_edge(c, d, 3.0);
    g.add_edge(b, e, 4.0);
  }
};

TEST(MulticastTree, SharedPrefixCountedOnce) {
  LineFixture f;
  const MulticastTree tree(f.g, f.a, {f.d, f.e});
  // Paths a-b-c-d (3 links) and a-b-e (2 links) share link a-b.
  EXPECT_EQ(tree.num_links(), 4u);
  EXPECT_EQ(tree.unicast_links(), 5u);
}

TEST(MulticastTree, DelaysEqualUnicast) {
  LineFixture f;
  const MulticastTree tree(f.g, f.a, {f.d, f.e});
  DistanceOracle oracle(f.g);
  EXPECT_DOUBLE_EQ(tree.delay_to(f.d), oracle.distance(f.a, f.d));
  EXPECT_DOUBLE_EQ(tree.delay_to(f.e), oracle.distance(f.a, f.e));
}

TEST(MulticastTree, PathEdgesFollowTree) {
  LineFixture f;
  const MulticastTree tree(f.g, f.a, {f.d});
  const auto path = tree.path_edges(f.d);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], std::make_pair(f.a, f.b));
  EXPECT_EQ(path[2], std::make_pair(f.c, f.d));
}

TEST(MulticastTree, SourceOnlyTree) {
  LineFixture f;
  const MulticastTree tree(f.g, f.a, {f.a});
  EXPECT_EQ(tree.num_links(), 0u);
  EXPECT_DOUBLE_EQ(tree.delay_to(f.a), 0.0);
  EXPECT_TRUE(tree.path_edges(f.a).empty());
}

TEST(MulticastTree, UnknownDestinationRejected) {
  LineFixture f;
  const MulticastTree tree(f.g, f.a, {f.b});
  EXPECT_THROW((void)tree.delay_to(f.d), CheckFailure);
  EXPECT_THROW((void)tree.path_edges(f.d), CheckFailure);
}

TEST(MulticastTree, NeverMoreLinksThanUnicast) {
  Rng rng(3);
  const auto topo = generate_transit_stub(test::small_topology(), rng);
  const HostMap hosts =
      attach_hosts(topo, {.num_hosts = 12, .num_clusters = 3}, rng);
  std::vector<RouterId> dests;
  for (unsigned h = 1; h < 12; ++h) dests.push_back(hosts.router_of(NodeId(h)));
  const MulticastTree tree(topo.graph, hosts.router_of(NodeId(0)), dests);
  EXPECT_LE(tree.num_links(), tree.unicast_links());
  EXPECT_GT(tree.num_links(), 0u);
  // Every destination is reachable through the tree with unicast delay.
  DistanceOracle oracle(topo.graph);
  for (const RouterId d : dests) {
    EXPECT_DOUBLE_EQ(tree.delay_to(d),
                     oracle.distance(hosts.router_of(NodeId(0)), d));
  }
}

TEST(LinkStress, AccumulatesPerLink) {
  LineFixture f;
  LinkStress stress;
  const MulticastTree tree(f.g, f.a, {f.d, f.e});
  stress.add_tree(tree);
  stress.add_tree(tree);
  EXPECT_EQ(stress.links_used(), 4u);
  EXPECT_EQ(stress.max_stress(), 2u);
  EXPECT_EQ(stress.total_messages(), 8u);
}

TEST(LinkStress, DirectionalLinks) {
  LinkStress stress;
  stress.add(RouterId(1), RouterId(2));
  stress.add(RouterId(2), RouterId(1));
  EXPECT_EQ(stress.links_used(), 2u);
  EXPECT_EQ(stress.max_stress(), 1u);
}

}  // namespace
}  // namespace decseq::topology
