// Differential property test for the streaming overlap index.
//
// The streaming build (inverted-index pair counting + lazy shared-member
// materialization) must be *exactly* equivalent to the retained brute-force
// reference (materialized pairwise bitset product): same overlaps in the
// same order, same shared-member lists, same adjacency, same components.
// 200 seeded random memberships cover dead groups (tombstoned and drained),
// singleton overlaps (one shared member — not a double overlap), and
// disconnected overlap components.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "membership/generators.h"
#include "membership/membership.h"
#include "membership/overlap.h"

namespace decseq::membership {
namespace {

GroupMembership random_membership(std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t num_nodes = 4 + rng.next_below(60);
  GroupMembership m(num_nodes);

  // A few disjoint node clusters force disconnected overlap components;
  // groups drawn within one cluster can never overlap another's.
  const std::size_t num_clusters = 1 + rng.next_below(3);
  const std::size_t num_groups = 2 + rng.next_below(24);
  std::vector<GroupId> created;
  for (std::size_t g = 0; g < num_groups; ++g) {
    const std::size_t cluster = rng.next_below(num_clusters);
    const std::size_t lo = cluster * num_nodes / num_clusters;
    const std::size_t hi = (cluster + 1) * num_nodes / num_clusters;
    std::vector<NodeId> members;
    for (std::size_t n = lo; n < hi; ++n) {
      // High enough that double overlaps are common, low enough that
      // singleton overlaps (exactly one shared member) also appear.
      if (rng.next_bool(0.4)) {
        members.push_back(NodeId(static_cast<NodeId::underlying_type>(n)));
      }
    }
    if (members.empty()) continue;
    created.push_back(m.add_group(std::move(members)));
  }

  // Tombstone some groups two ways: remove_group, and draining members one
  // by one until the last leave kills the group.
  for (const GroupId g : created) {
    if (!m.is_alive(g)) continue;
    const double dice = rng.next_double();
    if (dice < 0.15) {
      m.remove_group(g);
    } else if (dice < 0.25) {
      while (m.is_alive(g)) m.remove_member(g, m.members(g).front());
    }
  }
  return m;
}

TEST(OverlapDifferential, StreamingMatchesBruteForceOn200Seeds) {
  std::size_t total_overlaps = 0, total_singletons = 0, multi_component = 0,
              dead_slots = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const GroupMembership m = random_membership(seed);
    const OverlapIndex streaming(m, OverlapBuild::kStreaming);
    const OverlapIndex reference(m, OverlapBuild::kMaterializedReference);

    ASSERT_EQ(streaming.num_overlaps(), reference.num_overlaps())
        << "seed " << seed;
    for (std::size_t i = 0; i < reference.num_overlaps(); ++i) {
      const Overlap& s = streaming.overlap(i);
      const Overlap& r = reference.overlap(i);
      ASSERT_EQ(s.first, r.first) << "seed " << seed << " overlap " << i;
      ASSERT_EQ(s.second, r.second) << "seed " << seed << " overlap " << i;
      ASSERT_EQ(s.members, r.members) << "seed " << seed << " overlap " << i;
      ASSERT_GE(s.members.size(), 2u);
    }
    ASSERT_EQ(streaming.components().size(), reference.components().size())
        << "seed " << seed;
    for (std::size_t c = 0; c < reference.components().size(); ++c) {
      ASSERT_EQ(streaming.components()[c], reference.components()[c])
          << "seed " << seed << " component " << c;
    }
    for (std::size_t slot = 0; slot < m.num_group_slots(); ++slot) {
      const GroupId g(static_cast<GroupId::underlying_type>(slot));
      ASSERT_EQ(streaming.overlaps_of(g), reference.overlaps_of(g))
          << "seed " << seed << " group " << g;
      ASSERT_EQ(streaming.component_of(g), reference.component_of(g))
          << "seed " << seed << " group " << g;
      if (!m.is_alive(g)) {
        ++dead_slots;
        ASSERT_TRUE(streaming.overlaps_of(g).empty());
      }
    }

    // Coverage accounting so the generator can't silently degenerate.
    total_overlaps += streaming.num_overlaps();
    if (streaming.components().size() > 1) ++multi_component;
    for (const GroupId a : m.live_groups()) {
      for (const GroupId b : m.live_groups()) {
        if (a < b && m.intersect(a, b).size() == 1) ++total_singletons;
      }
    }
  }
  EXPECT_GT(total_overlaps, 1000u) << "workload must produce real overlaps";
  EXPECT_GT(total_singletons, 100u)
      << "workload must exercise singleton (non-double) overlaps";
  EXPECT_GT(multi_component, 20u)
      << "workload must exercise disconnected components";
  EXPECT_GT(dead_slots, 100u) << "workload must exercise tombstoned groups";
}

TEST(OverlapDifferential, StreamingStatsReflectTheBuild) {
  Rng rng(7);
  const auto m = zipf_membership({.num_nodes = 256, .num_groups = 64}, rng);
  const OverlapIndex idx(m, OverlapBuild::kStreaming);
  const auto& stats = idx.build_stats();
  EXPECT_GT(stats.pair_increments, 0u);
  EXPECT_GE(stats.candidate_pairs, idx.num_overlaps());
  // The reference build reports no streaming stats.
  const OverlapIndex ref(m, OverlapBuild::kMaterializedReference);
  EXPECT_EQ(ref.build_stats().pair_increments, 0u);
}

}  // namespace
}  // namespace decseq::membership
