// One integration test at the paper's full scale: 10,000-router topology,
// 128 hosts, 32 Zipf groups, live traffic. Slower than the unit tests
// (~1-2 s) but proves the experiment configuration itself upholds the
// guarantees the small-scale property tests check.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "membership/generators.h"
#include "pubsub/system.h"
#include "tests/test_util.h"

namespace decseq {
namespace {

TEST(PaperScale, FullConfigurationOrdersConsistently) {
  pubsub::SystemConfig config;
  config.seed = 20060101;
  config.hosts.num_hosts = 128;
  config.hosts.num_clusters = 32;
  pubsub::PubSubSystem system(config);
  ASSERT_EQ(system.topology_graph().num_routers(), 10000u);

  Rng rng(7);
  const auto snapshot = membership::zipf_membership(
      {.num_nodes = 128, .num_groups = 32}, rng);
  std::vector<std::vector<NodeId>> lists;
  for (const GroupId g : snapshot.live_groups()) {
    lists.push_back(snapshot.members(g));
  }
  system.create_groups(std::move(lists));
  EXPECT_GT(system.overlaps().num_overlaps(), 10u)
      << "the paper workload must create a real overlap structure";

  // Concurrent traffic: every node one message to each of its groups, all
  // within a 100ms window.
  auto& sim = system.simulator();
  std::map<MsgId, GroupId> sent;
  for (std::size_t n = 0; n < 128; ++n) {
    const NodeId sender(static_cast<unsigned>(n));
    for (const GroupId g : system.membership().groups_of(sender)) {
      sim.schedule_at(rng.next_double() * 100.0, [&system, &sent, sender, g] {
        sent[system.publish(sender, g)] = g;
      });
    }
  }
  system.run();

  // Exactly-once to every member; consistent everywhere.
  std::map<MsgId, std::set<NodeId>> delivered_to;
  for (const auto& d : system.deliveries()) {
    ASSERT_TRUE(delivered_to[d.message].insert(d.receiver).second);
  }
  for (const auto& [msg, group] : sent) {
    EXPECT_EQ(delivered_to[msg].size(),
              system.membership().members(group).size());
  }
  EXPECT_EQ(system.network().buffered_at_receivers(), 0u);
  const auto violation = test::find_order_violation(system.deliveries());
  EXPECT_FALSE(violation.has_value()) << *violation;

  // The §1.2 scalability claim, at scale: no sequencing machine handles an
  // order of magnitude more messages than the busiest receiver.
  std::size_t max_seq = 0, max_recv = 0;
  for (const std::size_t l : system.network().seqnode_load()) {
    max_seq = std::max(max_seq, l);
  }
  for (std::size_t n = 0; n < 128; ++n) {
    max_recv = std::max(
        max_recv,
        system.network().deliveries(NodeId(static_cast<unsigned>(n))));
  }
  EXPECT_LE(max_seq, max_recv * 2)
      << "sequencing load must track receiver load (paper §1.2)";
}

}  // namespace
}  // namespace decseq
