// Integration tests at the paper's full scale and beyond: the 10,000-router
// topology with 128 hosts and live traffic, plus a membership-plane-only
// tier at 100k hosts (1M × 100k under DECSEQ_SCALE_FULL=1) that exercises
// the succinct membership engine at ROADMAP scale. Slower than the unit
// tests (~1-2 s) but proves the experiment configuration itself upholds the
// guarantees the small-scale property tests check.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>

#include "common/rng.h"
#include "membership/generators.h"
#include "membership/overlap.h"
#include "pubsub/system.h"
#include "tests/test_util.h"

namespace decseq {
namespace {

TEST(PaperScale, FullConfigurationOrdersConsistently) {
  pubsub::SystemConfig config;
  config.seed = 20060101;
  config.hosts.num_hosts = 128;
  config.hosts.num_clusters = 32;
  pubsub::PubSubSystem system(config);
  ASSERT_EQ(system.topology_graph().num_routers(), 10000u);

  Rng rng(7);
  const auto snapshot = membership::zipf_membership(
      {.num_nodes = 128, .num_groups = 32}, rng);
  std::vector<std::vector<NodeId>> lists;
  for (const GroupId g : snapshot.live_groups()) {
    lists.push_back(snapshot.members(g));
  }
  system.create_groups(std::move(lists));
  EXPECT_GT(system.overlaps().num_overlaps(), 10u)
      << "the paper workload must create a real overlap structure";

  // Concurrent traffic: every node one message to each of its groups, all
  // within a 100ms window.
  auto& sim = system.simulator();
  std::map<MsgId, GroupId> sent;
  for (std::size_t n = 0; n < 128; ++n) {
    const NodeId sender(static_cast<unsigned>(n));
    for (const GroupId g : system.membership().groups_of(sender)) {
      sim.schedule_at(rng.next_double() * 100.0, [&system, &sent, sender, g] {
        sent[system.publish(sender, g)] = g;
      });
    }
  }
  system.run();

  // Exactly-once to every member; consistent everywhere.
  std::map<MsgId, std::set<NodeId>> delivered_to;
  for (const auto& d : system.deliveries()) {
    ASSERT_TRUE(delivered_to[d.message].insert(d.receiver).second);
  }
  for (const auto& [msg, group] : sent) {
    EXPECT_EQ(delivered_to[msg].size(),
              system.membership().members(group).size());
  }
  EXPECT_EQ(system.network().buffered_at_receivers(), 0u);
  const auto violation = test::find_order_violation(system.deliveries());
  EXPECT_FALSE(violation.has_value()) << *violation;

  // The §1.2 scalability claim, at scale: no sequencing machine handles an
  // order of magnitude more messages than the busiest receiver.
  std::size_t max_seq = 0, max_recv = 0;
  for (const std::size_t l : system.network().seqnode_load()) {
    max_seq = std::max(max_seq, l);
  }
  for (std::size_t n = 0; n < 128; ++n) {
    max_recv = std::max(
        max_recv,
        system.network().deliveries(NodeId(static_cast<unsigned>(n))));
  }
  EXPECT_LE(max_seq, max_recv * 2)
      << "sequencing load must track receiver load (paper §1.2)";
}

// The membership plane alone, far beyond the paper's 128 hosts. Quick tier
// (100k hosts × 10k groups, ~1 s) by default; set DECSEQ_SCALE_FULL=1 to
// run the full ROADMAP tier (1M hosts × 100k groups) locally.
TEST(PaperScale, SuccinctMembershipEngineAtScale) {
  const bool full = []() {
    const char* v = std::getenv("DECSEQ_SCALE_FULL");
    return v != nullptr && v[0] == '1';
  }();
  const std::size_t hosts = full ? 1000000 : 100000;
  const std::size_t groups = full ? 100000 : 10000;

  Rng rng(20060101);
  const auto membership = membership::zipf_membership(
      {.num_nodes = hosts,
       .num_groups = groups,
       .selection = membership::MemberSelection::kUniform},
      rng);

  const membership::OverlapIndex index(
      membership, membership::OverlapBuild::kStreaming);
  const auto& stats = index.build_stats();

  // Zipf(1) sizes: a handful of huge groups, a long tail of size-2 ones.
  // The streaming build's work is bounded by per-node co-subscriptions,
  // not by the G² pairwise product the reference performs.
  EXPECT_GT(index.num_overlaps(), 100u);
  EXPECT_LT(stats.pair_increments, hosts * 8)
      << "per-node co-subscription cost must stay near-linear in hosts";

  // Succinct representation: the whole membership + overlap state must
  // cost a bounded number of bytes per subscription, independent of the
  // universe size (a dense bitmap row alone would be hosts/8 bytes).
  std::size_t subscriptions = 0;
  for (const GroupId g : membership.live_groups()) {
    subscriptions += membership.members(g).size();
  }
  const double bytes_per_sub =
      static_cast<double>(membership.memory_bytes() + index.memory_bytes()) /
      static_cast<double>(subscriptions);
  EXPECT_LT(bytes_per_sub, 256.0);

  // Spot-check inverted-index queries against the membership lists.
  for (std::size_t n = 0; n < hosts; n += hosts / 97) {
    const NodeId node(static_cast<NodeId::underlying_type>(n));
    const auto groups_of = membership.groups_of(node);
    EXPECT_EQ(groups_of.size(), membership.subscription_count(node));
    for (const GroupId g : groups_of) {
      EXPECT_TRUE(membership.is_member(g, node));
    }
  }
}

}  // namespace
}  // namespace decseq
