#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "membership/generators.h"
#include "membership/overlap.h"
#include "placement/assignment.h"
#include "placement/colocation.h"
#include "seqgraph/graph.h"
#include "tests/test_util.h"
#include "topology/hosts.h"

namespace decseq::placement {
namespace {

using membership::GroupMembership;
using membership::OverlapIndex;
using test::G;
using test::N;

struct Built {
  GroupMembership membership;
  OverlapIndex overlaps;
  seqgraph::SequencingGraph graph;
};

Built build(const GroupMembership& m) {
  OverlapIndex idx(m);
  auto graph = seqgraph::build_sequencing_graph(m, idx, {});
  return {m, std::move(idx), std::move(graph)};
}

TEST(Colocation, EveryAtomAssignedExactlyOnce) {
  Rng rng(1);
  const auto b = build(test::make_membership(
      8, {{0, 1, 2, 3}, {0, 1, 4, 5}, {2, 3, 4, 5}, {1, 2, 5, 6}}));
  const Colocation c = colocate_atoms(b.graph, b.overlaps, {}, rng);
  std::set<AtomId> seen;
  for (std::size_t n = 0; n < c.num_nodes(); ++n) {
    for (const AtomId a : c.atoms_of(SeqNodeId(static_cast<unsigned>(n)))) {
      EXPECT_TRUE(seen.insert(a).second) << "atom " << a << " placed twice";
      EXPECT_EQ(c.node_of(a).value(), n);
    }
  }
  EXPECT_EQ(seen.size(), b.graph.num_atoms());
}

TEST(Colocation, SubsetRuleMergesNestedOverlaps) {
  // Overlap {0,1,2} (g0∩g1) strictly contains overlap {0,1} (g0∩g2 and
  // g1∩g2 give {0,1}); subset-only mode must co-locate them.
  const auto b = build(test::make_membership(
      8, {{0, 1, 2, 3, 4}, {0, 1, 2, 5, 6}, {0, 1, 7}}));
  Rng rng(2);
  const Colocation c =
      colocate_atoms(b.graph, b.overlaps, {.mode = ColocationMode::kSubsetOnly}, rng);
  // Three overlaps: (g0,g1)={0,1,2}, (g0,g2)={0,1}, (g1,g2)={0,1}.
  ASSERT_EQ(b.graph.num_overlap_atoms(), 3u);
  EXPECT_EQ(c.num_overlap_nodes(b.graph), 1u)
      << "all three overlaps nest within {0,1,2}";
}

TEST(Colocation, NoneModeKeepsAtomsApart) {
  const auto b = build(test::make_membership(
      8, {{0, 1, 2, 3, 4}, {0, 1, 2, 5, 6}, {0, 1, 7}}));
  Rng rng(3);
  const Colocation c =
      colocate_atoms(b.graph, b.overlaps, {.mode = ColocationMode::kNone}, rng);
  EXPECT_EQ(c.num_overlap_nodes(b.graph), b.graph.num_overlap_atoms());
}

TEST(Colocation, FullModeNeverWorseThanSubsetOnly) {
  Rng data_rng(4);
  const auto m = membership::zipf_membership(
      {.num_nodes = 64, .num_groups = 20, .scale = 2.0}, data_rng);
  const auto b = build(m);
  Rng r1(5), r2(5);
  const auto subset =
      colocate_atoms(b.graph, b.overlaps, {.mode = ColocationMode::kSubsetOnly}, r1);
  const auto full =
      colocate_atoms(b.graph, b.overlaps, {.mode = ColocationMode::kFull}, r2);
  EXPECT_LE(full.num_overlap_nodes(b.graph),
            subset.num_overlap_nodes(b.graph));
}

TEST(Colocation, GroupsOnANodeShareHistory) {
  // Full-mode nodes merge only clusters sharing the pivot member: every
  // step-2 merge has a witness node present in some atom of each merged
  // cluster. Weak but checkable proxy: each sequencing node's atoms span a
  // connected "shares a member" relation graph.
  Rng data_rng(6);
  const auto m = membership::zipf_membership(
      {.num_nodes = 48, .num_groups = 16, .scale = 2.0}, data_rng);
  const auto b = build(m);
  Rng rng(7);
  const Colocation c = colocate_atoms(b.graph, b.overlaps, {}, rng);
  for (std::size_t n = 0; n < c.num_nodes(); ++n) {
    const auto& atoms = c.atoms_of(SeqNodeId(static_cast<unsigned>(n)));
    if (atoms.size() < 2) continue;
    // Union of members must be smaller than the sum of sizes (some sharing).
    std::set<NodeId> all;
    std::size_t total = 0;
    for (const AtomId a : atoms) {
      const auto& mem = b.graph.atom(a).overlap_members;
      all.insert(mem.begin(), mem.end());
      total += mem.size();
    }
    EXPECT_LT(all.size(), total)
        << "sequencing node " << n << " hosts unrelated atoms";
  }
}

TEST(Colocation, IngressOnlyAtomsGetOwnNodes) {
  const auto b = build(test::make_membership(6, {{0, 1}, {2, 3}, {4, 5}}));
  Rng rng(8);
  const Colocation c = colocate_atoms(b.graph, b.overlaps, {}, rng);
  EXPECT_EQ(c.num_nodes(), 3u);
  EXPECT_EQ(c.num_overlap_nodes(b.graph), 0u);
}

class AssignmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng topo_rng(11);
    topo_ = topology::generate_transit_stub(test::small_topology(), topo_rng);
    hosts_ = std::make_unique<topology::HostMap>(topology::attach_hosts(
        topo_, {.num_hosts = 16, .num_clusters = 4}, topo_rng));
    oracle_ = std::make_unique<topology::DistanceOracle>(topo_.graph);
  }

  topology::TransitStubTopology topo_;
  std::unique_ptr<topology::HostMap> hosts_;
  std::unique_ptr<topology::DistanceOracle> oracle_;
};

TEST_F(AssignmentTest, EverySeqNodeGetsAMachine) {
  Rng rng(12);
  const auto m = membership::zipf_membership(
      {.num_nodes = 16, .num_groups = 8, .scale = 2.0}, rng);
  const auto b = build(m);
  const Colocation c = colocate_atoms(b.graph, b.overlaps, {}, rng);
  const Assignment a = assign_machines(b.graph, c, b.membership, *hosts_,
                                       topo_.graph, {}, rng);
  for (std::size_t n = 0; n < c.num_nodes(); ++n) {
    const RouterId r = a.machine_of(SeqNodeId(static_cast<unsigned>(n)));
    EXPECT_TRUE(r.valid());
    EXPECT_LT(r.value(), topo_.graph.num_routers());
  }
}

TEST_F(AssignmentTest, HeuristicPlacesPathNeighborsNearby) {
  Rng rng(13);
  const auto m = membership::zipf_membership(
      {.num_nodes = 16, .num_groups = 10, .scale = 3.0}, rng);
  const auto b = build(m);
  // Force atoms apart so group paths cross several sequencing nodes.
  const Colocation c =
      colocate_atoms(b.graph, b.overlaps, {.mode = ColocationMode::kNone}, rng);

  Rng rng_h(14), rng_r(14);
  const Assignment heuristic =
      assign_machines(b.graph, c, b.membership, *hosts_, topo_.graph,
                      {.mode = AssignmentMode::kPaperHeuristic}, rng_h);
  const Assignment random =
      assign_machines(b.graph, c, b.membership, *hosts_, topo_.graph,
                      {.mode = AssignmentMode::kAllRandom}, rng_r);

  auto total_path_delay = [&](const Assignment& a) {
    double total = 0.0;
    for (const GroupId g : b.graph.groups()) {
      const auto path = seq_node_path(b.graph, c, g);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        total += oracle_->distance(a.machine_of(path[i]),
                                   a.machine_of(path[i + 1]));
      }
    }
    return total;
  };
  const double h = total_path_delay(heuristic);
  const double r = total_path_delay(random);
  if (r > 0.0) {
    EXPECT_LT(h, r) << "the proximity heuristic should beat random placement";
  }
}

TEST_F(AssignmentTest, SeqNodePathCollapsesColocatedAtoms) {
  Rng rng(15);
  const auto b = build(test::make_membership(
      8, {{0, 1, 2, 3, 4}, {0, 1, 2, 5, 6}, {0, 1, 7}}));
  const Colocation c = colocate_atoms(b.graph, b.overlaps, {}, rng);
  for (const GroupId g : b.graph.groups()) {
    const auto path = seq_node_path(b.graph, c, g);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_NE(path[i], path[i + 1]);
    }
  }
}

}  // namespace
}  // namespace decseq::placement
