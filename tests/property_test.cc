// Randomized property tests over seeds (parameterized sweeps).
//
// These assert the paper's guarantees end-to-end on arbitrary memberships
// and traffic patterns:
//  * liveness     — every published message reaches every group member,
//                   with nothing stuck in receiver buffers;
//  * consistency  — any two receivers observe their common messages in the
//                   same relative order (Theorem 1);
//  * graph safety — C1/C2 hold on every random membership (validator);
//  * causality    — reactive publishes are never reordered before their
//                   trigger at any common receiver.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "membership/generators.h"
#include "pubsub/system.h"
#include "seqgraph/validator.h"
#include "tests/test_util.h"

namespace decseq {
namespace {

using test::N;

class EndToEndProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EndToEndProperty, RandomTrafficIsCompleteAndConsistent) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 1000 + 17);

  pubsub::PubSubSystem system(test::small_config(seed, /*num_hosts=*/12));
  // Random membership: 5 groups of random sizes >= 2.
  std::vector<GroupId> groups;
  for (int g = 0; g < 5; ++g) {
    std::vector<NodeId> all;
    for (unsigned n = 0; n < 12; ++n) all.push_back(N(n));
    rng.shuffle(all);
    const std::size_t size = 2 + rng.next_below(6);
    groups.push_back(system.create_group(
        std::vector<NodeId>(all.begin(), all.begin() + size)));
  }

  // Random traffic: 40 publishes from random senders at random times.
  std::map<MsgId, GroupId> sent;
  auto& sim = system.simulator();
  for (int i = 0; i < 40; ++i) {
    const GroupId g = rng.pick(groups);
    const NodeId sender = N(static_cast<unsigned>(rng.next_below(12)));
    const double at = rng.next_double() * 500.0;
    sim.schedule_at(at, [&system, &sent, sender, g] {
      sent[system.publish(sender, g)] = g;
    });
  }
  system.run();

  // Liveness: each message delivered to exactly the group's members.
  std::map<MsgId, std::set<NodeId>> delivered_to;
  for (const pubsub::Delivery& d : system.deliveries()) {
    EXPECT_TRUE(delivered_to[d.message].insert(d.receiver).second)
        << "duplicate delivery of message " << d.message;
  }
  ASSERT_EQ(sent.size(), 40u);
  for (const auto& [msg, group] : sent) {
    const auto& members = system.membership().members(group);
    const std::set<NodeId> expect(members.begin(), members.end());
    EXPECT_EQ(delivered_to[msg], expect) << "message " << msg;
  }
  EXPECT_EQ(system.network().buffered_at_receivers(), 0u);

  // Consistency (Theorem 1).
  const auto violation = test::find_order_violation(system.deliveries());
  EXPECT_FALSE(violation.has_value()) << *violation;
}

TEST_P(EndToEndProperty, LossyRandomTrafficIsStillConsistent) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 7919 + 3);
  auto config = test::small_config(seed + 100, /*num_hosts=*/10);
  config.network.channel.loss_probability = 0.25;
  config.network.channel.retransmit_timeout_ms = 40.0;
  pubsub::PubSubSystem system(config);

  std::vector<GroupId> groups;
  for (int g = 0; g < 4; ++g) {
    std::vector<NodeId> all;
    for (unsigned n = 0; n < 10; ++n) all.push_back(N(n));
    rng.shuffle(all);
    groups.push_back(system.create_group(
        std::vector<NodeId>(all.begin(),
                            all.begin() + 3 + static_cast<long>(rng.next_below(4)))));
  }
  auto& sim = system.simulator();
  for (int i = 0; i < 25; ++i) {
    const GroupId g = rng.pick(groups);
    const NodeId sender = N(static_cast<unsigned>(rng.next_below(10)));
    sim.schedule_at(rng.next_double() * 300.0,
                    [&system, sender, g] { system.publish(sender, g); });
  }
  system.run();
  EXPECT_FALSE(test::find_order_violation(system.deliveries()).has_value());
  EXPECT_EQ(system.network().buffered_at_receivers(), 0u);
}

TEST_P(EndToEndProperty, PerSenderFifoHoldsUnderLoss) {
  // Each sender's messages to one group carry increasing payloads; every
  // receiver must see each (sender, group) stream in that order even while
  // the channels drop 20% of transmissions.
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 131 + 7);
  auto config = test::small_config(seed + 300, /*num_hosts=*/10);
  config.network.channel.loss_probability = 0.2;
  config.network.channel.retransmit_timeout_ms = 40.0;
  pubsub::PubSubSystem system(config);
  const GroupId g0 = system.create_group(
      {test::N(0), test::N(1), test::N(2), test::N(3)});
  const GroupId g1 = system.create_group(
      {test::N(2), test::N(3), test::N(4), test::N(5)});

  std::map<std::pair<NodeId, GroupId>, std::uint64_t> next_payload;
  for (int i = 0; i < 30; ++i) {
    const GroupId g = rng.next_bool(0.5) ? g0 : g1;
    const NodeId sender = rng.pick(system.membership().members(g));
    system.publish(sender, g, next_payload[{sender, g}]++);
  }
  system.run();

  std::map<std::pair<NodeId, std::pair<NodeId, GroupId>>, std::uint64_t>
      last_seen;
  for (const pubsub::Delivery& d : system.deliveries()) {
    const auto key = std::make_pair(d.receiver, std::make_pair(d.sender, d.group));
    const auto it = last_seen.find(key);
    if (it != last_seen.end()) {
      EXPECT_LT(it->second, d.payload)
          << "per-sender FIFO broken at receiver " << d.receiver;
    }
    last_seen[key] = d.payload;
  }
}

TEST_P(EndToEndProperty, ReactivePublishesPreserveCausality) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 31 + 5);
  pubsub::PubSubSystem system(test::small_config(seed + 200, 10));
  // Two random overlapping groups (forced >= 2 common members).
  std::vector<NodeId> all;
  for (unsigned n = 0; n < 10; ++n) all.push_back(N(n));
  rng.shuffle(all);
  std::vector<NodeId> a(all.begin(), all.begin() + 5);
  std::vector<NodeId> b(all.begin() + 3, all.begin() + 8);  // shares 2
  const GroupId g0 = system.create_group(a);
  const GroupId g1 = system.create_group(b);

  // A chain of reactions: payload k's delivery at its "relay" node triggers
  // payload k+1 to the other group.
  const std::vector<NodeId> relays{a[3], b[2], a[4]};  // all in the overlap
  std::set<std::uint64_t> fired;
  system.set_delivery_callback(
      [&](NodeId receiver, const protocol::Message& m, sim::Time) {
        const std::uint64_t k = m.payload();
        if (k < relays.size() && receiver == relays[k] &&
            fired.insert(k).second) {
          const GroupId target = (k % 2 == 0) ? g1 : g0;
          system.publish(receiver, target, k + 1);
        }
      });
  system.publish(a[0], g0, 0);
  system.run();

  // Every receiver of consecutive payloads must see them in causal order.
  std::map<NodeId, std::vector<std::uint64_t>> seen;
  for (const pubsub::Delivery& d : system.deliveries()) {
    seen[d.receiver].push_back(d.payload);
  }
  for (const auto& [node, payloads] : seen) {
    for (std::size_t i = 0; i + 1 < payloads.size(); ++i) {
      EXPECT_LT(payloads[i], payloads[i + 1])
          << "node " << node << " saw effect before cause";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

class GraphProperty : public ::testing::TestWithParam<std::uint64_t> {};

constexpr seqgraph::BuildStrategy kAllStrategies[] = {
    seqgraph::BuildStrategy::kChain,
    seqgraph::BuildStrategy::kChainUnordered,
    seqgraph::BuildStrategy::kGreedyTree,
};

TEST_P(GraphProperty, ZipfSweepSatisfiesC1C2) {
  Rng rng(GetParam());
  for (const std::size_t num_groups : {4u, 8u, 16u, 32u}) {
    const auto m = membership::zipf_membership(
        {.num_nodes = 64, .num_groups = num_groups, .scale = 2.0}, rng);
    const membership::OverlapIndex idx(m);
    for (const auto strategy : kAllStrategies) {
      const auto graph =
          seqgraph::build_sequencing_graph(m, idx, {.strategy = strategy});
      const auto report = seqgraph::validate_sequencing_graph(graph, m, idx);
      EXPECT_TRUE(report.ok)
          << "groups=" << num_groups << " seed=" << GetParam()
          << " strategy=" << static_cast<int>(strategy)
          << (report.errors.empty() ? "" : report.errors.front());
    }
  }
}

TEST_P(GraphProperty, OccupancySweepSatisfiesC1C2) {
  Rng rng(GetParam() + 500);
  for (const double occupancy : {0.05, 0.1, 0.3, 0.6, 0.9}) {
    const auto m = membership::occupancy_membership(
        {.num_nodes = 32, .num_groups = 12, .occupancy = occupancy}, rng);
    if (m.num_groups() == 0) continue;
    const membership::OverlapIndex idx(m);
    for (const auto strategy : kAllStrategies) {
      const auto graph =
          seqgraph::build_sequencing_graph(m, idx, {.strategy = strategy});
      EXPECT_TRUE(seqgraph::validate_sequencing_graph(graph, m, idx).ok)
          << "occupancy=" << occupancy
          << " strategy=" << static_cast<int>(strategy);
    }
  }
}

TEST_P(GraphProperty, TreeStrategyNeverLongerPathsThanChain) {
  Rng rng(GetParam() + 900);
  const auto m = membership::zipf_membership(
      {.num_nodes = 64, .num_groups = 20, .scale = 2.0}, rng);
  const membership::OverlapIndex idx(m);
  const auto chain = seqgraph::build_sequencing_graph(
      m, idx, {.strategy = seqgraph::BuildStrategy::kChain});
  const auto tree = seqgraph::build_sequencing_graph(
      m, idx, {.strategy = seqgraph::BuildStrategy::kGreedyTree});
  auto total_path = [](const seqgraph::SequencingGraph& g) {
    std::size_t total = 0;
    for (const GroupId grp : g.groups()) total += g.path(grp).size();
    return total;
  };
  // The tree branches around unrelated atoms; when its greedy step
  // succeeds it should not do worse than the shared chain. (When it falls
  // back it produces exactly the chain.)
  EXPECT_LE(total_path(tree), total_path(chain)) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace decseq
