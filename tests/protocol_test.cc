#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <map>
#include <new>
#include <vector>

#include "protocol/message.h"
#include "protocol/receiver.h"
#include "seqgraph/graph.h"
#include "tests/alloc_probe.h"
#include "tests/test_util.h"

namespace decseq::protocol {
namespace {

using test::G;
using test::N;

Message make_msg(unsigned id, GroupId g, SeqNo group_seq,
                 StampVec stamps = {}) {
  return Message::make(
      {.id = MsgId(id), .group = g, .sender = N(0), .group_seq = group_seq},
      std::move(stamps));
}

Message make_fin(unsigned id, GroupId g, SeqNo group_seq) {
  return Message::make({.id = MsgId(id),
                        .group = g,
                        .sender = N(0),
                        .group_seq = group_seq,
                        .is_fin = true});
}

TEST(MessageFormat, HeaderBytesGrowWithStamps) {
  Message m = make_msg(1, G(0), 1);
  const std::size_t base = ordering_header_bytes(m);
  m.stamps.push_back({AtomId(0), 1});
  m.stamps.push_back({AtomId(1), 1});
  EXPECT_EQ(ordering_header_bytes(m), base + 2 * 12);
}

TEST(MessageFormat, BeatsVectorTimestampWhenOverlapsAreFew) {
  // 128 nodes => 1 KiB vector timestamp; a message with 8 stamps stays
  // under 120 bytes. This is the paper's §4.4 overhead argument.
  Message m = make_msg(1, G(0), 1);
  for (unsigned i = 0; i < 8; ++i) m.stamps.push_back({AtomId(i), 1});
  EXPECT_LT(ordering_header_bytes(m), vector_timestamp_bytes(128));
}

class ReceiverTest : public ::testing::Test {
 protected:
  std::vector<MsgId> delivered_;
  Receiver make(std::vector<GroupId> subs, std::vector<AtomId> atoms) {
    return Receiver(N(1), std::move(subs), std::move(atoms),
                    [this](const Message& m, sim::Time) {
                      delivered_.push_back(m.id());
                    });
  }
};

TEST_F(ReceiverTest, DeliversInGroupSeqOrder) {
  Receiver r = make({G(0)}, {});
  r.receive(make_msg(2, G(0), 2), 0.0);  // early: must buffer
  EXPECT_TRUE(delivered_.empty());
  EXPECT_EQ(r.buffered(), 1u);
  r.receive(make_msg(1, G(0), 1), 1.0);  // unblocks both
  EXPECT_EQ(delivered_, (std::vector<MsgId>{MsgId(1), MsgId(2)}));
  EXPECT_EQ(r.buffered(), 0u);
}

TEST_F(ReceiverTest, InstantDecisionIsVisible) {
  Receiver r = make({G(0)}, {});
  EXPECT_FALSE(r.deliverable(make_msg(5, G(0), 2)));
  EXPECT_TRUE(r.deliverable(make_msg(5, G(0), 1)));
}

TEST_F(ReceiverTest, IndependentGroupsDontBlock) {
  Receiver r = make({G(0), G(1)}, {});
  r.receive(make_msg(1, G(0), 1), 0.0);
  r.receive(make_msg(2, G(1), 1), 0.0);
  r.receive(make_msg(3, G(0), 2), 0.0);
  EXPECT_EQ(delivered_.size(), 3u);
}

TEST_F(ReceiverTest, RelevantStampGatesDelivery) {
  // Node in overlap(Q): messages to the two groups must follow Q's order
  // even when group-local numbers would allow delivery.
  Receiver r = make({G(0), G(1)}, {AtomId(7)});
  // Q stamped the G1 message first (seq 1) and the G0 message second.
  r.receive(make_msg(1, G(0), 1, {{AtomId(7), 2}}), 0.0);
  EXPECT_TRUE(delivered_.empty()) << "G0 message must wait for Q seq 1";
  r.receive(make_msg(2, G(1), 1, {{AtomId(7), 1}}), 0.0);
  EXPECT_EQ(delivered_, (std::vector<MsgId>{MsgId(2), MsgId(1)}));
}

TEST_F(ReceiverTest, IrrelevantStampsIgnored) {
  // Stamps from atoms whose overlap excludes this node must not block.
  Receiver r = make({G(0)}, {});
  r.receive(make_msg(1, G(0), 1, {{AtomId(3), 99}}), 0.0);
  EXPECT_EQ(delivered_.size(), 1u);
}

TEST_F(ReceiverTest, CascadingDrain) {
  Receiver r = make({G(0)}, {});
  r.receive(make_msg(3, G(0), 3), 0.0);
  r.receive(make_msg(2, G(0), 2), 0.0);
  EXPECT_TRUE(delivered_.empty());
  r.receive(make_msg(1, G(0), 1), 0.0);
  EXPECT_EQ(delivered_,
            (std::vector<MsgId>{MsgId(1), MsgId(2), MsgId(3)}));
}

TEST_F(ReceiverTest, RejectsUnsubscribedGroup) {
  Receiver r = make({G(0)}, {});
  EXPECT_THROW(r.receive(make_msg(1, G(9), 1), 0.0), CheckFailure);
}

TEST_F(ReceiverTest, MultipleRelevantStampsAllMustMatch) {
  Receiver r = make({G(0), G(1), G(2)}, {AtomId(1), AtomId(2)});
  // Message to G0 stamped by both atoms; second stamp is ahead.
  r.receive(make_msg(1, G(0), 1, {{AtomId(1), 1}, {AtomId(2), 2}}), 0.0);
  EXPECT_TRUE(delivered_.empty());
  // The message occupying Q2 seq 1 arrives (to G2, only stamped by Q2).
  r.receive(make_msg(2, G(2), 1, {{AtomId(2), 1}}), 0.0);
  EXPECT_EQ(delivered_, (std::vector<MsgId>{MsgId(2), MsgId(1)}));
}

TEST_F(ReceiverTest, MaxBufferedRecordsPeakNotCurrent) {
  Receiver r = make({G(0)}, {});
  r.receive(make_msg(4, G(0), 4), 0.0);
  r.receive(make_msg(3, G(0), 3), 0.0);
  r.receive(make_msg(2, G(0), 2), 0.0);
  EXPECT_EQ(r.buffered(), 3u);
  r.receive(make_msg(1, G(0), 1), 0.0);  // releases the whole chain
  EXPECT_EQ(r.buffered(), 0u);
  EXPECT_EQ(r.max_buffered(), 3u) << "the peak must survive the drain";
  EXPECT_EQ(delivered_.size(), 4u);
}

TEST_F(ReceiverTest, CascadeReleasesChainInSequenceOrder) {
  // Waiters parked in reverse arrival order must still come out of the
  // cascade strictly by sequence number.
  Receiver r = make({G(0)}, {});
  for (unsigned seq = 5; seq >= 2; --seq) {
    r.receive(make_msg(seq, G(0), seq), 0.0);
  }
  EXPECT_TRUE(delivered_.empty());
  r.receive(make_msg(1, G(0), 1), 0.0);
  EXPECT_EQ(delivered_, (std::vector<MsgId>{MsgId(1), MsgId(2), MsgId(3),
                                            MsgId(4), MsgId(5)}));
}

TEST_F(ReceiverTest, WokenWaiterReparksOnLaterCounter) {
  // Blocked on both its group counter and a relevant stamp: filling the
  // group gap wakes it, it re-parks on the stamp, and the stamp's advance
  // finally delivers it. Throughout, it occupies one buffer slot and its
  // wait clock runs from the original arrival.
  Receiver r = make({G(0), G(1)}, {AtomId(7)});
  r.receive(make_msg(9, G(0), 2, {{AtomId(7), 2}}), 0.0);
  EXPECT_EQ(r.buffered(), 1u);
  r.receive(make_msg(1, G(0), 1), 5.0);  // fills the group gap only
  EXPECT_EQ(delivered_, (std::vector<MsgId>{MsgId(1)}));
  EXPECT_EQ(r.buffered(), 1u) << "still blocked on the Q7 stamp";
  r.receive(make_msg(2, G(1), 1, {{AtomId(7), 1}}), 8.0);
  EXPECT_EQ(delivered_,
            (std::vector<MsgId>{MsgId(1), MsgId(2), MsgId(9)}));
  EXPECT_EQ(r.buffered(), 0u);
  EXPECT_EQ(r.max_buffered(), 1u) << "a re-park is not a second park";
  EXPECT_DOUBLE_EQ(r.total_buffer_wait(), 8.0);  // parked 0.0 -> 8.0
}

TEST_F(ReceiverTest, MessageAfterFinThrows) {
  Receiver r = make({G(0)}, {});
  r.receive(make_fin(1, G(0), 1), 0.0);
  EXPECT_TRUE(r.group_closed(G(0)));
  EXPECT_THROW(r.receive(make_msg(2, G(0), 2), 0.0), CheckFailure);
}

TEST_F(ReceiverTest, BufferedFinClosesGroupOnlyAfterCascade) {
  // A FIN that arrives early parks like any message; the group closes
  // when the cascade actually delivers it, not on arrival.
  Receiver r = make({G(0)}, {});
  r.receive(make_fin(3, G(0), 3), 0.0);
  r.receive(make_msg(2, G(0), 2), 0.0);
  EXPECT_FALSE(r.group_closed(G(0)));
  r.receive(make_msg(1, G(0), 1), 0.0);
  EXPECT_TRUE(r.group_closed(G(0)));
  EXPECT_EQ(delivered_.size(), 3u);
}

TEST_F(ReceiverTest, ParkWakeDeliverPathIsAllocationFree) {
  // The whole publish→park→wake→deliver cycle must stop allocating once
  // the slabs are warm: payload blocks come from the per-thread pool,
  // parked messages from the pending_ slab, and the waiting index from the
  // WaitNode slab (the former per-park unordered_map hash node was the last
  // allocating step on this path).
  Receiver r = make({G(0), G(1)}, {AtomId(0)});
  delivered_.reserve(1024);  // keep the fixture's log out of the measurement

  // One cycle: a G(1) message arrives blocked on the atom stamp (parks),
  // then the G(0) message carrying the prior stamp delivers and wakes it.
  const auto cycle = [&](SeqNo k) {
    StampVec blocked;
    blocked.push_back({AtomId(0), 2 * k});
    r.receive(Message::make({.id = MsgId(2 * static_cast<unsigned>(k)),
                             .group = G(1),
                             .sender = N(0),
                             .group_seq = k},
                            std::move(blocked)),
              0.0);
    StampVec due;
    due.push_back({AtomId(0), 2 * k - 1});
    r.receive(Message::make({.id = MsgId(2 * static_cast<unsigned>(k) - 1),
                             .group = G(0),
                             .sender = N(0),
                             .group_seq = k},
                            std::move(due)),
              0.0);
  };

  for (SeqNo k = 1; k <= 16; ++k) cycle(k);  // warm the slabs and pools
  ASSERT_EQ(delivered_.size(), 32u);

  const std::size_t allocs_before = test::alloc_count();
  for (SeqNo k = 17; k <= 116; ++k) cycle(k);
  const std::size_t allocs = test::alloc_count() - allocs_before;

  EXPECT_EQ(allocs, 0u) << "park/wake/deliver path allocated";
  EXPECT_EQ(delivered_.size(), 232u);
}

TEST(RelevantAtoms, ComputedFromOverlapMembership) {
  const auto m = test::make_membership(5, {{0, 1, 2}, {1, 2, 3}, {3, 4, 0}});
  const membership::OverlapIndex idx(m);
  const auto graph = seqgraph::build_sequencing_graph(m, idx, {});
  // Overlap (g0,g1) = {1,2}: atoms relevant to nodes 1 and 2 only.
  const auto r0 = relevant_atoms_for(N(0), graph);
  const auto r1 = relevant_atoms_for(N(1), graph);
  EXPECT_TRUE(r0.empty());
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_EQ(graph.atom(r1[0]).overlap_members,
            (std::vector<NodeId>{N(1), N(2)}));
}

}  // namespace
}  // namespace decseq::protocol
