#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "protocol/message.h"
#include "protocol/receiver.h"
#include "seqgraph/graph.h"
#include "tests/test_util.h"

namespace decseq::protocol {
namespace {

using test::G;
using test::N;

Message make_msg(unsigned id, GroupId g, SeqNo group_seq,
                 std::vector<Stamp> stamps = {}) {
  Message m;
  m.id = MsgId(id);
  m.group = g;
  m.sender = N(0);
  m.group_seq = group_seq;
  m.stamps = std::move(stamps);
  return m;
}

TEST(MessageFormat, HeaderBytesGrowWithStamps) {
  Message m = make_msg(1, G(0), 1);
  const std::size_t base = ordering_header_bytes(m);
  m.stamps.push_back({AtomId(0), 1});
  m.stamps.push_back({AtomId(1), 1});
  EXPECT_EQ(ordering_header_bytes(m), base + 2 * 12);
}

TEST(MessageFormat, BeatsVectorTimestampWhenOverlapsAreFew) {
  // 128 nodes => 1 KiB vector timestamp; a message with 8 stamps stays
  // under 120 bytes. This is the paper's §4.4 overhead argument.
  Message m = make_msg(1, G(0), 1);
  for (unsigned i = 0; i < 8; ++i) m.stamps.push_back({AtomId(i), 1});
  EXPECT_LT(ordering_header_bytes(m), vector_timestamp_bytes(128));
}

class ReceiverTest : public ::testing::Test {
 protected:
  std::vector<MsgId> delivered_;
  Receiver make(std::vector<GroupId> subs, std::vector<AtomId> atoms) {
    return Receiver(N(1), std::move(subs), std::move(atoms),
                    [this](const Message& m, sim::Time) {
                      delivered_.push_back(m.id);
                    });
  }
};

TEST_F(ReceiverTest, DeliversInGroupSeqOrder) {
  Receiver r = make({G(0)}, {});
  r.receive(make_msg(2, G(0), 2), 0.0);  // early: must buffer
  EXPECT_TRUE(delivered_.empty());
  EXPECT_EQ(r.buffered(), 1u);
  r.receive(make_msg(1, G(0), 1), 1.0);  // unblocks both
  EXPECT_EQ(delivered_, (std::vector<MsgId>{MsgId(1), MsgId(2)}));
  EXPECT_EQ(r.buffered(), 0u);
}

TEST_F(ReceiverTest, InstantDecisionIsVisible) {
  Receiver r = make({G(0)}, {});
  EXPECT_FALSE(r.deliverable(make_msg(5, G(0), 2)));
  EXPECT_TRUE(r.deliverable(make_msg(5, G(0), 1)));
}

TEST_F(ReceiverTest, IndependentGroupsDontBlock) {
  Receiver r = make({G(0), G(1)}, {});
  r.receive(make_msg(1, G(0), 1), 0.0);
  r.receive(make_msg(2, G(1), 1), 0.0);
  r.receive(make_msg(3, G(0), 2), 0.0);
  EXPECT_EQ(delivered_.size(), 3u);
}

TEST_F(ReceiverTest, RelevantStampGatesDelivery) {
  // Node in overlap(Q): messages to the two groups must follow Q's order
  // even when group-local numbers would allow delivery.
  Receiver r = make({G(0), G(1)}, {AtomId(7)});
  // Q stamped the G1 message first (seq 1) and the G0 message second.
  r.receive(make_msg(1, G(0), 1, {{AtomId(7), 2}}), 0.0);
  EXPECT_TRUE(delivered_.empty()) << "G0 message must wait for Q seq 1";
  r.receive(make_msg(2, G(1), 1, {{AtomId(7), 1}}), 0.0);
  EXPECT_EQ(delivered_, (std::vector<MsgId>{MsgId(2), MsgId(1)}));
}

TEST_F(ReceiverTest, IrrelevantStampsIgnored) {
  // Stamps from atoms whose overlap excludes this node must not block.
  Receiver r = make({G(0)}, {});
  r.receive(make_msg(1, G(0), 1, {{AtomId(3), 99}}), 0.0);
  EXPECT_EQ(delivered_.size(), 1u);
}

TEST_F(ReceiverTest, CascadingDrain) {
  Receiver r = make({G(0)}, {});
  r.receive(make_msg(3, G(0), 3), 0.0);
  r.receive(make_msg(2, G(0), 2), 0.0);
  EXPECT_TRUE(delivered_.empty());
  r.receive(make_msg(1, G(0), 1), 0.0);
  EXPECT_EQ(delivered_,
            (std::vector<MsgId>{MsgId(1), MsgId(2), MsgId(3)}));
}

TEST_F(ReceiverTest, RejectsUnsubscribedGroup) {
  Receiver r = make({G(0)}, {});
  EXPECT_THROW(r.receive(make_msg(1, G(9), 1), 0.0), CheckFailure);
}

TEST_F(ReceiverTest, MultipleRelevantStampsAllMustMatch) {
  Receiver r = make({G(0), G(1), G(2)}, {AtomId(1), AtomId(2)});
  // Message to G0 stamped by both atoms; second stamp is ahead.
  r.receive(make_msg(1, G(0), 1, {{AtomId(1), 1}, {AtomId(2), 2}}), 0.0);
  EXPECT_TRUE(delivered_.empty());
  // The message occupying Q2 seq 1 arrives (to G2, only stamped by Q2).
  r.receive(make_msg(2, G(2), 1, {{AtomId(2), 1}}), 0.0);
  EXPECT_EQ(delivered_, (std::vector<MsgId>{MsgId(2), MsgId(1)}));
}

TEST(RelevantAtoms, ComputedFromOverlapMembership) {
  const auto m = test::make_membership(5, {{0, 1, 2}, {1, 2, 3}, {3, 4, 0}});
  const membership::OverlapIndex idx(m);
  const auto graph = seqgraph::build_sequencing_graph(m, idx, {});
  // Overlap (g0,g1) = {1,2}: atoms relevant to nodes 1 and 2 only.
  const auto r0 = relevant_atoms_for(N(0), graph);
  const auto r1 = relevant_atoms_for(N(1), graph);
  EXPECT_TRUE(r0.empty());
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_EQ(graph.atom(r1[0]).overlap_members,
            (std::vector<NodeId>{N(1), N(2)}));
}

}  // namespace
}  // namespace decseq::protocol
