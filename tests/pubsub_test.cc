#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "pubsub/system.h"
#include "tests/test_util.h"

namespace decseq::pubsub {
namespace {

using test::G;
using test::N;

TEST(PubSub, SingleGroupDeliversToAllMembers) {
  PubSubSystem system(test::small_config(1));
  const GroupId g = system.create_group({N(0), N(1), N(2)});
  system.publish(N(0), g, 42);
  system.run();
  ASSERT_EQ(system.deliveries().size(), 3u);
  std::set<NodeId> receivers;
  for (const Delivery& d : system.deliveries()) {
    receivers.insert(d.receiver);
    EXPECT_EQ(d.payload, 42u);
    EXPECT_EQ(d.sender, N(0));
    EXPECT_GT(d.delivered_at, d.sent_at);
  }
  EXPECT_EQ(receivers, (std::set<NodeId>{N(0), N(1), N(2)}));
}

TEST(PubSub, SenderNeedNotSubscribe) {
  PubSubSystem system(test::small_config(2));
  const GroupId g = system.create_group({N(1), N(2)});
  system.publish(N(0), g);
  system.run();
  EXPECT_EQ(system.deliveries().size(), 2u);
}

TEST(PubSub, PerGroupFifoFromOneSender) {
  PubSubSystem system(test::small_config(3));
  const GroupId g = system.create_group({N(0), N(1), N(2), N(3)});
  for (std::uint64_t i = 0; i < 10; ++i) system.publish(N(0), g, i);
  system.run();
  for (unsigned n = 0; n < 4; ++n) {
    const auto log = system.deliveries_to(N(n));
    ASSERT_EQ(log.size(), 10u);
    for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(log[i].payload, i);
  }
}

TEST(PubSub, OverlappedGroupsConsistentUnderConcurrentPublish) {
  PubSubSystem system(test::small_config(4));
  const GroupId g0 = system.create_group({N(0), N(1), N(2), N(3)});
  const GroupId g1 = system.create_group({N(2), N(3), N(4), N(5)});
  // Concurrent publishes from different corners of the network.
  for (int round = 0; round < 5; ++round) {
    system.publish(N(0), g0, 100 + static_cast<std::uint64_t>(round));
    system.publish(N(4), g1, 200 + static_cast<std::uint64_t>(round));
    system.publish(N(2), g0, 300 + static_cast<std::uint64_t>(round));
    system.publish(N(3), g1, 400 + static_cast<std::uint64_t>(round));
  }
  system.run();
  // Completeness: every member got every message of its groups.
  EXPECT_EQ(system.deliveries_to(N(0)).size(), 10u);   // g0 only
  EXPECT_EQ(system.deliveries_to(N(2)).size(), 20u);   // both
  EXPECT_EQ(system.deliveries_to(N(4)).size(), 10u);   // g1 only
  // Consistency: nodes 2 and 3 see the interleaving identically.
  const auto violation = test::find_order_violation(system.deliveries());
  EXPECT_FALSE(violation.has_value()) << *violation;
  EXPECT_EQ(system.network().buffered_at_receivers(), 0u);
}

TEST(PubSub, PaperFigure2ScenarioHasNoCircularDependency) {
  // G0={A,B,D}, G1={A,B,C}, G2={B,C,D}: the §3.3 example where a loopy
  // sequencing graph deadlocks node B. With C2 enforced, all messages
  // deliver everywhere.
  PubSubSystem system(test::small_config(5, /*num_hosts=*/4));
  const GroupId g0 = system.create_group({N(0), N(1), N(3)});
  const GroupId g1 = system.create_group({N(0), N(1), N(2)});
  const GroupId g2 = system.create_group({N(1), N(2), N(3)});
  system.publish(N(0), g0);
  system.publish(N(2), g1);
  system.publish(N(3), g2);
  system.run();
  // B (=node 1) subscribes to all three groups and must deliver all three.
  EXPECT_EQ(system.deliveries_to(N(1)).size(), 3u);
  EXPECT_EQ(system.network().buffered_at_receivers(), 0u);
  const auto violation = test::find_order_violation(system.deliveries());
  EXPECT_FALSE(violation.has_value()) << *violation;
}

TEST(PubSub, CausalChainAcrossGroups) {
  // A publishes m1 to g0; when B delivers m1 it reacts by publishing m2 to
  // g1. Both groups share {B, C}; C must deliver m1 before m2.
  PubSubSystem system(test::small_config(6));
  const GroupId g0 = system.create_group({N(0), N(1), N(2)});
  const GroupId g1 = system.create_group({N(1), N(2), N(3)});
  bool reacted = false;
  system.set_delivery_callback(
      [&](NodeId receiver, const protocol::Message& m, sim::Time) {
        if (receiver == N(1) && m.payload() == 1 && !reacted) {
          reacted = true;
          system.publish(N(1), g1, 2);
        }
      });
  system.publish(N(0), g0, 1);
  system.run();
  ASSERT_TRUE(reacted);
  const auto at_c = system.deliveries_to(N(2));
  ASSERT_EQ(at_c.size(), 2u);
  EXPECT_EQ(at_c[0].payload, 1u) << "cause must precede effect at C";
  EXPECT_EQ(at_c[1].payload, 2u);
}

TEST(PubSub, CausalPublishOrdersOwnMessagesAcrossGroups) {
  // One sender, two overlapping groups. With publish_causal, the sender's
  // m1 (to g0) must precede its m2 (to g1) at every common subscriber even
  // though g1's ingress may be nearer.
  PubSubSystem system(test::small_config(7));
  const GroupId g0 = system.create_group({N(0), N(1), N(2)});
  const GroupId g1 = system.create_group({N(0), N(1), N(3)});
  system.publish_causal(N(0), g0, 1);
  system.publish_causal(N(0), g1, 2);
  system.run();
  for (const NodeId common : {N(0), N(1)}) {
    const auto log = system.deliveries_to(common);
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0].payload, 1u);
    EXPECT_EQ(log[1].payload, 2u);
  }
}

TEST(PubSub, CausalPublishRequiresMembership) {
  PubSubSystem system(test::small_config(8));
  const GroupId g = system.create_group({N(1), N(2)});
  EXPECT_THROW(system.publish_causal(N(0), g), CheckFailure);
}

TEST(PubSub, MembershipChangeRebuildsGraph) {
  PubSubSystem system(test::small_config(9));
  const GroupId g0 = system.create_group({N(0), N(1), N(2)});
  const GroupId g1 = system.create_group({N(3), N(4), N(5)});
  EXPECT_EQ(system.graph().num_overlap_atoms(), 0u);
  system.join(g1, N(1));
  system.join(g1, N(2));
  EXPECT_EQ(system.graph().num_overlap_atoms(), 1u);
  system.publish(N(0), g0);
  system.publish(N(5), g1);
  system.run();
  EXPECT_FALSE(test::find_order_violation(system.deliveries()).has_value());
  system.leave(g1, N(1));
  EXPECT_EQ(system.graph().num_overlap_atoms(), 0u);
  (void)g0;
}

TEST(PubSub, LossyChannelsStillConsistent) {
  auto config = test::small_config(10);
  config.network.channel.loss_probability = 0.3;
  config.network.channel.retransmit_timeout_ms = 50.0;
  PubSubSystem system(config);
  const GroupId g0 = system.create_group({N(0), N(1), N(2), N(3)});
  const GroupId g1 = system.create_group({N(2), N(3), N(4), N(5)});
  const GroupId g2 = system.create_group({N(0), N(3), N(5), N(6)});
  for (int i = 0; i < 8; ++i) {
    system.publish(N(0), g0);
    system.publish(N(4), g1);
    system.publish(N(6), g2);
  }
  system.run();
  EXPECT_EQ(system.deliveries_to(N(3)).size(), 24u);  // member of all three
  EXPECT_FALSE(test::find_order_violation(system.deliveries()).has_value());
  EXPECT_EQ(system.network().buffered_at_receivers(), 0u);
}

TEST(PubSub, SequencedDelayNeverBeatsUnicast) {
  PubSubSystem system(test::small_config(11));
  const GroupId g = system.create_group({N(0), N(1), N(2), N(3)});
  system.publish(N(0), g);
  system.run();
  auto& oracle = system.oracle();
  for (const Delivery& d : system.deliveries()) {
    if (d.receiver == d.sender) continue;
    const double unicast =
        system.hosts().unicast_delay(d.sender, d.receiver, oracle);
    EXPECT_GE(d.delivered_at - d.sent_at, unicast - 1e-9)
        << "triangle inequality: the sequencer detour cannot be faster";
  }
  (void)g;
}

TEST(PubSub, BodyBytesReachDeliveryCallbacks) {
  PubSubSystem system(test::small_config(13));
  const GroupId g = system.create_group({N(0), N(1)});
  const std::vector<std::uint8_t> body{'h', 'i', 0x00, 0xff};
  std::size_t seen = 0;
  system.set_delivery_callback(
      [&](NodeId, const protocol::Message& m, sim::Time) {
        EXPECT_EQ(std::vector<std::uint8_t>(m.body().begin(), m.body().end()),
                  body);
        ++seen;
      });
  system.publish(N(0), g, 1, body);
  system.run();
  EXPECT_EQ(seen, 2u);
}

TEST(PubSub, MessageRecordTracksStampsAndExit) {
  PubSubSystem system(test::small_config(12));
  const GroupId g0 = system.create_group({N(0), N(1), N(2)});
  system.create_group({N(1), N(2), N(3)});
  const MsgId id = system.publish(N(0), g0);
  system.run();
  const auto& rec = system.record(id);
  ASSERT_TRUE(rec.exited_at.has_value());
  EXPECT_EQ(rec.stamps, 1u);  // one overlap atom on g0's path
  EXPECT_GT(rec.header_bytes, 0u);
}

}  // namespace
}  // namespace decseq::pubsub
