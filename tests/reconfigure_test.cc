// Tests for the live reconfiguration API (epoch-boundary membership
// batches) and the Graphviz export.
#include <gtest/gtest.h>

#include <set>

#include "pubsub/system.h"
#include "seqgraph/dot.h"
#include "tests/test_util.h"

namespace decseq::pubsub {
namespace {

using test::G;
using test::N;

TEST(Reconfigure, DrainsInFlightTrafficFirst) {
  PubSubSystem system(test::small_config(91));
  const GroupId g0 = system.create_group({N(0), N(1), N(2)});
  // Publish and immediately reconfigure: the old epoch's message must be
  // delivered under the old graph before anything changes.
  system.publish(N(0), g0, 7);
  const auto created = system.reconfigure({
      PubSubSystem::MembershipChange::create({N(1), N(2), N(3)}),
      PubSubSystem::MembershipChange::join(g0, N(4)),
  });
  ASSERT_EQ(created.size(), 1u);
  EXPECT_EQ(system.deliveries().size(), 3u) << "old message fully delivered";
  EXPECT_EQ(system.membership().members(g0).size(), 4u);
  EXPECT_EQ(system.membership().num_groups(), 2u);

  // New epoch works, including the new overlap (g0 and the new group now
  // share {1,2}).
  EXPECT_EQ(system.graph().num_overlap_atoms(), 1u);
  system.publish(N(4), g0, 8);
  system.publish(N(3), created[0], 9);
  system.run();
  EXPECT_FALSE(test::find_order_violation(system.deliveries()).has_value());
}

TEST(Reconfigure, BatchAppliesAtomically) {
  PubSubSystem system(test::small_config(92));
  const GroupId g0 = system.create_group({N(0), N(1)});
  const GroupId g1 = system.create_group({N(2), N(3)});
  system.reconfigure({
      PubSubSystem::MembershipChange::remove(g1),
      PubSubSystem::MembershipChange::join(g0, N(5)),
      PubSubSystem::MembershipChange::leave(g0, N(0)),
      PubSubSystem::MembershipChange::create({N(6), N(7)}),
  });
  EXPECT_FALSE(system.membership().is_alive(g1));
  EXPECT_EQ(system.membership().members(g0),
            (std::vector<NodeId>{N(1), N(5)}));
  EXPECT_EQ(system.membership().num_groups(), 2u);
}

TEST(Reconfigure, MessageIdsUniqueAcrossEpochs) {
  PubSubSystem system(test::small_config(97));
  const GroupId g = system.create_group({N(0), N(1)});
  const MsgId first = system.publish(N(0), g, 1);
  system.run();
  system.reconfigure({PubSubSystem::MembershipChange::join(g, N(2))});
  const MsgId second = system.publish(N(0), g, 2);
  system.run();
  EXPECT_NE(first, second) << "ids must stay unique across graph rebuilds";
  EXPECT_GT(second.value(), first.value());
  // The facade record accessor resolves epoch-local storage correctly.
  EXPECT_TRUE(system.record(second).exited_at.has_value());
  EXPECT_THROW((void)system.record(first), CheckFailure)
      << "pre-epoch records are gone after the rebuild";
  // And the log never conflates the two messages.
  std::set<MsgId> ids;
  for (const auto& d : system.deliveries()) ids.insert(d.message);
  EXPECT_EQ(ids.size(), 2u);
}

TEST(Reconfigure, EmptyBatchIsANoop) {
  PubSubSystem system(test::small_config(93));
  const GroupId g = system.create_group({N(0), N(1)});
  EXPECT_TRUE(system.reconfigure({}).empty());
  EXPECT_TRUE(system.membership().is_alive(g));
}

TEST(Reconfigure, CrashWindowRacingReconfigureDrainsClean) {
  // A sequencer crash window that is still open when a membership batch
  // arrives: reconfigure()'s drain-first semantics must push the old
  // epoch's traffic through the retransmission backlog and the recovery
  // event before the graph is rebuilt — without losing a message, wedging
  // a receiver reorder buffer, or breaking pairwise order. This is the
  // schedule the fuzzer's fault generator produces when a crash window
  // overlaps a phase boundary (src/fuzz/scenario.h).
  auto config = test::small_config(98);
  config.network.channel.retransmit_timeout_ms = 40.0;
  config.network.channel.max_retransmits = 2000;
  PubSubSystem system(config);
  const GroupId g0 = system.create_group({N(0), N(1), N(2), N(3)});
  const GroupId g1 = system.create_group({N(2), N(3), N(4), N(5)});
  auto& sim = system.simulator();

  // Traffic into both (overlapping) groups around the crash.
  for (int i = 0; i < 12; ++i) {
    sim.schedule_at(2.0 + i * 5.0, [&system, g0, g1, i] {
      const GroupId target = (i % 2 == 0) ? g0 : g1;
      system.publish(N(static_cast<unsigned>(i) % 6), target,
                     static_cast<std::uint64_t>(i));
    });
  }
  // Fail the machine hosting g0's ingress atom mid-traffic (so the crash
  // provably sits on the hot path); recovery is scheduled after the last
  // publish, so only the reconfigure's drain can complete the epoch.
  const SeqNodeId victim =
      system.colocation().node_of(system.graph().path(g0).front());
  sim.schedule_at(15.0, [&system, victim] {
    system.fail_sequencing_node(victim);
  });
  sim.schedule_at(500.0, [&system, victim] {
    system.recover_sequencing_node(victim);
  });

  const auto created = system.reconfigure({
      PubSubSystem::MembershipChange::join(g0, N(6)),
      PubSubSystem::MembershipChange::leave(g1, N(5)),
      PubSubSystem::MembershipChange::create({N(5), N(6), N(7)}),
  });
  ASSERT_EQ(created.size(), 1u);

  // Old epoch fully flushed: every publish reached its whole group, no
  // receiver is holding a parked message, and pairwise order held.
  EXPECT_EQ(system.deliveries().size(), 6u * 4u + 6u * 4u)
      << "12 publishes x 4 members each";
  EXPECT_EQ(system.network().buffered_at_receivers(), 0u);
  EXPECT_FALSE(test::find_order_violation(system.deliveries()).has_value());

  // The new epoch (rebuilt graph, changed overlaps) still sequences.
  system.publish(N(6), g0, 100);
  system.publish(N(4), g1, 101);
  system.publish(N(7), created[0], 102);
  system.run();
  EXPECT_EQ(system.network().buffered_at_receivers(), 0u);
  EXPECT_FALSE(test::find_order_violation(system.deliveries()).has_value());
}

TEST(Reconfigure, RebuildRecompilesDenseRoutingTables) {
  // Routing is table-driven (network.cc compiles each group's path into a
  // flat hop span at construction), so a membership rebuild must leave the
  // tables exactly mirroring the *new* graph: fresh groups get routes, every
  // surviving group's span matches its possibly-changed path, and a removed
  // group's old-epoch span must not leak into the rebuilt runtime.
  PubSubSystem system(test::small_config(99));
  const GroupId g0 = system.create_group({N(0), N(1), N(2), N(3)});
  const GroupId g1 = system.create_group({N(2), N(3), N(4), N(5)});
  for (const GroupId g : {g0, g1}) {
    EXPECT_EQ(system.network().compiled_route(g), system.graph().path(g));
  }
  system.publish(N(0), g0, 1);
  system.run();

  const auto created = system.reconfigure({
      PubSubSystem::MembershipChange::remove(g0),
      PubSubSystem::MembershipChange::join(g1, N(6)),
      PubSubSystem::MembershipChange::create({N(0), N(5), N(7)}),
  });
  ASSERT_EQ(created.size(), 1u);
  for (const GroupId g : {g1, created[0]}) {
    EXPECT_EQ(system.network().compiled_route(g), system.graph().path(g))
        << "recompiled table diverges from the rebuilt graph for " << g;
  }
  EXPECT_TRUE(system.network().compiled_route(g0).empty())
      << "removed group's old-epoch hop span leaked into the new runtime";

  // The recompiled tables actually route: traffic in the new epoch reaches
  // every member, in order.
  system.publish(N(6), g1, 2);
  system.publish(N(7), created[0], 3);
  system.run();
  EXPECT_EQ(system.network().buffered_at_receivers(), 0u);
  EXPECT_FALSE(test::find_order_violation(system.deliveries()).has_value());
}

TEST(Dot, RendersAtomsEdgesAndPaths) {
  PubSubSystem system(test::small_config(94));
  system.create_group({N(0), N(1), N(2), N(3)});
  system.create_group({N(0), N(1), N(4), N(5)});
  system.create_group({N(2), N(3), N(4), N(5)});
  const std::string dot =
      seqgraph::to_dot(system.graph(), system.membership());
  EXPECT_NE(dot.find("digraph sequencing"), std::string::npos);
  EXPECT_NE(dot.find("Q0"), std::string::npos);
  EXPECT_NE(dot.find("label=\"g0\""), std::string::npos);
  // Three overlap atoms, chain of two undirected edges.
  EXPECT_NE(dot.find("dir=none"), std::string::npos);
  EXPECT_EQ(dot.find("cluster_m"), std::string::npos)
      << "no machine clusters without placement info";
}

TEST(Dot, MachineClustersWhenPlacementGiven) {
  PubSubSystem system(test::small_config(95));
  system.create_group({N(0), N(1), N(2)});
  system.create_group({N(1), N(2), N(3)});
  std::vector<std::size_t> machines(system.graph().num_atoms());
  for (const auto& atom : system.graph().atoms()) {
    machines[atom.id.value()] =
        system.colocation().node_of(atom.id).value();
  }
  const std::string dot =
      seqgraph::to_dot(system.graph(), system.membership(), &machines);
  EXPECT_NE(dot.find("cluster_m"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(Dot, IngressOnlyAtomsLabelled) {
  PubSubSystem system(test::small_config(96));
  system.create_group({N(0), N(1)});
  const std::string dot =
      seqgraph::to_dot(system.graph(), system.membership());
  EXPECT_NE(dot.find("ingress g0"), std::string::npos);
}

}  // namespace
}  // namespace decseq::pubsub
