// Tests for the live reconfiguration API (epoch-boundary membership
// batches) and the Graphviz export.
#include <gtest/gtest.h>

#include <set>

#include "pubsub/system.h"
#include "seqgraph/dot.h"
#include "tests/test_util.h"

namespace decseq::pubsub {
namespace {

using test::G;
using test::N;

TEST(Reconfigure, DrainsInFlightTrafficFirst) {
  PubSubSystem system(test::small_config(91));
  const GroupId g0 = system.create_group({N(0), N(1), N(2)});
  // Publish and immediately reconfigure: the old epoch's message must be
  // delivered under the old graph before anything changes.
  system.publish(N(0), g0, 7);
  const auto created = system.reconfigure({
      PubSubSystem::MembershipChange::create({N(1), N(2), N(3)}),
      PubSubSystem::MembershipChange::join(g0, N(4)),
  });
  ASSERT_EQ(created.size(), 1u);
  EXPECT_EQ(system.deliveries().size(), 3u) << "old message fully delivered";
  EXPECT_EQ(system.membership().members(g0).size(), 4u);
  EXPECT_EQ(system.membership().num_groups(), 2u);

  // New epoch works, including the new overlap (g0 and the new group now
  // share {1,2}).
  EXPECT_EQ(system.graph().num_overlap_atoms(), 1u);
  system.publish(N(4), g0, 8);
  system.publish(N(3), created[0], 9);
  system.run();
  EXPECT_FALSE(test::find_order_violation(system.deliveries()).has_value());
}

TEST(Reconfigure, MembershipMutationFailsFastWhileInFlight) {
  // Regression: the quiescence check used to live in rebuild(), AFTER the
  // membership table had been mutated — a refused join/leave/remove left
  // membership describing the new world while the runtime still ran the old
  // one. Every entry point must refuse before touching anything.
  PubSubSystem system(test::small_config(89));
  const GroupId g0 = system.create_group({N(0), N(1), N(2)});
  system.publish(N(0), g0, 1);  // in flight: not drained yet

  EXPECT_THROW(system.join(g0, N(3)), CheckFailure);
  EXPECT_THROW(system.leave(g0, N(1)), CheckFailure);
  EXPECT_THROW(system.remove_group(g0), CheckFailure);
  EXPECT_THROW((void)system.create_group({N(4), N(5)}), CheckFailure);
  EXPECT_THROW((void)system.create_groups({{N(4), N(5)}}), CheckFailure);

  // The failed calls left the membership picture exactly as it was.
  EXPECT_EQ(system.membership().num_groups(), 1u);
  EXPECT_TRUE(system.membership().is_alive(g0));
  EXPECT_EQ(system.membership().members(g0).size(), 3u);
  EXPECT_FALSE(system.membership().is_member(g0, N(3)));

  // Draining restores quiescence and the same operations succeed.
  system.run();
  EXPECT_EQ(system.deliveries().size(), 3u);
  system.join(g0, N(3));
  EXPECT_TRUE(system.membership().is_member(g0, N(3)));

  // Causal queues count as in flight too, even before run() moves time.
  system.publish_causal(N(0), g0, 2);
  EXPECT_THROW(system.join(g0, N(4)), CheckFailure);
  EXPECT_FALSE(system.membership().is_member(g0, N(4)));
  system.run();
  system.join(g0, N(4));
  system.publish(N(4), g0, 3);
  system.run();
  EXPECT_FALSE(test::find_order_violation(system.deliveries()).has_value());
}

TEST(Reconfigure, BatchAppliesAtomically) {
  PubSubSystem system(test::small_config(92));
  const GroupId g0 = system.create_group({N(0), N(1)});
  const GroupId g1 = system.create_group({N(2), N(3)});
  system.reconfigure({
      PubSubSystem::MembershipChange::remove(g1),
      PubSubSystem::MembershipChange::join(g0, N(5)),
      PubSubSystem::MembershipChange::leave(g0, N(0)),
      PubSubSystem::MembershipChange::create({N(6), N(7)}),
  });
  EXPECT_FALSE(system.membership().is_alive(g1));
  EXPECT_EQ(system.membership().members(g0),
            (std::vector<NodeId>{N(1), N(5)}));
  EXPECT_EQ(system.membership().num_groups(), 2u);
}

TEST(Reconfigure, MessageIdsUniqueAcrossEpochs) {
  PubSubSystem system(test::small_config(97));
  const GroupId g = system.create_group({N(0), N(1)});
  const MsgId first = system.publish(N(0), g, 1);
  system.run();
  system.reconfigure({PubSubSystem::MembershipChange::join(g, N(2))});
  const MsgId second = system.publish(N(0), g, 2);
  system.run();
  EXPECT_NE(first, second) << "ids must stay unique across graph rebuilds";
  EXPECT_GT(second.value(), first.value());
  // The facade record accessor resolves epoch-local storage correctly.
  EXPECT_TRUE(system.record(second).exited_at.has_value());
  EXPECT_THROW((void)system.record(first), CheckFailure)
      << "pre-epoch records are gone after the rebuild";
  // And the log never conflates the two messages.
  std::set<MsgId> ids;
  for (const auto& d : system.deliveries()) ids.insert(d.message);
  EXPECT_EQ(ids.size(), 2u);
}

TEST(Reconfigure, EmptyBatchIsANoop) {
  PubSubSystem system(test::small_config(93));
  const GroupId g = system.create_group({N(0), N(1)});
  EXPECT_TRUE(system.reconfigure({}).empty());
  EXPECT_TRUE(system.membership().is_alive(g));
}

TEST(Reconfigure, CrashWindowRacingReconfigureDrainsClean) {
  // A sequencer crash window that is still open when a membership batch
  // arrives: reconfigure()'s drain-first semantics must push the old
  // epoch's traffic through the retransmission backlog and the recovery
  // event before the graph is rebuilt — without losing a message, wedging
  // a receiver reorder buffer, or breaking pairwise order. This is the
  // schedule the fuzzer's fault generator produces when a crash window
  // overlaps a phase boundary (src/fuzz/scenario.h).
  auto config = test::small_config(98);
  config.network.channel.retransmit_timeout_ms = 40.0;
  config.network.channel.max_retransmits = 2000;
  PubSubSystem system(config);
  const GroupId g0 = system.create_group({N(0), N(1), N(2), N(3)});
  const GroupId g1 = system.create_group({N(2), N(3), N(4), N(5)});
  auto& sim = system.simulator();

  // Traffic into both (overlapping) groups around the crash.
  for (int i = 0; i < 12; ++i) {
    sim.schedule_at(2.0 + i * 5.0, [&system, g0, g1, i] {
      const GroupId target = (i % 2 == 0) ? g0 : g1;
      system.publish(N(static_cast<unsigned>(i) % 6), target,
                     static_cast<std::uint64_t>(i));
    });
  }
  // Fail the machine hosting g0's ingress atom mid-traffic (so the crash
  // provably sits on the hot path); recovery is scheduled after the last
  // publish, so only the reconfigure's drain can complete the epoch.
  const SeqNodeId victim =
      system.colocation().node_of(system.graph().path(g0).front());
  sim.schedule_at(15.0, [&system, victim] {
    system.fail_sequencing_node(victim);
  });
  sim.schedule_at(500.0, [&system, victim] {
    system.recover_sequencing_node(victim);
  });

  const auto created = system.reconfigure({
      PubSubSystem::MembershipChange::join(g0, N(6)),
      PubSubSystem::MembershipChange::leave(g1, N(5)),
      PubSubSystem::MembershipChange::create({N(5), N(6), N(7)}),
  });
  ASSERT_EQ(created.size(), 1u);

  // Old epoch fully flushed: every publish reached its whole group, no
  // receiver is holding a parked message, and pairwise order held.
  EXPECT_EQ(system.deliveries().size(), 6u * 4u + 6u * 4u)
      << "12 publishes x 4 members each";
  EXPECT_EQ(system.network().buffered_at_receivers(), 0u);
  EXPECT_FALSE(test::find_order_violation(system.deliveries()).has_value());

  // The new epoch (rebuilt graph, changed overlaps) still sequences.
  system.publish(N(6), g0, 100);
  system.publish(N(4), g1, 101);
  system.publish(N(7), created[0], 102);
  system.run();
  EXPECT_EQ(system.network().buffered_at_receivers(), 0u);
  EXPECT_FALSE(test::find_order_violation(system.deliveries()).has_value());
}

TEST(Reconfigure, RebuildRecompilesDenseRoutingTables) {
  // Routing is table-driven (network.cc compiles each group's path into a
  // flat hop span at construction), so a membership rebuild must leave the
  // tables exactly mirroring the *new* graph: fresh groups get routes, every
  // surviving group's span matches its possibly-changed path, and a removed
  // group's old-epoch span must not leak into the rebuilt runtime.
  PubSubSystem system(test::small_config(99));
  const GroupId g0 = system.create_group({N(0), N(1), N(2), N(3)});
  const GroupId g1 = system.create_group({N(2), N(3), N(4), N(5)});
  for (const GroupId g : {g0, g1}) {
    EXPECT_EQ(system.network().compiled_route(g), system.graph().path(g));
  }
  system.publish(N(0), g0, 1);
  system.run();

  const auto created = system.reconfigure({
      PubSubSystem::MembershipChange::remove(g0),
      PubSubSystem::MembershipChange::join(g1, N(6)),
      PubSubSystem::MembershipChange::create({N(0), N(5), N(7)}),
  });
  ASSERT_EQ(created.size(), 1u);
  for (const GroupId g : {g1, created[0]}) {
    EXPECT_EQ(system.network().compiled_route(g), system.graph().path(g))
        << "recompiled table diverges from the rebuilt graph for " << g;
  }
  EXPECT_TRUE(system.network().compiled_route(g0).empty())
      << "removed group's old-epoch hop span leaked into the new runtime";

  // The recompiled tables actually route: traffic in the new epoch reaches
  // every member, in order.
  system.publish(N(6), g1, 2);
  system.publish(N(7), created[0], 3);
  system.run();
  EXPECT_EQ(system.network().buffered_at_receivers(), 0u);
  EXPECT_FALSE(test::find_order_violation(system.deliveries()).has_value());
}

// --- Zero-downtime reconfiguration (reconfigure_async). ---

// Sorted receivers of every delivery carrying `payload`.
std::vector<NodeId> receivers_of(const std::vector<Delivery>& log,
                                 std::uint64_t payload) {
  std::vector<NodeId> r;
  for (const Delivery& d : log) {
    if (d.payload == payload) r.push_back(d.receiver);
  }
  std::sort(r.begin(), r.end());
  return r;
}

// Payloads of group `g` delivered to `node`, in delivery order.
std::vector<std::uint64_t> group_trace(const std::vector<Delivery>& log,
                                       NodeId node, GroupId g) {
  std::vector<std::uint64_t> t;
  for (const Delivery& d : log) {
    if (d.receiver == node && d.group == g) t.push_back(d.payload);
  }
  return t;
}

TEST(ReconfigureAsync, MidRunCutoverDrainsOldEpochAndGatesNew) {
  // Single-threaded zero-downtime path with genuinely in-flight traffic:
  // the reconfiguration fires from a simulator callback while old-epoch
  // messages are mid-network, exercising the prev-span drain, the stale
  // ingress redirect, and the receiver epoch gates.
  PubSubSystem system(test::small_config(141));
  // ga and gb share {1, 2}: a real overlap atom, so the cutover re-lays a
  // two-group component and the shared subscribers await both fences.
  const GroupId ga = system.create_group({N(0), N(1), N(2)});
  const GroupId gb = system.create_group({N(1), N(2), N(3), N(4)});
  const GroupId gu = system.create_group({N(8), N(9)});  // untouched
  const GroupId gr = system.create_group({N(12), N(13)});  // to be removed

  for (std::uint64_t p = 1; p <= 3; ++p) system.publish(N(0), ga, p);
  for (std::uint64_t p = 4; p <= 6; ++p) system.publish(N(4), gb, p);
  system.publish(N(8), gu, 7);
  const MsgId removed_msg = system.publish(N(12), gr, 8);

  PubSubSystem::ReconfigureResult result;
  system.simulator().schedule_at(0.5, [&] {
    result = system.reconfigure_async({
        PubSubSystem::MembershipChange::join(ga, N(7)),
        PubSubSystem::MembershipChange::leave(gb, N(3)),
        PubSubSystem::MembershipChange::remove(gr),
        PubSubSystem::MembershipChange::create({N(10), N(11)}),
    });
    // Serialized transitions: a second call while fences drain fails fast.
    EXPECT_TRUE(system.transition_active());
    EXPECT_THROW(
        (void)system.reconfigure_async(
            {PubSubSystem::MembershipChange::join(gu, N(0))}),
        CheckFailure);
    // New-epoch traffic enters immediately — no quiescence anywhere.
    system.publish(N(7), ga, 100);
    system.publish(N(2), gb, 101);
    system.publish(N(9), gu, 102);
    system.publish(N(10), result.created[0], 103);
  });
  system.run();

  ASSERT_EQ(result.created.size(), 1u);
  EXPECT_EQ(result.report.groups_refenced, 2u) << "ga and gb";
  EXPECT_EQ(result.report.groups_removed, 1u) << "gr";
  EXPECT_EQ(result.report.groups_created, 1u);
  EXPECT_FALSE(system.transition_active()) << "run() drains the fences";
  EXPECT_EQ(system.network().buffered_at_receivers(), 0u);
  EXPECT_FALSE(test::find_order_violation(system.deliveries()).has_value());

  // Every old-epoch message reached exactly one membership snapshot: the
  // old set if it was sequenced before the fence, the new set after.
  const std::vector<NodeId> old_ga{N(0), N(1), N(2)};
  const std::vector<NodeId> new_ga{N(0), N(1), N(2), N(7)};
  const std::vector<NodeId> old_gb{N(1), N(2), N(3), N(4)};
  const std::vector<NodeId> new_gb{N(1), N(2), N(4)};
  for (std::uint64_t p = 1; p <= 3; ++p) {
    const auto r = receivers_of(system.deliveries(), p);
    EXPECT_TRUE(r == old_ga || r == new_ga) << "payload " << p;
  }
  for (std::uint64_t p = 4; p <= 6; ++p) {
    const auto r = receivers_of(system.deliveries(), p);
    EXPECT_TRUE(r == old_gb || r == new_gb) << "payload " << p;
  }
  // Post-cutover traffic reaches exactly the new membership.
  EXPECT_EQ(receivers_of(system.deliveries(), 100), new_ga);
  EXPECT_EQ(receivers_of(system.deliveries(), 101), new_gb);
  EXPECT_EQ(receivers_of(system.deliveries(), 103),
            (std::vector<NodeId>{N(10), N(11)}));

  // The removed group's pre-cutover message either drained to the old
  // members or lost the race to the FIN fence and was rejected at the
  // closed ingress — never half-delivered.
  const auto r8 = receivers_of(system.deliveries(), 8);
  EXPECT_TRUE(r8 == (std::vector<NodeId>{N(12), N(13)}) ||
              (r8.empty() && system.record(removed_msg).rejected))
      << "removed-group message half-delivered";
  EXPECT_THROW(system.publish(N(12), gr, 9), CheckFailure)
      << "removed group's sequence space is closed";

  // The untouched group never saw the transition: delivered in publish
  // order, never held at a gate.
  EXPECT_EQ(receivers_of(system.deliveries(), 7),
            (std::vector<NodeId>{N(8), N(9)}));
  EXPECT_EQ(receivers_of(system.deliveries(), 102),
            (std::vector<NodeId>{N(8), N(9)}));
  const auto held = system.network().gate_held_by_group();
  EXPECT_EQ(held[gu.value()], 0u) << "untouched group stalled by cutover";

  // The cut-over system keeps running: next epoch, next transition.
  const auto second = system.reconfigure_async(
      {PubSubSystem::MembershipChange::leave(ga, N(7))});
  system.publish(N(0), ga, 200);
  system.run();
  EXPECT_FALSE(system.transition_active());
  EXPECT_EQ(receivers_of(system.deliveries(), 200), old_ga);
  EXPECT_EQ(second.report.groups_refenced, 2u)
      << "ga and its component-mate gb both cut over";
  EXPECT_FALSE(test::find_order_violation(system.deliveries()).has_value());
}

struct ChurnRun {
  std::vector<Delivery> log;
  std::vector<std::size_t> gate_held;
  std::vector<GroupId> groups;   // ga, gb, gu, gv, gw, gx
  std::vector<GroupId> created;
};

// One mid-burst churn scenario, either zero-downtime (reconfigure_async
// with the first burst still pending) or stop-the-world (drain, rebuild).
// Six initial groups span four overlap components, so a 4-shard engine
// really gets four units.
ChurnRun run_churn(std::size_t shards, bool async) {
  auto config = test::small_config(142);
  config.shards = shards;
  PubSubSystem system(config);
  ChurnRun out;
  // ga-gb and gu-gv are genuine overlap pairs (two shared subscribers
  // each): the reconfigured component and the untouched component both
  // carry cross-group stamps.
  const GroupId ga = system.create_group({N(0), N(1), N(2)});
  const GroupId gb = system.create_group({N(1), N(2), N(3), N(4)});
  const GroupId gu = system.create_group({N(8), N(9), N(10)});
  const GroupId gv = system.create_group({N(9), N(10), N(11)});
  const GroupId gw = system.create_group({N(12), N(13)});
  const GroupId gx = system.create_group({N(14), N(15)});
  out.groups = {ga, gb, gu, gv, gw, gx};

  // Burst 1. One sender per untouched group, so its per-group delivery
  // order is its publish order in every variant.
  system.publish(N(0), ga, 1);
  system.publish(N(0), ga, 2);
  system.publish(N(4), gb, 3);
  system.publish(N(4), gb, 4);
  system.publish(N(8), gu, 5);
  system.publish(N(8), gu, 6);
  system.publish(N(11), gv, 7);
  system.publish(N(12), gw, 8);
  system.publish(N(14), gx, 9);

  std::vector<PubSubSystem::MembershipChange> batch;
  batch.push_back(PubSubSystem::MembershipChange::join(ga, N(5)));
  batch.push_back(PubSubSystem::MembershipChange::leave(gb, N(3)));
  batch.push_back(PubSubSystem::MembershipChange::create({N(5), N(6), N(7)}));
  if (async) {
    // Mid-burst: burst 1 is still queued/in flight when the cutover lands.
    out.created = system.reconfigure_async(std::move(batch)).created;
  } else {
    system.run();
    out.created = system.reconfigure(std::move(batch));
  }

  // Burst 2, in the new epoch.
  system.publish(N(5), ga, 101);
  system.publish(N(2), gb, 102);
  system.publish(N(8), gu, 103);
  system.publish(N(11), gv, 104);
  system.publish(N(12), gw, 105);
  system.publish(N(14), gx, 106);
  system.publish(N(6), out.created[0], 107);
  system.run();

  EXPECT_FALSE(system.transition_active());
  EXPECT_EQ(system.network().buffered_at_receivers(), 0u);
  EXPECT_FALSE(test::find_order_violation(system.deliveries()).has_value());
  out.log = system.deliveries();
  out.gate_held = system.network().gate_held_by_group();
  return out;
}

TEST(ReconfigureAsync, ShardedMidBurstMatchesStopTheWorldForUntouchedGroups) {
  // The satellite scenario: reconfigure mid-burst at 1/2/4 shards (plus the
  // single-threaded path) and hold the async runs against the
  // stop-the-world rebuild — untouched groups must behave identically, and
  // the sharded log must stay byte-identical across shard counts even with
  // a cutover in the middle.
  const ChurnRun sync1 = run_churn(1, /*async=*/false);
  const ChurnRun async0 = run_churn(0, /*async=*/true);
  const ChurnRun async1 = run_churn(1, /*async=*/true);
  const ChurnRun async2 = run_churn(2, /*async=*/true);
  const ChurnRun async4 = run_churn(4, /*async=*/true);

  // Byte-identical merge across shard counts, cutover included.
  ASSERT_EQ(async1.log.size(), async2.log.size());
  ASSERT_EQ(async1.log.size(), async4.log.size());
  for (std::size_t i = 0; i < async1.log.size(); ++i) {
    for (const ChurnRun* other : {&async2, &async4}) {
      const Delivery& a = async1.log[i];
      const Delivery& b = other->log[i];
      EXPECT_EQ(a.receiver, b.receiver);
      EXPECT_EQ(a.message, b.message);
      EXPECT_EQ(a.group, b.group);
      EXPECT_EQ(a.payload, b.payload);
      EXPECT_EQ(a.delivered_at, b.delivered_at);
    }
  }

  // Untouched groups (gu, gv, gw, gx with their subscribers): per-receiver
  // per-group traces match the stop-the-world result in every mode, and no
  // gate ever held one of their messages.
  for (const ChurnRun* run : {&async0, &async1, &async2, &async4}) {
    for (std::size_t gi = 2; gi < run->groups.size(); ++gi) {
      const GroupId g = run->groups[gi];
      for (unsigned n = 8; n <= 15; ++n) {
        EXPECT_EQ(group_trace(run->log, N(n), g),
                  group_trace(sync1.log, N(n), g))
            << "untouched group " << g << " diverged at node " << n;
      }
      EXPECT_EQ(run->gate_held[g.value()], 0u)
          << "untouched group " << g << " stalled by the cutover";
    }
  }

  // The async cutover lands mid-burst, so burst 1 of the *affected* groups
  // is sequenced post-fence and reaches the new membership; burst 2 too.
  const std::vector<NodeId> new_ga{N(0), N(1), N(2), N(5)};
  const std::vector<NodeId> new_gb{N(1), N(2), N(4)};
  for (const ChurnRun* run : {&async0, &async1, &async2, &async4}) {
    for (const std::uint64_t p : {1u, 2u, 101u}) {
      EXPECT_EQ(receivers_of(run->log, p), new_ga) << "payload " << p;
    }
    for (const std::uint64_t p : {3u, 4u, 102u}) {
      EXPECT_EQ(receivers_of(run->log, p), new_gb) << "payload " << p;
    }
    EXPECT_EQ(receivers_of(run->log, 107),
              (std::vector<NodeId>{N(5), N(6), N(7)}));
  }
  // Stop-the-world sequenced burst 1 pre-change, under the old membership.
  EXPECT_EQ(receivers_of(sync1.log, 1),
            (std::vector<NodeId>{N(0), N(1), N(2)}));
  EXPECT_EQ(receivers_of(sync1.log, 3),
            (std::vector<NodeId>{N(1), N(2), N(3), N(4)}));
}

TEST(Dot, RendersAtomsEdgesAndPaths) {
  PubSubSystem system(test::small_config(94));
  system.create_group({N(0), N(1), N(2), N(3)});
  system.create_group({N(0), N(1), N(4), N(5)});
  system.create_group({N(2), N(3), N(4), N(5)});
  const std::string dot =
      seqgraph::to_dot(system.graph(), system.membership());
  EXPECT_NE(dot.find("digraph sequencing"), std::string::npos);
  EXPECT_NE(dot.find("Q0"), std::string::npos);
  EXPECT_NE(dot.find("label=\"g0\""), std::string::npos);
  // Three overlap atoms, chain of two undirected edges.
  EXPECT_NE(dot.find("dir=none"), std::string::npos);
  EXPECT_EQ(dot.find("cluster_m"), std::string::npos)
      << "no machine clusters without placement info";
}

TEST(Dot, MachineClustersWhenPlacementGiven) {
  PubSubSystem system(test::small_config(95));
  system.create_group({N(0), N(1), N(2)});
  system.create_group({N(1), N(2), N(3)});
  std::vector<std::size_t> machines(system.graph().num_atoms());
  for (const auto& atom : system.graph().atoms()) {
    machines[atom.id.value()] =
        system.colocation().node_of(atom.id).value();
  }
  const std::string dot =
      seqgraph::to_dot(system.graph(), system.membership(), &machines);
  EXPECT_NE(dot.find("cluster_m"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(Dot, IngressOnlyAtomsLabelled) {
  PubSubSystem system(test::small_config(96));
  system.create_group({N(0), N(1)});
  const std::string dot =
      seqgraph::to_dot(system.graph(), system.membership());
  EXPECT_NE(dot.find("ingress g0"), std::string::npos);
}

}  // namespace
}  // namespace decseq::pubsub
