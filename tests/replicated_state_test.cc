#include <gtest/gtest.h>

#include <map>

#include "app/replicated_state.h"
#include "tests/test_util.h"

namespace decseq::app {
namespace {

using test::N;

/// Toy state: a key-value map of last-writer-wins registers keyed by the
/// top payload bits. Order-sensitive: two replicas that apply the same
/// writes in different orders end with different values.
struct Registers {
  std::map<std::uint64_t, std::uint64_t> values;
};

ReplicaSet<Registers> make_set(pubsub::PubSubSystem& system) {
  return ReplicaSet<Registers>(
      system,
      [](Registers& s, const pubsub::Delivery& d) {
        s.values[d.payload >> 32] = d.payload & 0xffffffffULL;
      },
      [](const Registers& s) {
        std::uint64_t h = 14695981039346656037ULL;
        for (const auto& [k, v] : s.values) {
          h = fnv1a(&k, sizeof(k), h);
          h = fnv1a(&v, sizeof(v), h);
        }
        return h;
      });
}

std::uint64_t write(std::uint64_t reg, std::uint64_t value) {
  return (reg << 32) | value;
}

TEST(ReplicatedState, ReplicasWithSameSubscriptionsConverge) {
  pubsub::PubSubSystem system(test::small_config(121));
  const GroupId g0 = system.create_group({N(0), N(1), N(2), N(3)});
  const GroupId g1 = system.create_group({N(2), N(3), N(4), N(5)});

  auto replicas = make_set(system);
  for (unsigned n = 0; n < 6; ++n) replicas.add_replica(N(n));

  // Conflicting writes to the same registers from both sides.
  for (std::uint64_t i = 0; i < 10; ++i) {
    system.publish(N(0), g0, write(7, 100 + i));
    system.publish(N(4), g1, write(7, 200 + i));
    system.publish(N(0), g0, write(8, i));
  }
  system.run();
  replicas.sync();

  EXPECT_FALSE(replicas.find_divergence().has_value());
  // Nodes 2 and 3 (both groups) applied identical write sequences.
  EXPECT_EQ(replicas.digest_of(N(2)), replicas.digest_of(N(3)));
  // Nodes 0 and 1 (g0 only) agree with each other too.
  EXPECT_EQ(replicas.digest_of(N(0)), replicas.digest_of(N(1)));
  // But a g0-only replica need not match a both-groups replica.
  EXPECT_EQ(replicas.state_of(N(0)).values.at(8),
            replicas.state_of(N(2)).values.at(8));
}

TEST(ReplicatedState, SyncIsIncremental) {
  pubsub::PubSubSystem system(test::small_config(122));
  const GroupId g = system.create_group({N(0), N(1)});
  auto replicas = make_set(system);
  replicas.add_replica(N(0));
  replicas.add_replica(N(1));

  system.publish(N(0), g, write(1, 10));
  system.run();
  replicas.sync();
  EXPECT_EQ(replicas.state_of(N(1)).values.at(1), 10u);

  system.publish(N(1), g, write(1, 20));
  system.run();
  replicas.sync();
  EXPECT_EQ(replicas.state_of(N(1)).values.at(1), 20u);
  EXPECT_FALSE(replicas.find_divergence().has_value());
}

TEST(ReplicatedState, LateReplicaMissesHistory) {
  pubsub::PubSubSystem system(test::small_config(123));
  const GroupId g = system.create_group({N(0), N(1)});
  auto replicas = make_set(system);
  replicas.add_replica(N(0));
  system.publish(N(0), g, write(1, 10));
  system.run();
  replicas.sync();
  // N(1)'s replica created after the sync: it replays from the log cursor,
  // which has already passed — so it stays empty (documented semantics).
  replicas.add_replica(N(1));
  replicas.sync();
  EXPECT_TRUE(replicas.state_of(N(1)).values.empty());
}

TEST(ReplicatedState, DivergenceDetectorFires) {
  // Feed one replica a tampered view by applying an extra delivery by hand:
  // the detector must notice two same-subscription replicas disagreeing.
  pubsub::PubSubSystem system(test::small_config(124));
  const GroupId g = system.create_group({N(0), N(1)});
  auto replicas = make_set(system);
  replicas.add_replica(N(0));
  replicas.add_replica(N(1));
  system.publish(N(0), g, write(3, 30));
  system.run();
  replicas.sync();
  ASSERT_FALSE(replicas.find_divergence().has_value());

  // Simulate corruption through a second ReplicaSet whose apply flips
  // values for node 1 only.
  auto corrupted = ReplicaSet<Registers>(
      system,
      [](Registers& s, const pubsub::Delivery& d) {
        const std::uint64_t flip = d.receiver == N(1) ? 1 : 0;
        s.values[d.payload >> 32] = (d.payload & 0xffffffffULL) ^ flip;
      },
      [](const Registers& s) {
        std::uint64_t h = 14695981039346656037ULL;
        for (const auto& [k, v] : s.values) {
          h = fnv1a(&k, sizeof(k), h);
          h = fnv1a(&v, sizeof(v), h);
        }
        return h;
      });
  corrupted.add_replica(N(0));
  corrupted.add_replica(N(1));
  corrupted.sync();
  const auto divergence = corrupted.find_divergence();
  ASSERT_TRUE(divergence.has_value());
}

}  // namespace
}  // namespace decseq::app
