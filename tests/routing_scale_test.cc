// Differential tests pinning the scaled routing control plane to the legacy
// implementations it replaced (PR "million-host control plane"): the
// CSR/arena sequencing-graph builder (full and delta), the inverted-index
// overlap co-location, and the closed-form machine assignment must produce
// *identical* output — same atoms, paths, labels, machines — and consume
// identical RNG draw sequences, over 200 seeds of randomized workloads.
#include <gtest/gtest.h>

#include <vector>

#include "membership/generators.h"
#include "membership/membership.h"
#include "membership/overlap.h"
#include "placement/assignment.h"
#include "placement/colocation.h"
#include "placement/legacy.h"
#include "seqgraph/graph.h"
#include "seqgraph/legacy.h"
#include "tests/test_util.h"
#include "topology/hosts.h"
#include "topology/transit_stub.h"

namespace decseq {
namespace {

using membership::GroupMembership;
using membership::OverlapIndex;
using seqgraph::BuildOptions;
using seqgraph::BuildStrategy;
using seqgraph::SequencingGraph;

constexpr int kSeeds = 200;

void expect_same_graph(const SequencingGraph& a, const SequencingGraph& b,
                       int seed) {
  ASSERT_EQ(a.num_atoms(), b.num_atoms()) << "seed " << seed;
  for (std::size_t i = 0; i < a.num_atoms(); ++i) {
    const seqgraph::Atom& x = a.atoms()[i];
    const seqgraph::Atom& y = b.atoms()[i];
    ASSERT_EQ(x.id, y.id) << "seed " << seed << " atom " << i;
    ASSERT_EQ(x.group_a, y.group_a) << "seed " << seed << " atom " << i;
    ASSERT_EQ(x.group_b, y.group_b) << "seed " << seed << " atom " << i;
    ASSERT_EQ(x.overlap_members, y.overlap_members)
        << "seed " << seed << " atom " << i;
    ASSERT_EQ(x.overlap_index, y.overlap_index)
        << "seed " << seed << " atom " << i;
    ASSERT_EQ(a.is_retired(x.id), b.is_retired(y.id))
        << "seed " << seed << " atom " << i;
    ASSERT_EQ(a.tree_neighbors(x.id), b.tree_neighbors(y.id))
        << "seed " << seed << " atom " << i;
  }
  ASSERT_EQ(a.groups(), b.groups()) << "seed " << seed;
  for (const GroupId g : a.groups()) {
    ASSERT_EQ(a.path(g), b.path(g)) << "seed " << seed << " group " << g;
  }
  EXPECT_EQ(a.num_overlap_atoms(), b.num_overlap_atoms()) << "seed " << seed;
  EXPECT_EQ(a.num_retired_atoms(), b.num_retired_atoms()) << "seed " << seed;
  EXPECT_EQ(a.tree_components(), b.tree_components()) << "seed " << seed;
  EXPECT_EQ(a.chain_components(), b.chain_components()) << "seed " << seed;
}

GroupMembership workload(int seed) {
  Rng rng(static_cast<std::uint64_t>(seed) * 0x9e3779b9u + 1);
  return membership::zipf_membership(
      {.num_nodes = 24 + static_cast<std::size_t>(seed % 5) * 8,
       .num_groups = 6 + static_cast<std::size_t>(seed % 4) * 2,
       .scale = 1.0 + 0.25 * static_cast<double>(seed % 3)},
      rng);
}

BuildOptions options_for(int seed) {
  BuildOptions options;
  switch (seed % 3) {
    case 0: options.strategy = BuildStrategy::kChain; break;
    case 1: options.strategy = BuildStrategy::kChainUnordered; break;
    default: options.strategy = BuildStrategy::kGreedyTree; break;
  }
  return options;
}

TEST(RoutingScale, FullBuildMatchesLegacyOver200Seeds) {
  // One scratch shared across all seeds: reuse across workloads of
  // different shapes must not leak state between compiles.
  seqgraph::BuildScratch scratch;
  for (int seed = 0; seed < kSeeds; ++seed) {
    const GroupMembership m = workload(seed);
    const OverlapIndex idx(m);
    BuildOptions options = options_for(seed);
    std::vector<std::size_t> labels;
    if (seed % 2 == 0) {
      Rng label_rng(static_cast<std::uint64_t>(seed) + 77);
      labels = placement::colocate_overlaps(idx, {}, label_rng);
      options.colocation_labels = &labels;
    }
    BuildOptions new_options = options;
    if (seed % 4 < 2) new_options.scratch = &scratch;
    const SequencingGraph got =
        seqgraph::build_sequencing_graph(m, idx, new_options);
    const SequencingGraph want =
        seqgraph::legacy_build_sequencing_graph(m, idx, options);
    expect_same_graph(got, want, seed);
  }
}

TEST(RoutingScale, DeltaBuildMatchesLegacyMidReconfigure) {
  seqgraph::BuildScratch scratch;
  for (int seed = 0; seed < kSeeds; ++seed) {
    GroupMembership m = workload(seed);
    const OverlapIndex idx(m);
    BuildOptions options = options_for(seed);
    BuildOptions new_options = options;
    new_options.scratch = &scratch;
    const SequencingGraph base =
        seqgraph::build_sequencing_graph(m, idx, new_options);
    const SequencingGraph legacy_base =
        seqgraph::legacy_build_sequencing_graph(m, idx, options);
    expect_same_graph(base, legacy_base, seed);

    // One membership mutation, then the delta rebuild both ways — the path
    // a live reconfigure_async compiles mid-transition.
    Rng rng(static_cast<std::uint64_t>(seed) + 31);
    const auto live = m.live_groups();
    std::vector<GroupId> dirty;
    const std::size_t kind = rng.next_below(3);
    if (kind == 0 || live.empty()) {
      std::vector<NodeId> members;
      const std::size_t size = 2 + rng.next_below(3);
      while (members.size() < size) {
        const NodeId cand(static_cast<NodeId::underlying_type>(
            rng.next_below(m.num_nodes())));
        bool dup = false;
        for (const NodeId v : members) dup = dup || v == cand;
        if (!dup) members.push_back(cand);
      }
      dirty.push_back(m.add_group(std::move(members)));
    } else if (kind == 1) {
      const GroupId g = live[rng.next_below(live.size())];
      m.remove_group(g);
      dirty.push_back(g);
    } else {
      const GroupId g = live[rng.next_below(live.size())];
      NodeId joiner;
      for (std::size_t probe = 0; probe < m.num_nodes(); ++probe) {
        const NodeId cand(static_cast<NodeId::underlying_type>(probe));
        if (!m.is_member(g, cand)) {
          joiner = cand;
          break;
        }
      }
      if (!joiner.valid()) continue;  // the group spans every node
      m.add_member(g, joiner);
      dirty.push_back(g);
    }

    const OverlapIndex new_idx(idx, m, dirty);
    seqgraph::DeltaBuildStats got_stats, want_stats;
    const SequencingGraph got = seqgraph::build_sequencing_graph_delta(
        base, idx, m, new_idx, dirty, new_options, &got_stats);
    const SequencingGraph want = seqgraph::legacy_build_sequencing_graph_delta(
        legacy_base, idx, m, new_idx, dirty, options, &want_stats);
    expect_same_graph(got, want, seed);
    EXPECT_EQ(got_stats.affected_groups, want_stats.affected_groups)
        << "seed " << seed;
    EXPECT_EQ(got_stats.atoms_created, want_stats.atoms_created)
        << "seed " << seed;
    EXPECT_EQ(got_stats.atoms_retired, want_stats.atoms_retired)
        << "seed " << seed;
  }
}

TEST(RoutingScale, ColocationMatchesLegacyOver200Seeds) {
  constexpr placement::ColocationMode kModes[] = {
      placement::ColocationMode::kNone, placement::ColocationMode::kSubsetOnly,
      placement::ColocationMode::kFull};
  for (int seed = 0; seed < kSeeds; ++seed) {
    const GroupMembership m = workload(seed);
    const OverlapIndex idx(m);
    const placement::ColocationOptions options{kModes[seed % 3]};
    Rng got_rng(static_cast<std::uint64_t>(seed) + 5);
    Rng want_rng(static_cast<std::uint64_t>(seed) + 5);
    const auto got = placement::colocate_overlaps(idx, options, got_rng);
    const auto want =
        placement::legacy_colocate_overlaps(idx, options, want_rng);
    ASSERT_EQ(got, want) << "seed " << seed;
    // Both must consume the exact same RNG draw sequence: the streams stay
    // aligned for everything the pipeline draws afterwards.
    EXPECT_EQ(got_rng(), want_rng()) << "seed " << seed;
  }
}

TEST(RoutingScale, AssignmentMatchesLegacyOver200Seeds) {
  Rng topo_rng(11);
  const auto topo =
      topology::generate_transit_stub(test::small_topology(), topo_rng);
  const auto hosts = topology::attach_hosts(
      topo, {.num_hosts = 64, .num_clusters = 8}, topo_rng);
  for (int seed = 0; seed < kSeeds; ++seed) {
    const GroupMembership m = workload(seed);
    const OverlapIndex idx(m);
    BuildOptions options = options_for(seed);
    Rng label_rng(static_cast<std::uint64_t>(seed) + 13);
    const auto labels = placement::colocate_overlaps(idx, {}, label_rng);
    options.colocation_labels = &labels;
    const SequencingGraph graph =
        seqgraph::build_sequencing_graph(m, idx, options);
    const placement::Colocation colocation =
        placement::apply_labels(graph, labels);
    placement::AssignmentOptions assign_options;
    assign_options.mode = seed % 4 == 3 ? placement::AssignmentMode::kAllRandom
                                        : placement::AssignmentMode::kPaperHeuristic;
    assign_options.seed = seed % 2 == 0 ? placement::SeedPolicy::kGroupMember
                                        : placement::SeedPolicy::kRandomRouter;
    Rng got_rng(static_cast<std::uint64_t>(seed) + 19);
    Rng want_rng(static_cast<std::uint64_t>(seed) + 19);
    const placement::Assignment got =
        placement::assign_machines(graph, colocation, m, hosts, topo.graph,
                                   assign_options, got_rng);
    const placement::Assignment want = placement::legacy_assign_machines(
        graph, colocation, m, hosts, topo.graph, assign_options, want_rng);
    ASSERT_EQ(got.num_nodes(), want.num_nodes()) << "seed " << seed;
    for (std::size_t n = 0; n < got.num_nodes(); ++n) {
      const SeqNodeId id(static_cast<SeqNodeId::underlying_type>(n));
      ASSERT_EQ(got.assigned(id), want.assigned(id))
          << "seed " << seed << " node " << n;
      if (got.assigned(id)) {
        ASSERT_EQ(got.machine_of(id), want.machine_of(id))
            << "seed " << seed << " node " << n;
      }
    }
    EXPECT_EQ(got_rng(), want_rng()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace decseq
