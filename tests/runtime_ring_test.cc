// Lock-free rings (runtime/ring.h): single-threaded contract tests plus
// two-thread stress runs. The stress tests are the ones ThreadSanitizer
// cares about — they hammer the producer/consumer hand-off so a missing
// release/acquire pair shows up as a data race or a corrupted sequence.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "runtime/ring.h"

namespace decseq::runtime {
namespace {

TEST(RingCapacity, RoundsUpToPowerOfTwo) {
  EXPECT_EQ(ring_capacity_for(0), 2u);
  EXPECT_EQ(ring_capacity_for(1), 2u);
  EXPECT_EQ(ring_capacity_for(2), 2u);
  EXPECT_EQ(ring_capacity_for(3), 4u);
  EXPECT_EQ(ring_capacity_for(1000), 1024u);
  EXPECT_EQ(ring_capacity_for(1024), 1024u);
}

TEST(SpscRing, FifoAndFull) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.push(i));
  EXPECT_FALSE(ring.push(99)) << "full ring must reject, not overwrite";
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.pop(out));
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, WrapsAroundManyLaps) {
  SpscRing<std::uint64_t> ring(8);
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.push(i));
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out, i);
  }
}

TEST(SpscRing, MovesElements) {
  SpscRing<std::vector<int>> ring(2);
  ASSERT_TRUE(ring.push(std::vector<int>{1, 2, 3}));
  std::vector<int> out;
  ASSERT_TRUE(ring.pop(out));
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(MpscRing, FifoAndFullSingleProducer) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.push(i));
  EXPECT_FALSE(ring.push(99));
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.pop(out));
  EXPECT_TRUE(ring.empty());
}

TEST(MpscRing, WrapsAroundManyLaps) {
  MpscRing<std::uint64_t> ring(8);
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.push(i));
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out, i);
  }
}

// Two threads, small ring, constant wrap pressure: the consumer must see
// every element exactly once and in FIFO order.
TEST(SpscRingStress, TwoThreadsPreserveFifo) {
  constexpr std::uint64_t kCount = 200'000;
  SpscRing<std::uint64_t> ring(64);
  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!ring.push(i)) std::this_thread::yield();
    }
  });
  std::uint64_t expected = 0;
  while (expected < kCount) {
    std::uint64_t out = 0;
    if (ring.pop(out)) {
      ASSERT_EQ(out, expected) << "reordered or duplicated element";
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// Several producers race for tickets; the consumer checks that each
// producer's stream stays FIFO and that nothing is lost or duplicated.
TEST(MpscRingStress, FourProducersPreservePerProducerFifo) {
  constexpr std::uint64_t kPerProducer = 50'000;
  constexpr std::uint64_t kProducers = 4;
  MpscRing<std::uint64_t> ring(64);
  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t tagged = (p << 56) | i;
        while (!ring.push(tagged)) std::this_thread::yield();
      }
    });
  }
  std::vector<std::uint64_t> next(kProducers, 0);
  std::uint64_t seen = 0;
  while (seen < kPerProducer * kProducers) {
    std::uint64_t out = 0;
    if (ring.pop(out)) {
      const std::uint64_t p = out >> 56;
      const std::uint64_t i = out & ((1ull << 56) - 1);
      ASSERT_LT(p, kProducers);
      ASSERT_EQ(i, next[p]) << "producer " << p << " stream reordered";
      ++next[p];
      ++seen;
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace decseq::runtime
