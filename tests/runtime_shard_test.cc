// Sharded runtime (runtime/shard_plan.h, runtime/sharded_engine.h, the
// `shards` SystemConfig knob): the headline guarantee is that the delivery
// log under N worker shards is byte-identical to the single-shard run for
// every N, and — on scenarios where the legacy path draws the same RNG
// stream (no channel loss) — identical to the classic single-threaded
// runtime too. Scenarios cover overlapping groups, island groups, causal
// chains, FIN termination, sequencer crash/recovery, publisher crashes,
// lossy channels, and membership reconfiguration.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "metrics/logio.h"
#include "pubsub/system.h"
#include "runtime/shard_plan.h"
#include "tests/test_util.h"

namespace decseq {
namespace {

using pubsub::PubSubSystem;
using test::N;

// --- ShardPlan structure -------------------------------------------------

/// Two overlap chains plus one island: units must be {g0,g1}, {g2,g3},
/// {g4} regardless of the shard count.
PubSubSystem make_three_unit_system(std::uint64_t seed = 11) {
  PubSubSystem system(test::small_config(seed, /*num_hosts=*/12));
  // Double overlaps need >= 2 shared members (membership/overlap.h).
  system.create_groups({{N(0), N(1), N(2), N(3)},
                        {N(2), N(3), N(4), N(5)},
                        {N(6), N(7), N(8)},
                        {N(7), N(8), N(9)},
                        {N(10), N(11)}});
  return system;
}

TEST(ShardPlan, UnitsAreOverlapComponents) {
  auto system = make_three_unit_system();
  const auto plan = runtime::build_shard_plan(system.graph(),
                                              system.membership(), 4);
  ASSERT_EQ(plan.num_units, 3u);
  EXPECT_EQ(plan.unit(GroupId(0)), plan.unit(GroupId(1)))
      << "overlapping groups share a unit";
  EXPECT_EQ(plan.unit(GroupId(2)), plan.unit(GroupId(3)));
  EXPECT_NE(plan.unit(GroupId(0)), plan.unit(GroupId(2)));
  EXPECT_NE(plan.unit(GroupId(0)), plan.unit(GroupId(4)));
  EXPECT_NE(plan.unit(GroupId(2)), plan.unit(GroupId(4)));
  // Dense ids in ascending-group-id discovery order, keyed by the smallest
  // group id of the unit.
  EXPECT_EQ(plan.unit(GroupId(0)), 0u);
  EXPECT_EQ(plan.unit(GroupId(2)), 1u);
  EXPECT_EQ(plan.unit(GroupId(4)), 2u);
  EXPECT_EQ(plan.unit_key, (std::vector<std::uint32_t>{0, 2, 4}));
}

TEST(ShardPlan, UnitIdsAreShardCountInvariant) {
  auto system = make_three_unit_system();
  const auto one = runtime::build_shard_plan(system.graph(),
                                             system.membership(), 1);
  const auto eight = runtime::build_shard_plan(system.graph(),
                                               system.membership(), 8);
  EXPECT_EQ(one.unit_of_group, eight.unit_of_group);
  EXPECT_EQ(one.unit_of_atom, eight.unit_of_atom);
  EXPECT_EQ(one.unit_key, eight.unit_key);
}

TEST(ShardPlan, ShardCountClampsToUnits) {
  auto system = make_three_unit_system();
  const auto plan = runtime::build_shard_plan(system.graph(),
                                              system.membership(), 8);
  EXPECT_EQ(plan.num_shards, 3u) << "more shards than units is pointless";
  for (const std::uint32_t s : plan.shard_of_unit) EXPECT_LT(s, 3u);
}

TEST(ShardPlan, EveryShardGetsWork) {
  auto system = make_three_unit_system();
  const auto plan = runtime::build_shard_plan(system.graph(),
                                              system.membership(), 2);
  ASSERT_EQ(plan.num_shards, 2u);
  std::vector<bool> used(plan.num_shards, false);
  for (const std::uint32_t s : plan.shard_of_unit) used[s] = true;
  for (std::size_t s = 0; s < used.size(); ++s) {
    EXPECT_TRUE(used[s]) << "LPT left shard " << s << " empty";
  }
}

// --- End-to-end determinism ----------------------------------------------

struct ScenarioOptions {
  double loss = 0.0;
  bool causal = false;
  bool fin = false;
  bool crash_sequencer = false;
  bool crash_publisher = false;
  bool reconfigure = false;
};

/// The workload: five groups in three overlap units, 40 scattered
/// publishes, and whatever faults the options switch on. Returns the
/// serialized delivery log (byte-comparable across runs).
std::string run_scenario(std::uint64_t seed, std::size_t shards,
                         const ScenarioOptions& opt) {
  auto config = test::small_config(seed, /*num_hosts=*/12);
  config.shards = shards;
  config.network.channel.loss_probability = opt.loss;
  config.network.channel.retransmit_timeout_ms = 40.0;
  config.network.channel.max_retransmits = 1000;
  PubSubSystem system(config);
  const auto groups = system.create_groups({{N(0), N(1), N(2), N(3)},
                                            {N(2), N(3), N(4), N(5)},
                                            {N(6), N(7), N(8)},
                                            {N(7), N(8), N(9)},
                                            {N(10), N(11)}});
  auto& sim = system.simulator();
  Rng rng(seed + 5);
  for (int i = 0; i < 40; ++i) {
    const GroupId g = groups[rng.next_below(groups.size())];
    const NodeId sender = rng.pick(system.membership().members(g));
    double at = rng.next_double() * 400.0;
    // Publishing to a terminated group is a contract violation; keep the
    // FIN'd group's traffic before its termination instant.
    if (opt.fin && g == groups[3]) at = rng.next_double() * 140.0;
    sim.schedule_at(at, [&system, sender, g, i] {
      system.publish(sender, g, static_cast<std::uint64_t>(i));
    });
  }
  if (opt.causal) {
    // Chains on two different units; each release gates the next publish
    // on the previous delivery, forcing the lockstep fence protocol.
    for (std::uint64_t i = 0; i < 4; ++i) {
      system.publish_causal(N(3), groups[0], 1000 + i);
      system.publish_causal(N(8), groups[2], 2000 + i);
    }
  }
  if (opt.fin) {
    sim.schedule_at(150.0,
                    [&system, g = groups[3]] { system.terminate_group(g, N(8)); });
  }
  if (opt.crash_sequencer) {
    const SeqNodeId ingress =
        system.colocation().node_of(system.graph().path(groups[0]).front());
    sim.schedule_at(50.0,
                    [&system, ingress] { system.fail_sequencing_node(ingress); });
    sim.schedule_at(250.0, [&system, ingress] {
      system.recover_sequencing_node(ingress);
    });
  }
  if (opt.crash_publisher) {
    sim.schedule_at(100.0, [&system] { system.fail_publisher(N(0)); });
    sim.schedule_at(300.0, [&system] { system.recover_publisher(N(0)); });
  }
  system.run();
  if (opt.reconfigure) {
    // Epoch boundary: rebuild the graph (and the engine) live, then push a
    // second wave of traffic through the new epoch.
    system.reconfigure({PubSubSystem::MembershipChange::join(groups[4], N(9)),
                        PubSubSystem::MembershipChange::create({N(1), N(10)})});
    for (int i = 0; i < 10; ++i) {
      GroupId g = groups[rng.next_below(groups.size())];
      // A FIN'd group is gone after the membership op cleans it up.
      if (opt.fin && g == groups[3]) g = groups[0];
      const NodeId sender = rng.pick(system.membership().members(g));
      system.publish(sender, g, static_cast<std::uint64_t>(100 + i));
    }
    system.run();
  }
  std::stringstream out;
  metrics::write_delivery_log(system.deliveries(), out);
  return out.str();
}

/// Assert logs at shard counts {1, 2, 4} are byte-identical.
void expect_shard_count_invariant(std::uint64_t seed,
                                  const ScenarioOptions& opt) {
  const std::string one = run_scenario(seed, 1, opt);
  EXPECT_GT(one.size(), 100u) << "scenario must actually deliver";
  EXPECT_EQ(one, run_scenario(seed, 2, opt)) << "1 vs 2 shards, seed " << seed;
  EXPECT_EQ(one, run_scenario(seed, 4, opt)) << "1 vs 4 shards, seed " << seed;
}

TEST(ShardedRuntime, PlainTrafficMatchesAcrossShardCounts) {
  for (const std::uint64_t seed : {1ull, 9ull, 42ull}) {
    expect_shard_count_invariant(seed, {});
  }
}

TEST(ShardedRuntime, PlainTrafficMatchesLegacyRuntime) {
  // loss == 0 draws nothing from the channel RNG, so the legacy shared
  // stream and the per-unit streams are indistinguishable — the sharded
  // log must equal the classic single-threaded one byte for byte.
  for (const std::uint64_t seed : {1ull, 9ull, 42ull}) {
    const std::string legacy = run_scenario(seed, 0, {});
    EXPECT_EQ(legacy, run_scenario(seed, 1, {})) << "seed " << seed;
    EXPECT_EQ(legacy, run_scenario(seed, 4, {})) << "seed " << seed;
  }
}

TEST(ShardedRuntime, LossyChannelsMatchAcrossShardCounts) {
  ScenarioOptions opt;
  opt.loss = 0.1;  // exercises the per-unit channel RNG streams
  expect_shard_count_invariant(17, opt);
}

TEST(ShardedRuntime, CausalChainsMatchAcrossShardCounts) {
  ScenarioOptions opt;
  opt.causal = true;
  expect_shard_count_invariant(23, opt);
}

TEST(ShardedRuntime, CausalChainsMatchLegacyRuntime) {
  ScenarioOptions opt;
  opt.causal = true;
  const std::string legacy = run_scenario(23, 0, opt);
  EXPECT_EQ(legacy, run_scenario(23, 1, opt));
  EXPECT_EQ(legacy, run_scenario(23, 4, opt));
}

TEST(ShardedRuntime, FinTerminationMatchesAcrossShardCounts) {
  ScenarioOptions opt;
  opt.fin = true;
  expect_shard_count_invariant(31, opt);
}

TEST(ShardedRuntime, SequencerCrashMatchesAcrossShardCounts) {
  ScenarioOptions opt;
  opt.crash_sequencer = true;
  expect_shard_count_invariant(37, opt);
}

TEST(ShardedRuntime, PublisherCrashMatchesAcrossShardCounts) {
  ScenarioOptions opt;
  opt.crash_publisher = true;
  opt.causal = true;  // exercises the failed-causal chain drop
  expect_shard_count_invariant(41, opt);
}

TEST(ShardedRuntime, ReconfigureMatchesAcrossShardCounts) {
  ScenarioOptions opt;
  opt.reconfigure = true;
  expect_shard_count_invariant(47, opt);
}

TEST(ShardedRuntime, EverythingAtOnceMatchesAcrossShardCounts) {
  ScenarioOptions opt;
  opt.loss = 0.05;
  opt.causal = true;
  opt.fin = true;
  opt.crash_sequencer = true;
  opt.reconfigure = true;
  expect_shard_count_invariant(53, opt);
}

TEST(ShardedRuntime, ShardedLogIsOrderConsistent) {
  ScenarioOptions opt;
  opt.loss = 0.1;
  opt.causal = true;
  auto config = test::small_config(53, /*num_hosts=*/12);
  config.shards = 4;
  config.network.channel.loss_probability = opt.loss;
  config.network.channel.retransmit_timeout_ms = 40.0;
  PubSubSystem system(config);
  const auto groups = system.create_groups({{N(0), N(1), N(2), N(3)},
                                            {N(2), N(3), N(4), N(5)},
                                            {N(6), N(7), N(8)}});
  Rng rng(99);
  for (int i = 0; i < 30; ++i) {
    const GroupId g = groups[rng.next_below(groups.size())];
    system.publish(rng.pick(system.membership().members(g)), g,
                   static_cast<std::uint64_t>(i));
  }
  system.publish_causal(N(3), groups[0], 777);
  system.publish_causal(N(3), groups[0], 778);
  system.run();
  EXPECT_GE(system.deliveries().size(), 30u);
  const auto violation = test::find_order_violation(system.deliveries());
  EXPECT_FALSE(violation.has_value()) << *violation;
}

TEST(ShardedRuntime, EngineIsExposedAndClamped) {
  auto config = test::small_config(7, /*num_hosts=*/12);
  config.shards = 16;
  PubSubSystem system(config);
  system.create_groups({{N(0), N(1)}, {N(2), N(3)}});
  ASSERT_NE(system.engine(), nullptr);
  EXPECT_EQ(system.engine()->num_shards(), 2u) << "clamped to 2 units";
  system.publish(N(0), GroupId(0), 1);
  system.run();
  EXPECT_EQ(system.deliveries().size(), 2u);

  pubsub::PubSubSystem legacy(test::small_config(7, 12));
  EXPECT_EQ(legacy.engine(), nullptr);
}

TEST(ShardedRuntime, IntrospectionMergesAcrossShards) {
  // seqnode_load / deliveries(node) / channel_faults must read the same
  // whether the state lives on one simulator or is merged across shards.
  ScenarioOptions opt;
  opt.loss = 0.0;
  auto build = [&](std::size_t shards) {
    auto config = test::small_config(61, /*num_hosts=*/12);
    config.shards = shards;
    auto system = std::make_unique<PubSubSystem>(config);
    const auto groups = system->create_groups({{N(0), N(1), N(2), N(3)},
                                               {N(2), N(3), N(4), N(5)},
                                               {N(6), N(7), N(8)}});
    Rng rng(5);
    for (int i = 0; i < 20; ++i) {
      const GroupId g = groups[rng.next_below(groups.size())];
      system->publish(rng.pick(system->membership().members(g)), g,
                      static_cast<std::uint64_t>(i));
    }
    system->run();
    return system;
  };
  const auto legacy = build(0);
  const auto sharded = build(4);
  EXPECT_EQ(legacy->network().seqnode_load(), sharded->network().seqnode_load());
  for (unsigned n = 0; n < 12; ++n) {
    EXPECT_EQ(legacy->network().deliveries(N(n)),
              sharded->network().deliveries(N(n)))
        << "node " << n;
  }
  EXPECT_EQ(legacy->network().buffered_at_receivers(),
            sharded->network().buffered_at_receivers());
}

TEST(ShardedRuntime, TracingIsRejectedInShardedMode) {
  auto config = test::small_config(3, /*num_hosts=*/8);
  config.shards = 2;
  PubSubSystem system(config);
  const GroupId g = system.create_group({N(0), N(1)});
  system.network_mutable().tracer().enable();
  EXPECT_THROW(system.publish(N(0), g, 1), CheckFailure);
}

}  // namespace
}  // namespace decseq
