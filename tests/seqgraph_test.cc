#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "membership/generators.h"
#include "membership/overlap.h"
#include "seqgraph/graph.h"
#include "seqgraph/incremental.h"
#include "seqgraph/validator.h"
#include "tests/test_util.h"

namespace decseq::seqgraph {
namespace {

using membership::GroupMembership;
using membership::OverlapIndex;
using test::G;
using test::N;

/// Build + validate helper; returns the graph after asserting invariants.
SequencingGraph build_valid(const GroupMembership& m,
                            const BuildOptions& options = {}) {
  const OverlapIndex idx(m);
  SequencingGraph graph = build_sequencing_graph(m, idx, options);
  const ValidationReport report = validate_sequencing_graph(graph, m, idx);
  EXPECT_TRUE(report.ok);
  for (const auto& e : report.errors) ADD_FAILURE() << e;
  return graph;
}

TEST(SeqGraph, SingleGroupGetsIngressOnlyAtom) {
  const auto m = test::make_membership(4, {{0, 1, 2}});
  const auto graph = build_valid(m);
  EXPECT_EQ(graph.num_atoms(), 1u);
  EXPECT_EQ(graph.num_overlap_atoms(), 0u);
  const auto& path = graph.path(G(0));
  ASSERT_EQ(path.size(), 1u);
  EXPECT_TRUE(graph.atom(path[0]).is_ingress_only());
}

TEST(SeqGraph, TwoOverlappedGroupsShareOneAtom) {
  const auto m = test::make_membership(5, {{0, 1, 2}, {1, 2, 3}});
  const auto graph = build_valid(m);
  EXPECT_EQ(graph.num_overlap_atoms(), 1u);
  EXPECT_EQ(graph.num_atoms(), 1u);  // no ingress-only needed
  EXPECT_EQ(graph.path(G(0)), graph.path(G(1)));
  const Atom& atom = graph.atom(graph.path(G(0))[0]);
  EXPECT_EQ(atom.overlap_members, (std::vector<NodeId>{N(1), N(2)}));
  EXPECT_TRUE(atom.stamps(G(0)));
  EXPECT_TRUE(atom.stamps(G(1)));
}

TEST(SeqGraph, SingleOverlapNeedsNoAtom) {
  // Groups share only node 1: no double overlap, two ingress-only atoms.
  const auto m = test::make_membership(5, {{0, 1}, {1, 2}});
  const auto graph = build_valid(m);
  EXPECT_EQ(graph.num_overlap_atoms(), 0u);
  EXPECT_EQ(graph.num_atoms(), 2u);
}

TEST(SeqGraph, PaperFigure2TriangleIsLoopFree) {
  // The Fig 2 scenario: three groups, three pairwise overlaps. Without C2
  // the atoms would form a cycle; the builder must instead produce a chain
  // where one group's messages transit a foreign atom (Fig 2(b)).
  const auto m = test::make_membership(4, {{0, 1, 3}, {0, 1, 2}, {1, 2, 3}});
  const auto graph = build_valid(m);
  EXPECT_EQ(graph.num_overlap_atoms(), 3u);

  // Exactly one group transits an atom that does not stamp it.
  std::size_t transits = 0;
  for (const GroupId g : graph.groups()) {
    for (const AtomId a : graph.path(g)) {
      if (!graph.atom(a).stamps(g)) ++transits;
    }
  }
  EXPECT_EQ(transits, 1u);
}

TEST(SeqGraph, DisjointComponentsStayDisconnected) {
  const auto m = test::make_membership(
      12, {{0, 1, 2}, {1, 2, 3}, {6, 7, 8}, {7, 8, 9}});
  const auto graph = build_valid(m);
  EXPECT_EQ(graph.num_overlap_atoms(), 2u);
  // The two overlap atoms must not be tree-adjacent.
  for (const Atom& atom : graph.atoms()) {
    EXPECT_TRUE(graph.tree_neighbors(atom.id).empty());
  }
}

TEST(SeqGraph, StampingAtomsMatchOverlapCount) {
  const auto m = test::make_membership(
      8, {{0, 1, 2, 3}, {0, 1, 4, 5}, {2, 3, 4, 5}, {0, 2, 4, 6}});
  const OverlapIndex idx(m);
  const auto graph = build_valid(m);
  for (const GroupId g : graph.groups()) {
    EXPECT_EQ(graph.stamping_atoms(g).size(), idx.overlaps_of(g).size())
        << "group " << g;
  }
}

TEST(SeqGraph, PathsAreContiguousChainSegments) {
  const auto m = test::make_membership(
      10, {{0, 1, 2, 3, 4}, {0, 1, 5, 6}, {2, 3, 5, 6}, {4, 5, 0, 2}});
  const auto graph = build_valid(m);
  for (const GroupId g : graph.groups()) {
    const auto& path = graph.path(g);
    // Consecutive atoms on a path are tree neighbors (validator also checks
    // this; asserting here documents the structure).
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const auto& nb = graph.tree_neighbors(path[i]);
      EXPECT_NE(std::find(nb.begin(), nb.end(), path[i + 1]), nb.end());
    }
  }
}

TEST(SeqGraph, UnorderedStrategyStillValid) {
  const auto m = test::make_membership(
      10, {{0, 1, 2, 3}, {1, 2, 4, 5}, {3, 4, 0, 6}, {5, 6, 1, 3}});
  (void)build_valid(m, {.strategy = BuildStrategy::kChainUnordered});
}

TEST(SeqGraph, OrderedChainNoLongerThanUnordered) {
  Rng rng(99);
  const auto m = membership::zipf_membership(
      {.num_nodes = 64, .num_groups = 24, .scale = 2.0}, rng);
  const OverlapIndex idx(m);
  const auto ordered = build_sequencing_graph(m, idx, {});
  const auto unordered = build_sequencing_graph(
      m, idx, {.strategy = BuildStrategy::kChainUnordered});
  auto total_path_len = [](const SequencingGraph& g) {
    std::size_t total = 0;
    for (const GroupId grp : g.groups()) total += g.path(grp).size();
    return total;
  };
  EXPECT_LE(total_path_len(ordered), total_path_len(unordered));
}

TEST(SeqGraphValidator, CatchesCycle) {
  // Hand-build a graph with a 3-cycle to prove the validator sees it.
  const auto m = test::make_membership(4, {{0, 1, 3}, {0, 1, 2}, {1, 2, 3}});
  const OverlapIndex idx(m);
  SequencingGraph graph = build_sequencing_graph(m, idx, {});
  // The chain has 3 atoms and 2 edges; the validator must flag a fabricated
  // graph where we close the triangle. We rebuild adjacency by const_cast-
  // free means: construct a fresh report from a tampered copy through the
  // public API is impossible by design, so instead verify that the real
  // graph passes and has exactly 2 tree edges.
  std::size_t edges = 0;
  for (const Atom& a : graph.atoms()) edges += graph.tree_neighbors(a.id).size();
  EXPECT_EQ(edges, 4u);  // 2 undirected edges, counted twice
  EXPECT_TRUE(validate_sequencing_graph(graph, m, idx).ok);
}

TEST(SeqGraphProperty, RandomZipfMembershipsAlwaysValid) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    const auto m = membership::zipf_membership(
        {.num_nodes = 48, .num_groups = 16, .scale = 1.5}, rng);
    (void)build_valid(m);
  }
}

TEST(SeqGraphProperty, RandomOccupancyMembershipsAlwaysValid) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    const double occupancy = 0.05 + 0.9 * (static_cast<double>(seed) / 25.0);
    const auto m = membership::occupancy_membership(
        {.num_nodes = 24, .num_groups = 10, .occupancy = occupancy}, rng);
    if (m.num_groups() == 0) continue;
    (void)build_valid(m);
  }
}

TEST(Incremental, AddGroupCreatesAtoms) {
  SequencingGraphManager mgr(test::make_membership(6, {{0, 1, 2}}));
  EXPECT_EQ(mgr.graph().num_overlap_atoms(), 0u);
  ChangeStats stats;
  mgr.add_group({N(1), N(2), N(3)}, &stats);
  EXPECT_EQ(stats.atoms_created, 1u);
  EXPECT_EQ(mgr.graph().num_overlap_atoms(), 1u);
  // The ingress-only atom of group 0 retired (its group gained an overlap).
  const auto report = validate_sequencing_graph(
      mgr.graph(), mgr.membership(), mgr.overlaps());
  EXPECT_TRUE(report.ok);
}

TEST(Incremental, RemoveGroupRetiresAtoms) {
  SequencingGraphManager mgr(
      test::make_membership(6, {{0, 1, 2}, {1, 2, 3}, {2, 3, 4}}));
  const std::size_t before = mgr.graph().num_overlap_atoms();
  ASSERT_GE(before, 2u);
  ChangeStats stats;
  mgr.remove_group(G(1), &stats);
  EXPECT_GE(stats.atoms_retired, 2u);  // both overlaps of G1 disappear
  EXPECT_TRUE(validate_sequencing_graph(mgr.graph(), mgr.membership(),
                                        mgr.overlaps())
                  .ok);
}

TEST(Incremental, SubscriptionChangeCanCreateOverlap) {
  SequencingGraphManager mgr(test::make_membership(6, {{0, 1, 2}, {2, 3, 4}}));
  EXPECT_EQ(mgr.graph().num_overlap_atoms(), 0u);  // single shared member
  ChangeStats stats;
  mgr.add_subscription(G(1), N(1), &stats);  // now shares {1,2}
  EXPECT_EQ(stats.atoms_created, 1u);
  EXPECT_EQ(mgr.graph().num_overlap_atoms(), 1u);
  ChangeStats stats2;
  mgr.remove_subscription(G(1), N(1), &stats2);
  EXPECT_EQ(stats2.atoms_retired, 1u);
  EXPECT_EQ(mgr.graph().num_overlap_atoms(), 0u);
}

// 200-seed differential: the delta-maintained manager must track the
// global-recompute oracle exactly — same overlaps in the same order, same
// per-group path fingerprints, same ChangeStats — across random op
// sequences, under both layout strategies.
TEST(Incremental, DeltaMatchesGlobalRecomputeAcross200Seeds) {
  const auto fingerprint = [](const SequencingGraph& graph, GroupId g) {
    std::vector<std::pair<GroupId, GroupId>> pairs;
    for (const AtomId id : graph.path(g)) {
      const Atom& a = graph.atom(id);
      pairs.push_back({a.group_a, a.group_b});
    }
    return pairs;
  };
  constexpr std::uint32_t kNodes = 20;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed);
    const auto m = membership::zipf_membership(
        {.num_nodes = kNodes, .num_groups = 6, .scale = 1.3}, rng);
    BuildOptions options;
    options.strategy = (seed % 2 == 0) ? BuildStrategy::kGreedyTree
                                       : BuildStrategy::kChain;
    SequencingGraphManager inc(m, options, /*incremental=*/true);
    SequencingGraphManager ref(m, options, /*incremental=*/false);

    for (int op = 0; op < 10; ++op) {
      const auto live = inc.membership().live_groups();
      const std::size_t kind = rng.next_below(4);
      ChangeStats si, sr;
      if (kind == 0 || live.empty()) {
        const std::size_t size = 2 + rng.next_below(4);
        std::set<std::uint32_t> picks;
        while (picks.size() < size) {
          picks.insert(static_cast<std::uint32_t>(rng.next_below(kNodes)));
        }
        std::vector<NodeId> members;
        for (const std::uint32_t p : picks) members.push_back(N(p));
        inc.add_group(members, &si);
        ref.add_group(members, &sr);
      } else if (kind == 1) {
        const GroupId g = live[rng.next_below(live.size())];
        inc.remove_group(g, &si);
        ref.remove_group(g, &sr);
      } else {
        const GroupId g = live[rng.next_below(live.size())];
        const auto members = inc.membership().members(g);
        if (kind == 2) {
          const std::uint32_t start =
              static_cast<std::uint32_t>(rng.next_below(kNodes));
          std::uint32_t node = kNodes;
          for (std::uint32_t probe = 0; probe < kNodes; ++probe) {
            const NodeId cand = N((start + probe) % kNodes);
            if (std::find(members.begin(), members.end(), cand) ==
                members.end()) {
              node = (start + probe) % kNodes;
              break;
            }
          }
          if (node == kNodes) continue;  // group spans every node
          inc.add_subscription(g, N(node), &si);
          ref.add_subscription(g, N(node), &sr);
        } else {
          if (members.size() <= 1) continue;  // never empty a group
          const NodeId node = members[rng.next_below(members.size())];
          inc.remove_subscription(g, node, &si);
          ref.remove_subscription(g, node, &sr);
        }
      }
      EXPECT_TRUE(si.used_delta) << "seed " << seed << " op " << op;
      EXPECT_FALSE(sr.used_delta);
      EXPECT_EQ(si.atoms_created, sr.atoms_created)
          << "seed " << seed << " op " << op;
      EXPECT_EQ(si.atoms_retired, sr.atoms_retired)
          << "seed " << seed << " op " << op;
      EXPECT_EQ(si.groups_repathed, sr.groups_repathed)
          << "seed " << seed << " op " << op;

      ASSERT_EQ(inc.overlaps().num_overlaps(), ref.overlaps().num_overlaps())
          << "seed " << seed << " op " << op;
      for (std::size_t i = 0; i < ref.overlaps().num_overlaps(); ++i) {
        const auto& oi = inc.overlaps().overlap(i);
        const auto& orf = ref.overlaps().overlap(i);
        ASSERT_EQ(oi.first, orf.first) << "seed " << seed << " op " << op;
        ASSERT_EQ(oi.second, orf.second) << "seed " << seed << " op " << op;
        ASSERT_EQ(oi.members, orf.members) << "seed " << seed << " op " << op;
      }

      const auto groups = ref.graph().groups();
      ASSERT_EQ(inc.graph().groups(), groups)
          << "seed " << seed << " op " << op;
      for (const GroupId g : groups) {
        ASSERT_EQ(fingerprint(inc.graph(), g), fingerprint(ref.graph(), g))
            << "seed " << seed << " op " << op << " group " << g;
      }

      const auto report = validate_sequencing_graph(
          inc.graph(), inc.membership(), inc.overlaps());
      EXPECT_TRUE(report.ok) << "seed " << seed << " op " << op;
      for (const auto& e : report.errors) ADD_FAILURE() << e;
    }
  }
}

TEST(Incremental, UnrelatedChangeLeavesPathsAlone) {
  SequencingGraphManager mgr(test::make_membership(
      12, {{0, 1, 2}, {1, 2, 3}, {8, 9, 10}}));
  ChangeStats stats;
  // A brand-new isolated group must not disturb the existing component.
  mgr.add_group({N(10), N(11)}, &stats);
  EXPECT_EQ(stats.atoms_created, 1u);  // its ingress-only atom
  EXPECT_EQ(stats.atoms_retired, 0u);
  EXPECT_EQ(stats.groups_repathed, 0u);
}

}  // namespace
}  // namespace decseq::seqgraph
