#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/callback.h"
#include "sim/channel.h"
#include "sim/simulator.h"
#include "tests/alloc_probe.h"

namespace decseq::sim {
namespace {

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(5.0, [&] { fired.push_back(2); });
  sim.schedule_at(1.0, [&] { fired.push_back(1); });
  sim.schedule_at(9.0, [&] { fired.push_back(3); });
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 9.0);
}

TEST(Simulator, TiesBreakFifo) {
  Simulator sim;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1.0, [&fired, i] { fired.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(Simulator, CallbacksCanSchedule) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(1.0, recurse);
  };
  sim.schedule_at(0.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator sim;
  sim.schedule_at(5.0, [&] {
    EXPECT_THROW(sim.schedule_at(1.0, [] {}), CheckFailure);
  });
  sim.run();
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunBeforeIsExclusiveAndKeepsClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(5.0, [&] { fired += 10; });
  sim.run_before(5.0);
  EXPECT_EQ(fired, 1) << "the fence-time event must NOT fire";
  EXPECT_DOUBLE_EQ(sim.now(), 1.0)
      << "run_before leaves the clock at the last fired event";
  sim.run_before(std::numeric_limits<Time>::infinity());
  EXPECT_EQ(fired, 11) << "an infinite fence drains everything";
}

TEST(Simulator, NextEventTimePeeksWithoutRunning) {
  Simulator sim;
  EXPECT_TRUE(std::isinf(sim.next_event_time()));
  sim.schedule_at(3.0, [] {});
  sim.schedule_at(7.0, [] {});
  EXPECT_DOUBLE_EQ(sim.next_event_time(), 3.0);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  sim.run();
  EXPECT_TRUE(std::isinf(sim.next_event_time()));
}

TEST(Simulator, AdvanceToMovesIdleClockForward) {
  Simulator sim;
  sim.advance_to(4.0);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
  sim.advance_to(4.0);  // same instant is fine
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
  sim.schedule_at(10.0, [] {});
  sim.advance_to(10.0);  // up to (not past) the next event is fine
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
  sim.run();
}

TEST(Simulator, AdvanceToRefusesToSkipEvents) {
  Simulator sim;
  sim.schedule_at(2.0, [] {});
  EXPECT_THROW(sim.advance_to(3.0), CheckFailure)
      << "advancing past a pending event would silently drop it";
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  int fired = 0;
  Simulator::TimerId keep = sim.schedule_at(1.0, [&] { ++fired; });
  Simulator::TimerId drop = sim.schedule_at(2.0, [&] { fired += 100; });
  EXPECT_TRUE(keep.valid());
  EXPECT_EQ(sim.pending(), 2u);
  EXPECT_TRUE(sim.cancel(drop));
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_FALSE(sim.cancel(drop)) << "double cancel must be a no-op";
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.timers_cancelled(), 1u);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0) << "cancelled event must not advance time";
}

TEST(Simulator, StaleHandleNeverCancelsRecycledSlot) {
  Simulator sim;
  int fired = 0;
  Simulator::TimerId first = sim.schedule_at(1.0, [&] { ++fired; });
  ASSERT_TRUE(sim.cancel(first));
  // The slot is free now; the next schedule recycles it.
  sim.schedule_at(2.0, [&] { fired += 10; });
  EXPECT_FALSE(sim.cancel(first))
      << "a stale handle must not cancel the slot's new occupant";
  sim.run();
  EXPECT_EQ(fired, 10);
}

TEST(Simulator, HandleIsStaleAfterFiring) {
  Simulator sim;
  int fired = 0;
  Simulator::TimerId id = sim.schedule_at(1.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(Simulator::TimerId())) << "default handle is inert";
}

TEST(Simulator, CancelInsideHeapKeepsTieOrderFifo) {
  // Removing an event from the middle of the heap swaps the last entry into
  // its place; the (time, insertion order) tie-break must survive that.
  Simulator sim;
  std::vector<int> fired;
  std::vector<Simulator::TimerId> ids;
  for (int i = 0; i < 32; ++i) {
    ids.push_back(sim.schedule_at(1.0, [&fired, i] { fired.push_back(i); }));
  }
  for (int i = 0; i < 32; i += 3) EXPECT_TRUE(sim.cancel(ids[i]));
  sim.run();
  std::vector<int> expected;
  for (int i = 0; i < 32; ++i) {
    if (i % 3 != 0) expected.push_back(i);
  }
  EXPECT_EQ(fired, expected);
}

TEST(Simulator, CancelStormStaysConsistent) {
  // Interleaved schedule/cancel across many slots: the slab + heap
  // bookkeeping must keep every surviving event, in order, exactly once.
  Simulator sim;
  Rng rng(99);
  std::vector<std::pair<double, int>> fired;
  std::vector<Simulator::TimerId> ids;
  for (int i = 0; i < 500; ++i) {
    const double at = rng.next_double() * 100.0;
    ids.push_back(sim.schedule_at(at, [&fired, at, i] {
      fired.push_back({at, i});
    }));
    if (i % 2 == 1 && rng.next_bool(0.5)) {
      const std::size_t victim = rng.next_below(ids.size());
      sim.cancel(ids[victim]);  // may be stale; both outcomes are legal
    }
  }
  sim.run();
  EXPECT_EQ(fired.size() + sim.timers_cancelled(), 500u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end(),
                             [](const auto& a, const auto& b) {
                               return a.first < b.first;
                             }));
}

TEST(Channel, DeliversInOrderWithDelay) {
  Simulator sim;
  Rng rng(1);
  Channel<int> ch(sim, rng, 3.0);
  std::vector<std::pair<int, Time>> got;
  ch.set_receiver([&](int v) { got.push_back({v, sim.now()}); });
  ch.send(1);
  ch.send(2);
  ch.send(3);
  sim.run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].first, 1);
  EXPECT_EQ(got[2].first, 3);
  EXPECT_DOUBLE_EQ(got[0].second, 3.0);
}

TEST(Channel, ZeroDelayStillFifo) {
  Simulator sim;
  Rng rng(2);
  Channel<int> ch(sim, rng, 0.0);
  std::vector<int> got;
  ch.set_receiver([&](int v) { got.push_back(v); });
  for (int i = 0; i < 20; ++i) ch.send(i);
  sim.run();
  ASSERT_EQ(got.size(), 20u);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
}

TEST(Channel, AcksDrainRetransmissionBuffer) {
  Simulator sim;
  Rng rng(3);
  Channel<int> ch(sim, rng, 2.0);
  ch.set_receiver([](int) {});
  ch.send(1);
  ch.send(2);
  EXPECT_EQ(ch.unacked(), 2u);
  sim.run();
  EXPECT_EQ(ch.unacked(), 0u);
}

TEST(Channel, LossyLinkStillDeliversInOrderExactlyOnce) {
  Simulator sim;
  Rng rng(4);
  ChannelOptions options;
  options.loss_probability = 0.4;
  options.retransmit_timeout_ms = 50.0;
  Channel<int> ch(sim, rng, 5.0, options);
  std::vector<int> got;
  ch.set_receiver([&](int v) { got.push_back(v); });
  for (int i = 0; i < 50; ++i) ch.send(i);
  sim.run();
  ASSERT_EQ(got.size(), 50u) << "every payload must arrive exactly once";
  for (int i = 0; i < 50; ++i) EXPECT_EQ(got[i], i);
  EXPECT_GT(ch.transmissions(), 50u) << "loss must have caused retransmits";
  EXPECT_EQ(ch.unacked(), 0u);
}

TEST(Channel, HeavyLossStress) {
  Simulator sim;
  Rng rng(5);
  ChannelOptions options;
  options.loss_probability = 0.7;
  options.retransmit_timeout_ms = 20.0;
  options.max_retransmits = 500;
  Channel<std::string> ch(sim, rng, 1.0, options);
  std::vector<std::string> got;
  ch.set_receiver([&](std::string v) { got.push_back(std::move(v)); });
  for (int i = 0; i < 20; ++i) ch.send("m" + std::to_string(i));
  sim.run();
  ASSERT_EQ(got.size(), 20u);
  EXPECT_EQ(got.front(), "m0");
  EXPECT_EQ(got.back(), "m19");
}

TEST(Channel, RequiresReceiver) {
  Simulator sim;
  Rng rng(6);
  Channel<int> ch(sim, rng, 1.0);
  EXPECT_THROW(ch.send(1), CheckFailure);
}

TEST(Channel, LossFreeRunFiresNoRetransmitTimers) {
  // The whole point of cancellable timers: with loss 0 and acks returning
  // within the timeout, no retransmit timer callback ever runs — acks
  // disarm the timer first. The seed engine drained a dead timer event per
  // packet through the queue instead.
  Simulator sim;
  Rng rng(7);
  Channel<int> ch(sim, rng, 3.0);
  int delivered = 0;
  ch.set_receiver([&](int) { ++delivered; });
  for (int i = 0; i < 200; ++i) ch.send(i);
  sim.run();
  EXPECT_EQ(delivered, 200);
  EXPECT_EQ(ch.retransmit_timer_fires(), 0u);
  EXPECT_GE(sim.timers_cancelled(), 1u)
      << "the ack that drained the buffer must cancel the armed timer";
  EXPECT_EQ(ch.transmissions(), 200u) << "no packet was sent twice";
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Channel, LossTriggersTimerFiresAndRepair) {
  Simulator sim;
  Rng rng(8);
  ChannelOptions options;
  options.loss_probability = 0.5;
  options.retransmit_timeout_ms = 30.0;
  Channel<int> ch(sim, rng, 2.0, options);
  std::vector<int> got;
  ch.set_receiver([&](int v) { got.push_back(v); });
  for (int i = 0; i < 40; ++i) ch.send(i);
  sim.run();
  ASSERT_EQ(got.size(), 40u);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  EXPECT_GE(ch.retransmit_timer_fires(), 1u)
      << "half the packets vanished; the timer must have driven repair";
  EXPECT_EQ(ch.unacked(), 0u);
}

TEST(Channel, ReceiverFailureWindowRecovers) {
  Simulator sim;
  Rng rng(9);
  ChannelOptions options;
  options.retransmit_timeout_ms = 25.0;
  Channel<int> ch(sim, rng, 5.0, options);
  std::vector<std::pair<int, Time>> got;
  ch.set_receiver([&](int v) { got.push_back({v, sim.now()}); });

  ch.send(1);
  ch.send(2);
  ch.set_receiver_down(true);
  sim.schedule_at(60.0, [&] { ch.set_receiver_down(false); });
  sim.run();

  ASSERT_EQ(got.size(), 2u) << "retransmissions must survive the outage";
  EXPECT_EQ(got[0].first, 1);
  EXPECT_EQ(got[1].first, 2);
  EXPECT_GT(got[0].second, 60.0) << "nothing can arrive while down";
  EXPECT_GE(ch.retransmit_timer_fires(), 1u);
  EXPECT_EQ(ch.unacked(), 0u) << "recovery must drain the output buffer";
}

TEST(Channel, LinkFailureWindowRecovers) {
  Simulator sim;
  Rng rng(10);
  ChannelOptions options;
  options.retransmit_timeout_ms = 25.0;
  Channel<int> ch(sim, rng, 5.0, options);
  std::vector<int> got;
  ch.set_receiver([&](int v) { got.push_back(v); });

  ch.set_link_down(true);
  ch.send(1);
  ch.send(2);
  ch.send(3);
  sim.schedule_at(80.0, [&] { ch.set_link_down(false); });
  sim.run();

  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}))
      << "a severed link is a 100% loss window the timer repairs";
  EXPECT_GE(ch.retransmit_timer_fires(), 1u);
  EXPECT_EQ(ch.unacked(), 0u);
}

TEST(Channel, ExhaustedBudgetSurfacesFaultWithoutAbort) {
  // The old channel aborted the whole process when a packet crossed
  // max_retransmits. Now it must surface a fault — status flag plus one
  // callback per transition — keep its state, and recover cleanly when the
  // endpoint comes back.
  Simulator sim;
  Rng rng(11);
  ChannelOptions options;
  options.retransmit_timeout_ms = 10.0;
  options.max_retransmits = 3;
  Channel<int> ch(sim, rng, 5.0, options);
  std::vector<int> got;
  ch.set_receiver([&](int v) { got.push_back(v); });
  std::vector<ChannelFault> faults;
  ch.set_fault_callback([&](const ChannelFault& f) { faults.push_back(f); });

  ch.set_receiver_down(true);
  ch.send(7);
  // Budget 3 at rto 10 exhausts by ~90ms even with maximal jitter; probe
  // the surfaced state mid-outage, well before the recovery below.
  sim.schedule_at(150.0, [&] {
    EXPECT_TRUE(ch.faulted());
    ASSERT_TRUE(ch.fault().has_value());
    EXPECT_EQ(ch.fault()->seq, 0u);
    EXPECT_GT(ch.fault()->attempts, options.max_retransmits);
    EXPECT_EQ(faults.size(), 1u) << "callback fires once per transition";
  });
  sim.schedule_at(200.0, [&] { ch.set_receiver_down(false); });
  EXPECT_NO_THROW(sim.run()) << "exhaustion must not abort the run";

  EXPECT_EQ(got, (std::vector<int>{7})) << "recovery still delivers";
  EXPECT_FALSE(ch.faulted()) << "recovery clears the fault";
  EXPECT_EQ(ch.faults_entered(), 1u);
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].seq, 0u);
  EXPECT_EQ(ch.unacked(), 0u);
  EXPECT_EQ(sim.pending(), 0u)
      << "a parked fault must not leave the simulator spinning";
}

TEST(Channel, BackoffKeepsOutageRetransmitsLogarithmic) {
  // During a W-long outage a packet is retried O(log(W/rto)) times, not
  // W/rto times. A 5000ms window at rto 10 would have been ~500 linear
  // retransmissions; exponential backoff capped at 64*rto needs ~a dozen.
  Simulator sim;
  Rng rng(12);
  ChannelOptions options;
  options.retransmit_timeout_ms = 10.0;
  Channel<int> ch(sim, rng, 5.0, options);
  std::vector<std::pair<int, Time>> got;
  ch.set_receiver([&](int v) { got.push_back({v, sim.now()}); });

  ch.set_link_down(true);
  ch.send(1);
  sim.schedule_at(5000.0, [&] { ch.set_link_down(false); });
  sim.run();

  ASSERT_EQ(got.size(), 1u);
  EXPECT_GT(got[0].second, 5000.0);
  EXPECT_GE(ch.transmissions(), 8u) << "probing must continue all window";
  EXPECT_LE(ch.transmissions(), 20u)
      << "retransmit storm: backoff is not exponential";
  EXPECT_EQ(ch.unacked(), 0u);
}

TEST(Channel, PartitionKillsInFlightTrafficAtArrival) {
  // Link state is sampled at arrival time too: a packet launched before
  // the cut but arriving inside it dies. Without that, the transmission
  // launched at t=0 would slip through at t=10 despite the 5..100 window.
  Simulator sim;
  Rng rng(13);
  ChannelOptions options;
  options.retransmit_timeout_ms = 50.0;
  Channel<int> ch(sim, rng, 10.0, options);
  std::vector<std::pair<int, Time>> got;
  ch.set_receiver([&](int v) { got.push_back({v, sim.now()}); });

  ch.send(1);
  sim.schedule_at(5.0, [&] { ch.set_link_down(true); });
  sim.schedule_at(100.0, [&] { ch.set_link_down(false); });
  sim.run();

  ASSERT_EQ(got.size(), 1u);
  EXPECT_GT(got[0].second, 100.0)
      << "the in-flight transmission must die inside the partition";
  EXPECT_EQ(ch.unacked(), 0u);
}

TEST(Channel, LostAckRepairedByCumulativeReack) {
  // Kill only the acknowledgment (delivered at t=10, ack in flight when
  // the link cuts at 15). The recovery retransmission is a duplicate the
  // receiver suppresses and re-acks cumulatively — exactly-once delivery,
  // and the retransmit timer (rto 100) never had to fire.
  Simulator sim;
  Rng rng(14);
  ChannelOptions options;
  options.retransmit_timeout_ms = 100.0;
  Channel<int> ch(sim, rng, 10.0, options);
  std::vector<int> got;
  ch.set_receiver([&](int v) { got.push_back(v); });

  ch.send(42);
  sim.schedule_at(15.0, [&] { ch.set_link_down(true); });
  sim.schedule_at(30.0, [&] { ch.set_link_down(false); });
  sim.run();

  EXPECT_EQ(got, (std::vector<int>{42})) << "duplicate must be suppressed";
  EXPECT_EQ(ch.unacked(), 0u) << "the cumulative re-ack must drain the buffer";
  EXPECT_EQ(ch.retransmit_timer_fires(), 0u)
      << "repair came from the recovery resend, not the timer";
  EXPECT_EQ(ch.transmissions(), 2u);
}

TEST(Channel, ReceiverOutageShorterThanBudgetAvoidsFault) {
  // Budget 5 at rto 10 only exhausts after ~310ms of backoff; a 100ms
  // outage heals first, so the channel never reports a fault.
  Simulator sim;
  Rng rng(15);
  ChannelOptions options;
  options.retransmit_timeout_ms = 10.0;
  options.max_retransmits = 5;
  Channel<int> ch(sim, rng, 5.0, options);
  std::vector<int> got;
  ch.set_receiver([&](int v) { got.push_back(v); });

  ch.set_receiver_down(true);
  ch.send(1);
  ch.send(2);
  sim.schedule_at(100.0, [&] { ch.set_receiver_down(false); });
  sim.run();

  EXPECT_EQ(got, (std::vector<int>{1, 2}));
  EXPECT_EQ(ch.faults_entered(), 0u)
      << "an outage inside the budget is not a fault";
  EXPECT_FALSE(ch.faulted());
  EXPECT_EQ(ch.unacked(), 0u);
}

TEST(Channel, PureLossFaultClearsWhenProbeLands) {
  // Exhaust the budget through loss alone (no down flag): the channel
  // keeps probing at the capped cadence, and the first probe+ack that
  // survive clear the fault without any recovery notification.
  Simulator sim;
  Rng rng(16);
  ChannelOptions options;
  options.loss_probability = 0.9;
  options.retransmit_timeout_ms = 5.0;
  options.max_retransmits = 2;
  options.max_backoff_factor = 4.0;  // keep the probe cadence brisk
  Channel<int> ch(sim, rng, 1.0, options);
  std::vector<int> got;
  ch.set_receiver([&](int v) { got.push_back(v); });

  for (int i = 0; i < 10; ++i) ch.send(i);
  sim.run();

  ASSERT_EQ(got.size(), 10u);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  EXPECT_GE(ch.faults_entered(), 1u)
      << "90% loss with budget 2 must trip the fault state at least once";
  EXPECT_FALSE(ch.faulted()) << "the surviving probe+ack cleared it";
  EXPECT_EQ(ch.unacked(), 0u);
}

TEST(Channel, LinkFlapsPreserveExactlyOnceFifo) {
  // Traffic spread across repeated partition windows (plus ambient loss):
  // every payload still arrives exactly once, in order.
  Simulator sim;
  Rng rng(17);
  ChannelOptions options;
  options.loss_probability = 0.1;
  options.retransmit_timeout_ms = 20.0;
  Channel<int> ch(sim, rng, 5.0, options);
  std::vector<int> got;
  ch.set_receiver([&](int v) { got.push_back(v); });

  for (int i = 0; i < 30; ++i) {
    sim.schedule_at(i * 4.0, [&ch, i] { ch.send(i); });
  }
  for (const auto& [down, up] : {std::pair{30.0, 60.0}, {100.0, 140.0}}) {
    sim.schedule_at(down, [&] { ch.set_link_down(true); });
    sim.schedule_at(up, [&] { ch.set_link_down(false); });
  }
  sim.run();

  ASSERT_EQ(got.size(), 30u) << "flaps must not lose or duplicate";
  for (int i = 0; i < 30; ++i) EXPECT_EQ(got[i], i);
  EXPECT_EQ(ch.unacked(), 0u);
  EXPECT_FALSE(ch.faulted());
}

TEST(Callback, SpillPoolRecyclesOversizedCaptures) {
  // A capture too big for the inline buffer spills to the heap, but the
  // spill goes through the thread-local freelist: after the first block of
  // a size class is warmed, repeated schedule/fire cycles of the same
  // oversized capture reuse it — zero fresh blocks, zero heap allocations.
  using Callback = InlineCallback<24>;
  struct Payload {
    unsigned char pad[160];
  };
  Payload payload{};
  int fired = 0;
  const auto make = [&] {
    return Callback([payload, &fired] {
      ++fired;
      (void)payload;
    });
  };
  {
    Callback warm = make();  // first spill of this size class: fresh block
    ASSERT_TRUE(warm.heap_allocated());
    warm();
  }

  const SpillPoolStats before = spill_pool_stats();
  const std::size_t allocs_before = test::alloc_count();
  for (int i = 0; i < 64; ++i) {
    Callback cb = make();
    cb();
  }
  const SpillPoolStats& after = spill_pool_stats();
  EXPECT_EQ(after.fresh, before.fresh) << "warm spills must not allocate";
  EXPECT_EQ(after.reused, before.reused + 64);
  EXPECT_EQ(test::alloc_count() - allocs_before, 0u);
  EXPECT_EQ(fired, 65);
}

}  // namespace
}  // namespace decseq::sim
