#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/channel.h"
#include "sim/simulator.h"

namespace decseq::sim {
namespace {

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(5.0, [&] { fired.push_back(2); });
  sim.schedule_at(1.0, [&] { fired.push_back(1); });
  sim.schedule_at(9.0, [&] { fired.push_back(3); });
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 9.0);
}

TEST(Simulator, TiesBreakFifo) {
  Simulator sim;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1.0, [&fired, i] { fired.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(Simulator, CallbacksCanSchedule) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(1.0, recurse);
  };
  sim.schedule_at(0.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator sim;
  sim.schedule_at(5.0, [&] {
    EXPECT_THROW(sim.schedule_at(1.0, [] {}), CheckFailure);
  });
  sim.run();
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Channel, DeliversInOrderWithDelay) {
  Simulator sim;
  Rng rng(1);
  Channel<int> ch(sim, rng, 3.0);
  std::vector<std::pair<int, Time>> got;
  ch.set_receiver([&](int v) { got.push_back({v, sim.now()}); });
  ch.send(1);
  ch.send(2);
  ch.send(3);
  sim.run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].first, 1);
  EXPECT_EQ(got[2].first, 3);
  EXPECT_DOUBLE_EQ(got[0].second, 3.0);
}

TEST(Channel, ZeroDelayStillFifo) {
  Simulator sim;
  Rng rng(2);
  Channel<int> ch(sim, rng, 0.0);
  std::vector<int> got;
  ch.set_receiver([&](int v) { got.push_back(v); });
  for (int i = 0; i < 20; ++i) ch.send(i);
  sim.run();
  ASSERT_EQ(got.size(), 20u);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
}

TEST(Channel, AcksDrainRetransmissionBuffer) {
  Simulator sim;
  Rng rng(3);
  Channel<int> ch(sim, rng, 2.0);
  ch.set_receiver([](int) {});
  ch.send(1);
  ch.send(2);
  EXPECT_EQ(ch.unacked(), 2u);
  sim.run();
  EXPECT_EQ(ch.unacked(), 0u);
}

TEST(Channel, LossyLinkStillDeliversInOrderExactlyOnce) {
  Simulator sim;
  Rng rng(4);
  ChannelOptions options;
  options.loss_probability = 0.4;
  options.retransmit_timeout_ms = 50.0;
  Channel<int> ch(sim, rng, 5.0, options);
  std::vector<int> got;
  ch.set_receiver([&](int v) { got.push_back(v); });
  for (int i = 0; i < 50; ++i) ch.send(i);
  sim.run();
  ASSERT_EQ(got.size(), 50u) << "every payload must arrive exactly once";
  for (int i = 0; i < 50; ++i) EXPECT_EQ(got[i], i);
  EXPECT_GT(ch.transmissions(), 50u) << "loss must have caused retransmits";
  EXPECT_EQ(ch.unacked(), 0u);
}

TEST(Channel, HeavyLossStress) {
  Simulator sim;
  Rng rng(5);
  ChannelOptions options;
  options.loss_probability = 0.7;
  options.retransmit_timeout_ms = 20.0;
  options.max_retransmits = 500;
  Channel<std::string> ch(sim, rng, 1.0, options);
  std::vector<std::string> got;
  ch.set_receiver([&](std::string v) { got.push_back(std::move(v)); });
  for (int i = 0; i < 20; ++i) ch.send("m" + std::to_string(i));
  sim.run();
  ASSERT_EQ(got.size(), 20u);
  EXPECT_EQ(got.front(), "m0");
  EXPECT_EQ(got.back(), "m19");
}

TEST(Channel, RequiresReceiver) {
  Simulator sim;
  Rng rng(6);
  Channel<int> ch(sim, rng, 1.0);
  EXPECT_THROW(ch.send(1), CheckFailure);
}

}  // namespace
}  // namespace decseq::sim
