// Steady-state allocation discipline of the full publish→deliver path.
//
// The PR-5 tentpole claim: once every pool, slab, ring, and log is warm, a
// full-system publish — ingress leg, per-hop stamping along the compiled
// route table, channel transport, multicast fan-out, receiver ordering,
// delivery logging — performs zero heap allocations. This test asserts that
// against the binary-wide counting allocator (tests/alloc_probe.cc), not a
// model: the same publish schedule is replayed until warm, capacity is
// reserved, and the measured replay must not allocate at all.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pubsub/system.h"
#include "sim/callback.h"
#include "tests/alloc_probe.h"
#include "tests/test_util.h"

namespace decseq::pubsub {
namespace {

using test::N;

TEST(SystemAlloc, SteadyStatePublishDeliverIsAllocationFree) {
  PubSubSystem system(test::small_config(/*seed=*/7));

  // Four overlapping groups over the 16 hosts: overlaps force sequencing
  // atoms, stamps, and cross-group ordering work on the measured path.
  const std::vector<std::vector<NodeId>> members = {
      {N(0), N(1), N(2), N(3), N(4), N(5)},
      {N(4), N(5), N(6), N(7), N(8), N(9)},
      {N(8), N(9), N(10), N(11), N(12), N(13)},
      {N(12), N(13), N(14), N(15), N(0), N(1)},
  };
  const std::vector<GroupId> groups = system.create_groups(members);

  // One precomputed schedule, replayed identically for every pass so the
  // warm passes touch exactly the state (oracle rows, fan-out plans,
  // channel rings, receiver slabs, pools) the measured pass needs.
  struct Publish {
    NodeId sender;
    GroupId group;
  };
  std::vector<Publish> schedule;
  constexpr std::size_t kRounds = 12;
  for (std::size_t round = 0; round < kRounds; ++round) {
    for (std::size_t g = 0; g < groups.size(); ++g) {
      schedule.push_back(
          {members[g][round % members[g].size()], groups[g]});
    }
  }
  std::size_t deliveries_per_pass = 0;
  for (const auto& m : members) deliveries_per_pass += kRounds * m.size();

  const std::uint8_t body[32] = {0xab};
  std::uint64_t payload = 0;
  const auto run_pass = [&] {
    for (const Publish& p : schedule) {
      system.publish(p.sender, p.group, payload++, body, sizeof(body));
    }
    system.run();
  };

  // Logs grow for the epoch's lifetime — reserve for all three passes up
  // front so the warm passes also warm the vectors' final capacity.
  system.reserve(3 * schedule.size(), 3 * deliveries_per_pass);

  run_pass();  // cold: builds pools, slabs, rings, oracle rows
  run_pass();  // confirms the high-water marks
  ASSERT_EQ(system.deliveries().size(), 2 * deliveries_per_pass);

  const std::size_t allocs_before = test::alloc_count();
  const std::size_t fresh_spills_before = sim::spill_pool_stats().fresh;
  run_pass();
  const std::size_t allocs = test::alloc_count() - allocs_before;
  const std::size_t fresh_spills =
      sim::spill_pool_stats().fresh - fresh_spills_before;

  EXPECT_EQ(allocs, 0u)
      << "full-system publish→deliver steady state allocated";
  EXPECT_EQ(fresh_spills, 0u)
      << "a callback spill missed the warm freelist";
  EXPECT_EQ(system.deliveries().size(), 3 * deliveries_per_pass);
}

}  // namespace
}  // namespace decseq::pubsub
