// Tests for §3.2's group termination: the FIN message, lazy sequencer
// retirement, and the receiver-side closing of the group's sequence space.
#include <gtest/gtest.h>

#include "pubsub/system.h"
#include "tests/test_util.h"

namespace decseq::pubsub {
namespace {

using test::G;
using test::N;

TEST(Termination, FinClosesGroupAtReceivers) {
  PubSubSystem system(test::small_config(61));
  const GroupId g = system.create_group({N(0), N(1), N(2)});
  system.publish(N(0), g, 1);
  system.run();
  system.terminate_group(g, N(0));
  system.run();
  for (unsigned n = 0; n < 3; ++n) {
    EXPECT_TRUE(system.network().receiver(N(n)).group_closed(g));
  }
  // FIN is a control message: it does not appear in the application log.
  EXPECT_EQ(system.deliveries().size(), 3u);
}

TEST(Termination, PublishAfterFinThrows) {
  PubSubSystem system(test::small_config(62));
  const GroupId g = system.create_group({N(0), N(1)});
  system.terminate_group(g, N(0));
  EXPECT_THROW(system.publish(N(0), g), CheckFailure);
  EXPECT_TRUE(system.network().group_terminated(g));
}

TEST(Termination, MessagesBeforeFinAllDelivered) {
  // The FIN is sequenced like any message, so everything published before
  // it reaches every member before the group closes.
  PubSubSystem system(test::small_config(63));
  const GroupId g = system.create_group({N(0), N(1), N(2), N(3)});
  for (std::uint64_t i = 0; i < 10; ++i) system.publish(N(0), g, i);
  system.terminate_group(g, N(0));
  system.run();
  for (unsigned n = 0; n < 4; ++n) {
    const auto log = system.deliveries_to(N(n));
    ASSERT_EQ(log.size(), 10u);
    for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(log[i].payload, i);
    EXPECT_TRUE(system.network().receiver(N(n)).group_closed(g));
  }
}

TEST(Termination, SurvivingGroupKeepsWorkingAfterPartnersFin) {
  // Two overlapping groups; terminating one retires their shared atom
  // lazily. The surviving group must keep delivering consistently, ordered
  // by its group-local numbers.
  PubSubSystem system(test::small_config(64));
  const GroupId g0 = system.create_group({N(0), N(1), N(2), N(3)});
  const GroupId g1 = system.create_group({N(2), N(3), N(4), N(5)});
  ASSERT_EQ(system.graph().num_overlap_atoms(), 1u);

  system.publish(N(0), g0, 1);
  system.publish(N(4), g1, 2);
  system.terminate_group(g0, N(0));
  // Published while the FIN may still be in flight.
  system.publish(N(4), g1, 3);
  system.publish(N(5), g1, 4);
  system.run();
  // After quiescence, the surviving group continues (its messages still
  // collect the obsolete atom's stamps until a rebuild removes it).
  system.publish(N(2), g1, 5);
  system.run();

  for (const unsigned n : {2u, 3u}) {
    const auto log = system.deliveries_to(N(n));
    ASSERT_EQ(log.size(), 5u) << "overlap member " << n;
  }
  // g1-only members got exactly the g1 stream. Cross-sender order is
  // whatever the ingress arrival order was, but one sender's messages stay
  // in its send order: 2 (from node 4) precedes 3 (from node 4).
  const auto at4 = system.deliveries_to(N(4));
  ASSERT_EQ(at4.size(), 4u);
  std::vector<std::uint64_t> payloads;
  for (const auto& d : at4) payloads.push_back(d.payload);
  std::sort(payloads.begin(), payloads.end());
  EXPECT_EQ(payloads, (std::vector<std::uint64_t>{2, 3, 4, 5}));
  const auto pos2 = std::find_if(at4.begin(), at4.end(),
                                 [](const auto& d) { return d.payload == 2; });
  const auto pos3 = std::find_if(at4.begin(), at4.end(),
                                 [](const auto& d) { return d.payload == 3; });
  EXPECT_LT(pos2 - at4.begin(), pos3 - at4.begin());
  EXPECT_FALSE(test::find_order_violation(system.deliveries()).has_value());
  EXPECT_EQ(system.network().buffered_at_receivers(), 0u);
}

TEST(Termination, RetiredAtomKeepsStampingUntilRebuild) {
  // §3.2 lazy removal: after g0's FIN the (g0,g1) atom is obsolete, but it
  // must KEEP stamping g1's messages until a rebuild removes it — a
  // pre-FIN g0 message could still be in flight carrying its stamp, and a
  // g1 message that skipped the atom would share no sequencer with it
  // (two overlap members could then disagree on the pair's order).
  PubSubSystem system(test::small_config(65));
  const GroupId g0 = system.create_group({N(0), N(1), N(2)});
  const GroupId g1 = system.create_group({N(1), N(2), N(3)});
  const MsgId before = system.publish(N(3), g1, 1);
  system.run();
  system.terminate_group(g0, N(0));
  system.run();
  const MsgId after = system.publish(N(3), g1, 2);
  system.run();
  EXPECT_EQ(system.record(before).stamps, 1u);
  EXPECT_EQ(system.record(after).stamps, 1u)
      << "stale stamps are ignored, not skipped (paper §3.2)";

  // After a rebuild (here: an unrelated membership op), the atom is gone
  // and g1 messages stop paying for it.
  system.reconfigure({PubSubSystem::MembershipChange::remove(g0)});
  const MsgId rebuilt = system.publish(N(3), g1, 3);
  system.run();
  EXPECT_EQ(system.record(rebuilt).stamps, 0u);
}

TEST(Termination, PublishRacingFinIsRejectedAtIngress) {
  // A message published just before the FIN, from a sender farther from the
  // ingress than the terminating member, reaches the ingress after the FIN
  // and must be rejected — the FIN is the *last* word in the group's
  // sequence space (§3.2).
  PubSubSystem system(test::small_config(68));
  const GroupId g = system.create_group({N(0), N(1), N(2)});
  auto& oracle = system.oracle();
  const AtomId ingress = system.graph().path(g).front();
  const RouterId ingress_router =
      system.assignment().machine_of(system.colocation().node_of(ingress));
  // Pick the member closest to the ingress as the terminator and the
  // farthest as the racing publisher.
  NodeId near = N(0), far = N(0);
  for (const NodeId m : system.membership().members(g)) {
    auto d = [&](NodeId n) {
      return oracle.distance(system.hosts().router_of(n), ingress_router);
    };
    if (d(m) < d(near)) near = m;
    if (d(m) > d(far)) far = m;
  }
  if (near == far) GTEST_SKIP() << "degenerate placement";

  const MsgId racer = system.publish(far, g, 42);
  system.terminate_group(g, near);
  system.run();
  EXPECT_TRUE(system.record(racer).rejected);
  EXPECT_FALSE(system.record(racer).exited_at.has_value());
  EXPECT_TRUE(system.deliveries().empty());
  // Receivers closed the group; the racer was never delivered anywhere.
  for (const NodeId m : system.membership().members(g)) {
    EXPECT_TRUE(system.network().receiver(m).group_closed(g));
  }
}

TEST(Termination, DoubleFinThrows) {
  PubSubSystem system(test::small_config(66));
  const GroupId g = system.create_group({N(0), N(1)});
  system.terminate_group(g, N(0));
  EXPECT_THROW(system.terminate_group(g, N(1)), CheckFailure);
}

TEST(Termination, BufferWaitStatsAccumulate) {
  // Receiver-level determinism: feed messages out of order and verify the
  // buffering instrumentation (used by bench/ordering_wait) observes it.
  std::size_t delivered = 0;
  protocol::Receiver r(N(0), {G(0)}, {},
                       [&](const protocol::Message&, sim::Time) {
                         ++delivered;
                       });
  auto msg = [](unsigned id, SeqNo seq) {
    return protocol::Message::make(
        {.id = MsgId(id), .group = G(0), .sender = N(1), .group_seq = seq});
  };
  r.receive(msg(3, 3), /*now=*/10.0);  // early: buffered
  r.receive(msg(2, 2), /*now=*/20.0);  // still blocked on seq 1
  EXPECT_EQ(r.max_buffered(), 2u);
  EXPECT_DOUBLE_EQ(r.total_buffer_wait(), 0.0);
  r.receive(msg(1, 1), /*now=*/50.0);  // releases everything
  EXPECT_EQ(delivered, 3u);
  // Waits: msg3 waited 40ms, msg2 waited 30ms.
  EXPECT_DOUBLE_EQ(r.total_buffer_wait(), 70.0);
  EXPECT_EQ(r.buffered(), 0u);
}

}  // namespace
}  // namespace decseq::pubsub
