// Shared helpers for the test suite: small topologies (tests don't need the
// 10,000-router experiment configuration), membership literals, and the
// pairwise order-consistency oracle used by integration and property tests.
#pragma once

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "membership/membership.h"
#include "metrics/logio.h"
#include "pubsub/system.h"

namespace decseq::test {

inline NodeId N(unsigned v) { return NodeId(v); }
inline GroupId G(unsigned v) { return GroupId(v); }

/// A topology an order of magnitude smaller than the experiments', for fast
/// tests: 2 transit domains x 3 routers, 2 stubs per router, 5 routers per
/// stub -> 66 routers.
inline topology::TransitStubParams small_topology() {
  topology::TransitStubParams p;
  p.transit_domains = 2;
  p.routers_per_transit = 3;
  p.stubs_per_transit_router = 2;
  p.routers_per_stub = 5;
  p.extra_transit_links = 2;
  return p;
}

inline pubsub::SystemConfig small_config(std::uint64_t seed,
                                         std::size_t num_hosts = 16,
                                         std::size_t num_clusters = 4) {
  pubsub::SystemConfig config;
  config.seed = seed;
  config.topology = small_topology();
  config.hosts.num_hosts = num_hosts;
  config.hosts.num_clusters = num_clusters;
  return config;
}

/// Build a membership snapshot from group literal member lists.
inline membership::GroupMembership make_membership(
    std::size_t num_nodes, const std::vector<std::vector<unsigned>>& groups) {
  membership::GroupMembership m(num_nodes);
  for (const auto& members : groups) {
    std::vector<NodeId> ids;
    ids.reserve(members.size());
    for (const unsigned v : members) ids.push_back(NodeId(v));
    m.add_group(std::move(ids));
  }
  return m;
}

/// Checks the paper's headline guarantee over a delivery log: every pair of
/// receivers observes their common messages in the same relative order.
/// Returns a description of the first violation, or nullopt if consistent.
/// (Thin alias of the library oracle in metrics/logio.h.)
inline std::optional<std::string> find_order_violation(
    const std::vector<pubsub::Delivery>& log) {
  return metrics::find_order_violation(log);
}

}  // namespace decseq::test
