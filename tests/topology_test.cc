#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "common/rng.h"
#include "tests/test_util.h"
#include "topology/graph.h"
#include "topology/hosts.h"
#include "topology/shortest_path.h"
#include "topology/transit_stub.h"

namespace decseq::topology {
namespace {

TEST(Graph, AddRoutersAndEdges) {
  Graph g;
  const RouterId a = g.add_router();
  const RouterId b = g.add_router();
  g.add_edge(a, b, 5.0);
  EXPECT_EQ(g.num_routers(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  ASSERT_EQ(g.neighbors(a).size(), 1u);
  EXPECT_EQ(g.neighbors(a)[0].to, b);
  EXPECT_DOUBLE_EQ(g.neighbors(a)[0].delay_ms, 5.0);
  EXPECT_EQ(g.neighbors(b)[0].to, a);
}

TEST(Graph, RejectsSelfLoopsAndBadDelay) {
  Graph g;
  const RouterId a = g.add_router();
  const RouterId b = g.add_router();
  EXPECT_THROW(g.add_edge(a, a, 1.0), CheckFailure);
  EXPECT_THROW(g.add_edge(a, b, 0.0), CheckFailure);
}

TEST(Dijkstra, KnownSmallGraph) {
  // a --1-- b --2-- c, plus a direct a--c edge of weight 10 that loses.
  Graph g;
  const RouterId a = g.add_router(), b = g.add_router(), c = g.add_router();
  g.add_edge(a, b, 1.0);
  g.add_edge(b, c, 2.0);
  g.add_edge(a, c, 10.0);
  const auto dist = dijkstra(g, a);
  EXPECT_DOUBLE_EQ(dist[a.value()], 0.0);
  EXPECT_DOUBLE_EQ(dist[b.value()], 1.0);
  EXPECT_DOUBLE_EQ(dist[c.value()], 3.0);
}

TEST(Dijkstra, UnreachableIsInfinite) {
  Graph g;
  const RouterId a = g.add_router();
  (void)g.add_router();
  const auto dist = dijkstra(g, a);
  EXPECT_EQ(dist[1], std::numeric_limits<double>::infinity());
}

TEST(DistanceOracle, SymmetricAndCached) {
  Graph g;
  const RouterId a = g.add_router(), b = g.add_router(), c = g.add_router();
  g.add_edge(a, b, 1.5);
  g.add_edge(b, c, 2.5);
  DistanceOracle oracle(g);
  EXPECT_DOUBLE_EQ(oracle.distance(a, c), 4.0);
  EXPECT_DOUBLE_EQ(oracle.distance(c, a), 4.0);
  // Second query from a cached source must not add cache entries.
  const std::size_t cached = oracle.cached_sources();
  (void)oracle.distance(a, b);
  EXPECT_EQ(oracle.cached_sources(), cached);
}

TEST(DistanceOracle, ClosestCandidate) {
  Graph g;
  const RouterId a = g.add_router(), b = g.add_router(), c = g.add_router();
  g.add_edge(a, b, 1.0);
  g.add_edge(b, c, 1.0);
  DistanceOracle oracle(g);
  EXPECT_EQ(oracle.closest({a, c}, b), a);  // tie broken by first
  EXPECT_EQ(oracle.closest({c}, a), c);
}

TEST(TransitStub, DefaultParamsProduceTenThousandRouters) {
  EXPECT_EQ(TransitStubParams{}.total_routers(), 10000u);
}

TEST(TransitStub, GeneratedSizeMatchesParams) {
  Rng rng(1);
  const auto params = test::small_topology();
  const auto topo = generate_transit_stub(params, rng);
  EXPECT_EQ(topo.graph.num_routers(), params.total_routers());
  EXPECT_EQ(topo.num_stub_domains, 2u * 3u * 2u);
  EXPECT_EQ(topo.stub_routers.size(),
            params.total_routers() - 2u * 3u);  // all but transit routers
}

TEST(TransitStub, FullyConnected) {
  Rng rng(2);
  const auto topo = generate_transit_stub(test::small_topology(), rng);
  const auto dist = dijkstra(topo.graph, RouterId(0));
  for (std::size_t r = 0; r < topo.graph.num_routers(); ++r) {
    EXPECT_NE(dist[r], std::numeric_limits<double>::infinity())
        << "router " << r << " unreachable";
  }
}

TEST(TransitStub, StubDomainAnnotationsConsistent) {
  Rng rng(3);
  const auto topo = generate_transit_stub(test::small_topology(), rng);
  std::set<std::size_t> domains;
  for (const RouterId r : topo.stub_routers) {
    const std::size_t d = topo.stub_domain_of[r.value()];
    ASSERT_LT(d, topo.num_stub_domains);
    domains.insert(d);
  }
  EXPECT_EQ(domains.size(), topo.num_stub_domains);
}

TEST(TransitStub, DeterministicForSeed) {
  Rng r1(77), r2(77);
  const auto t1 = generate_transit_stub(test::small_topology(), r1);
  const auto t2 = generate_transit_stub(test::small_topology(), r2);
  EXPECT_EQ(t1.graph.num_edges(), t2.graph.num_edges());
  const auto d1 = dijkstra(t1.graph, RouterId(0));
  const auto d2 = dijkstra(t2.graph, RouterId(0));
  EXPECT_EQ(d1, d2);
}

TEST(Hosts, ClusterAssignmentBalanced) {
  Rng rng(4);
  const auto topo = generate_transit_stub(test::small_topology(), rng);
  HostAttachmentParams params{.num_hosts = 16, .num_clusters = 4};
  const HostMap hosts = attach_hosts(topo, params, rng);
  ASSERT_EQ(hosts.num_hosts(), 16u);
  std::vector<std::size_t> per_cluster(4, 0);
  for (unsigned h = 0; h < 16; ++h) {
    ++per_cluster[hosts.cluster_of(NodeId(h))];
  }
  for (const std::size_t c : per_cluster) EXPECT_EQ(c, 4u);
}

TEST(Hosts, SameClusterSameStubDomain) {
  Rng rng(5);
  const auto topo = generate_transit_stub(test::small_topology(), rng);
  const HostMap hosts =
      attach_hosts(topo, {.num_hosts = 12, .num_clusters = 3}, rng);
  for (unsigned a = 0; a < 12; ++a) {
    for (unsigned b = a + 1; b < 12; ++b) {
      if (hosts.cluster_of(NodeId(a)) == hosts.cluster_of(NodeId(b))) {
        EXPECT_EQ(topo.stub_domain_of[hosts.router_of(NodeId(a)).value()],
                  topo.stub_domain_of[hosts.router_of(NodeId(b)).value()]);
      }
    }
  }
}

TEST(Hosts, DistinctRoutersWithinClusterWhenPossible) {
  Rng rng(6);
  const auto topo = generate_transit_stub(test::small_topology(), rng);
  // 5 routers per stub, 4 hosts per cluster: no sharing expected.
  const HostMap hosts =
      attach_hosts(topo, {.num_hosts = 16, .num_clusters = 4}, rng);
  std::set<RouterId> routers(hosts.attachment_routers().begin(),
                             hosts.attachment_routers().end());
  EXPECT_EQ(routers.size(), 16u);
}

TEST(Hosts, IntraClusterCloserThanInterCluster) {
  Rng rng(8);
  const auto topo = generate_transit_stub(test::small_topology(), rng);
  const HostMap hosts =
      attach_hosts(topo, {.num_hosts = 16, .num_clusters = 4}, rng);
  DistanceOracle oracle(topo.graph);
  double intra_sum = 0.0, inter_sum = 0.0;
  std::size_t intra_n = 0, inter_n = 0;
  for (unsigned a = 0; a < 16; ++a) {
    for (unsigned b = a + 1; b < 16; ++b) {
      const double d = hosts.unicast_delay(NodeId(a), NodeId(b), oracle);
      if (hosts.cluster_of(NodeId(a)) == hosts.cluster_of(NodeId(b))) {
        intra_sum += d;
        ++intra_n;
      } else {
        inter_sum += d;
        ++inter_n;
      }
    }
  }
  ASSERT_GT(intra_n, 0u);
  ASSERT_GT(inter_n, 0u);
  EXPECT_LT(intra_sum / intra_n, inter_sum / inter_n)
      << "clustered hosts should be closer to each other on average";
}

}  // namespace
}  // namespace decseq::topology
