// Tests for the per-message tracer: event sequences must mirror the
// protocol's three phases (ingress -> sequencing -> distribution).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "pubsub/system.h"
#include "tests/test_util.h"

namespace decseq::protocol {
namespace {

using test::N;

TEST(Trace, DisabledByDefaultAndFree) {
  pubsub::PubSubSystem system(test::small_config(101));
  const GroupId g = system.create_group({N(0), N(1)});
  system.publish(N(0), g);
  system.run();
  EXPECT_FALSE(system.network().tracer().enabled());
  EXPECT_TRUE(system.network().tracer().events().empty());
}

TEST(Trace, SingleGroupLifecycle) {
  pubsub::PubSubSystem system(test::small_config(102));
  const GroupId g = system.create_group({N(0), N(1), N(2)});
  auto& tracer = system.network_mutable().tracer();
  tracer.enable();
  const MsgId id = system.publish(N(0), g, 5);
  system.run();

  const auto events = tracer.for_message(id);
  ASSERT_GE(events.size(), 1u + 1u + 1u + 3u);  // publish+ingress+exit+3 dlv
  EXPECT_EQ(events.front().kind, TraceEvent::Kind::kPublished);
  EXPECT_EQ(events.front().endpoint, N(0));
  EXPECT_EQ(events[1].kind, TraceEvent::Kind::kIngress);
  EXPECT_EQ(events[1].seq, 1u);  // first message of the group
  std::size_t delivered = 0, exited = 0;
  for (const auto& e : events) {
    if (e.kind == TraceEvent::Kind::kDelivered) ++delivered;
    if (e.kind == TraceEvent::Kind::kExited) ++exited;
  }
  EXPECT_EQ(exited, 1u);
  EXPECT_EQ(delivered, 3u);
  // Times never go backward along the trace.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].at, events[i - 1].at);
  }
}

TEST(Trace, OverlapMessageGetsStamped) {
  pubsub::PubSubSystem system(test::small_config(103));
  const GroupId g0 = system.create_group({N(0), N(1), N(2)});
  system.create_group({N(1), N(2), N(3)});
  auto& tracer = system.network_mutable().tracer();
  tracer.enable();
  const MsgId id = system.publish(N(0), g0);
  system.run();

  std::size_t stamped = 0;
  for (const auto& e : tracer.for_message(id)) {
    if (e.kind == TraceEvent::Kind::kStamped) {
      ++stamped;
      EXPECT_EQ(e.seq, 1u);
    }
  }
  EXPECT_EQ(stamped, 1u) << "one overlap atom stamps the message";
}

TEST(Trace, FormatIsHumanReadable) {
  pubsub::PubSubSystem system(test::small_config(104));
  const GroupId g = system.create_group({N(0), N(1)});
  auto& tracer = system.network_mutable().tracer();
  tracer.enable();
  const MsgId id = system.publish(N(0), g);
  system.run();
  const std::string text = tracer.format(id);
  EXPECT_NE(text.find("published by node 0"), std::string::npos);
  EXPECT_NE(text.find("ingress"), std::string::npos);
  EXPECT_NE(text.find("delivered to node"), std::string::npos);
}

TEST(Trace, TracingIsInvisibleAndDeterministic) {
  // Tracing must be a pure observer: on a fixed seed, a tracing-enabled run
  // produces the same delivery log (every field, including times) as an
  // untraced run, and two traced runs produce identical trace contents.
  // This is the golden guard for the pooled-ring tracer — record() sits on
  // the hot stamping/forwarding path and must not perturb the schedule.
  struct Result {
    std::vector<std::string> log;
    std::string traces;
  };
  const auto run_once = [](bool traced) {
    pubsub::PubSubSystem system(test::small_config(105));
    const GroupId g0 = system.create_group({N(0), N(1), N(2), N(3)});
    const GroupId g1 = system.create_group({N(2), N(3), N(4), N(5)});
    if (traced) system.network_mutable().tracer().enable();
    std::vector<MsgId> ids;
    for (unsigned i = 0; i < 10; ++i) {
      ids.push_back(
          system.publish(N(i % 6), (i % 2 != 0) ? g1 : g0, 100 + i));
    }
    system.run();
    Result r;
    for (const auto& d : system.deliveries()) {
      std::ostringstream line;
      line << d.receiver << ' ' << d.message << ' ' << d.group << ' '
           << d.sender << ' ' << d.payload << ' ' << d.sent_at << ' '
           << d.delivered_at;
      r.log.push_back(line.str());
    }
    if (traced) {
      for (const MsgId id : ids) r.traces += system.trace(id) + "\n";
    }
    return r;
  };

  const Result untraced = run_once(false);
  const Result traced_a = run_once(true);
  const Result traced_b = run_once(true);
  EXPECT_EQ(untraced.log, traced_a.log)
      << "enabling the tracer changed what the application observed";
  EXPECT_EQ(traced_a.log, traced_b.log);
  EXPECT_FALSE(traced_a.traces.empty());
  EXPECT_EQ(traced_a.traces, traced_b.traces)
      << "trace contents must be a deterministic function of the seed";
}

TEST(Trace, ReEnableSameCapacityKeepsEvents) {
  // enable() is idempotent for a given capacity: re-enabling must not wipe
  // the ring (callers toggle tracing around phases), while changing the
  // capacity re-sizes storage and starts fresh.
  Tracer tracer;
  tracer.enable(/*capacity=*/8);
  for (unsigned i = 0; i < 3; ++i) {
    tracer.record({TraceEvent::Kind::kPublished, MsgId(i), 0.0, AtomId{},
                   SeqNodeId{}, N(0), 0});
  }
  tracer.enable(/*capacity=*/8);
  EXPECT_EQ(tracer.events().size(), 3u);
  tracer.enable(/*capacity=*/16);
  EXPECT_TRUE(tracer.events().empty()) << "capacity change starts fresh";
}

TEST(Trace, RingBufferBounded) {
  Tracer tracer;
  tracer.enable(/*capacity=*/4);
  for (unsigned i = 0; i < 10; ++i) {
    tracer.record({TraceEvent::Kind::kPublished, MsgId(i), 0.0, AtomId{},
                   SeqNodeId{}, N(0), 0});
  }
  EXPECT_EQ(tracer.events().size(), 4u);
  EXPECT_EQ(tracer.events().front().message, MsgId(6));
  tracer.clear();
  EXPECT_TRUE(tracer.events().empty());
}

}  // namespace
}  // namespace decseq::protocol
