// Tests for the per-message tracer: event sequences must mirror the
// protocol's three phases (ingress -> sequencing -> distribution).
#include <gtest/gtest.h>

#include "pubsub/system.h"
#include "tests/test_util.h"

namespace decseq::protocol {
namespace {

using test::N;

TEST(Trace, DisabledByDefaultAndFree) {
  pubsub::PubSubSystem system(test::small_config(101));
  const GroupId g = system.create_group({N(0), N(1)});
  system.publish(N(0), g);
  system.run();
  EXPECT_FALSE(system.network().tracer().enabled());
  EXPECT_TRUE(system.network().tracer().events().empty());
}

TEST(Trace, SingleGroupLifecycle) {
  pubsub::PubSubSystem system(test::small_config(102));
  const GroupId g = system.create_group({N(0), N(1), N(2)});
  auto& tracer = system.network_mutable().tracer();
  tracer.enable();
  const MsgId id = system.publish(N(0), g, 5);
  system.run();

  const auto events = tracer.for_message(id);
  ASSERT_GE(events.size(), 1u + 1u + 1u + 3u);  // publish+ingress+exit+3 dlv
  EXPECT_EQ(events.front().kind, TraceEvent::Kind::kPublished);
  EXPECT_EQ(events.front().endpoint, N(0));
  EXPECT_EQ(events[1].kind, TraceEvent::Kind::kIngress);
  EXPECT_EQ(events[1].seq, 1u);  // first message of the group
  std::size_t delivered = 0, exited = 0;
  for (const auto& e : events) {
    if (e.kind == TraceEvent::Kind::kDelivered) ++delivered;
    if (e.kind == TraceEvent::Kind::kExited) ++exited;
  }
  EXPECT_EQ(exited, 1u);
  EXPECT_EQ(delivered, 3u);
  // Times never go backward along the trace.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].at, events[i - 1].at);
  }
}

TEST(Trace, OverlapMessageGetsStamped) {
  pubsub::PubSubSystem system(test::small_config(103));
  const GroupId g0 = system.create_group({N(0), N(1), N(2)});
  system.create_group({N(1), N(2), N(3)});
  auto& tracer = system.network_mutable().tracer();
  tracer.enable();
  const MsgId id = system.publish(N(0), g0);
  system.run();

  std::size_t stamped = 0;
  for (const auto& e : tracer.for_message(id)) {
    if (e.kind == TraceEvent::Kind::kStamped) {
      ++stamped;
      EXPECT_EQ(e.seq, 1u);
    }
  }
  EXPECT_EQ(stamped, 1u) << "one overlap atom stamps the message";
}

TEST(Trace, FormatIsHumanReadable) {
  pubsub::PubSubSystem system(test::small_config(104));
  const GroupId g = system.create_group({N(0), N(1)});
  auto& tracer = system.network_mutable().tracer();
  tracer.enable();
  const MsgId id = system.publish(N(0), g);
  system.run();
  const std::string text = tracer.format(id);
  EXPECT_NE(text.find("published by node 0"), std::string::npos);
  EXPECT_NE(text.find("ingress"), std::string::npos);
  EXPECT_NE(text.find("delivered to node"), std::string::npos);
}

TEST(Trace, RingBufferBounded) {
  Tracer tracer;
  tracer.enable(/*capacity=*/4);
  for (unsigned i = 0; i < 10; ++i) {
    tracer.record({TraceEvent::Kind::kPublished, MsgId(i), 0.0, AtomId{},
                   SeqNodeId{}, N(0), 0});
  }
  EXPECT_EQ(tracer.events().size(), 4u);
  EXPECT_EQ(tracer.events().front().message, MsgId(6));
  tracer.clear();
  EXPECT_TRUE(tracer.events().empty());
}

}  // namespace
}  // namespace decseq::protocol
