// Multi-process loopback cluster conformance suite — the headline test of
// the UDP transport backend.
//
// For each committed fuzz-corpus scenario: derive the lockstep workload
// (app/replay.h), run it on the in-memory PubSubSystem for the reference
// trace, then spawn one real `decseqd` process per rank, bootstrap them
// over UDP (JOIN → PEERS), and drive the same workload through the cluster
// via the control channels — one op at a time, waiting for its full
// delivery fan-out before issuing the next. On shutdown each daemon writes
// its per-receiver delivery trace; the suite requires the merged
// per-receiver traces to equal the simulator's exactly.
//
// Artifacts (cluster config, daemon logs, daemon traces, and a copy of the
// scenario) land in DECSEQ_CLUSTER_ARTIFACT_DIR if set (CI uploads it on
// failure), else a mkdtemp directory that is left on disk when the test
// fails.
//
// DECSEQ_CLUSTER_SCENARIO selects an extra corpus scenario for the
// rotating CI job; unset, that test is skipped (the two pinned scenarios
// always run).
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "fuzz/repro.h"
#include "app/cluster_config.h"
#include "app/decseqd.h"
#include "app/replay.h"
#include "transport/channel.h"
#include "transport/frame.h"
#include "transport/udp_transport.h"

namespace decseq::app {
namespace {

using transport::ChannelOptions;
using transport::ChannelSet;
using transport::EdgeId;
using transport::Frame;
using transport::FrameType;
using transport::Origin;
using transport::RecvChannel;
using transport::SendChannel;
using transport::UdpAddr;
using transport::UdpTransport;

/// (group, sender, payload) per receiver, in delivery order.
using Trace = std::map<std::uint32_t,
                       std::vector<std::tuple<std::uint32_t, std::uint32_t,
                                              std::uint64_t>>>;

std::string artifact_dir() {
  if (const char* dir = std::getenv("DECSEQ_CLUSTER_ARTIFACT_DIR")) {
    return dir;
  }
  char tmpl[] = "/tmp/decseq-cluster-XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir != nullptr ? dir : "/tmp";
}

/// The coordinator: spawns daemons, runs the bootstrap, drives the
/// lockstep workload over control channels, and collects the traces.
class ClusterHarness {
 public:
  // `repro_name` is either a bare corpus file name (resolved against the
  // committed corpus) or a path containing '/' (used verbatim — the CI
  // rotating job passes absolute paths).
  ClusterHarness(const std::string& repro_name, std::uint32_t num_ranks)
      : num_ranks_(num_ranks),
        dir_(artifact_dir() + "/" +
             repro_name.substr(repro_name.find_last_of('/') + 1) + "-r" +
             std::to_string(num_ranks)),
        rng_(77) {
    std::ignore = system(("mkdir -p " + dir_).c_str());
    const std::string repro_path =
        repro_name.find('/') != std::string::npos
            ? repro_name
            : std::string(DECSEQ_FUZZ_CORPUS_DIR) + "/" + repro_name;
    scenario_ = fuzz::load_repro(repro_path);
    script_ = script_from_scenario(scenario_);
    system_ = make_reference_system(script_);
    config_ = build_cluster_config(*system_, num_ranks,
                                   /*retransmit_timeout_ms=*/20.0,
                                   /*max_retransmits=*/400, /*seed=*/1234);
    config_path_ = dir_ + "/cluster.cfg";
    save_cluster_config(config_, config_path_);
    std::ignore =
        system(("cp " + repro_path + " " + dir_ + "/scenario.repro").c_str());

    ChannelOptions ctrl;
    ctrl.retransmit_timeout_ms = 20.0;
    ctrl.max_retransmits = 400;
    joined_.resize(num_ranks_);
    peer_addr_.resize(num_ranks_);
    for (std::uint32_t r = 0; r < num_ranks_; ++r) {
      cmd_out_.push_back(
          std::make_unique<SendChannel>(io_, rng_, /*edge=*/r, ctrl));
      channels_.add_sender(cmd_out_.back().get());
      report_in_.push_back(std::make_unique<RecvChannel>(
          io_, /*edge=*/num_ranks_ + r,
          [this](const std::uint8_t* payload, std::size_t size,
                 std::uint8_t) { on_report(payload, size); }));
      channels_.add_receiver(report_in_.back().get());
    }
    channels_.set_control_handler(
        [this](const Frame& frame, const Origin& origin) {
          if (frame.type == FrameType::kJoin) on_join(frame, origin);
        });
    io_.set_datagram_sink([this](const std::uint8_t* data, std::size_t size,
                                 const Origin& origin) {
      channels_.handle(data, size, origin);
    });
  }

  ~ClusterHarness() {
    for (const pid_t pid : pids_) {
      if (pid > 0 && kill(pid, 0) == 0) kill(pid, SIGKILL);
    }
    for (const pid_t pid : pids_) {
      if (pid > 0) waitpid(pid, nullptr, 0);
    }
  }

  [[nodiscard]] const ClusterScript& script() const { return script_; }
  [[nodiscard]] const std::string& dir() const { return dir_; }

  void spawn_daemons() {
    const std::uint16_t port = io_.local_addr().port;
    for (std::uint32_t r = 0; r < num_ranks_; ++r) {
      const std::string rank = std::to_string(r);
      const std::string trace = dir_ + "/trace-" + rank + ".txt";
      const std::string log = dir_ + "/daemon-" + rank + ".log";
      const std::string coord_port = std::to_string(port);
      const pid_t pid = fork();
      ASSERT_GE(pid, 0);
      if (pid == 0) {
        execl(DECSEQ_DECSEQD_PATH, "decseqd", "--config",
              config_path_.c_str(), "--rank", rank.c_str(),
              "--coordinator-port", coord_port.c_str(), "--trace",
              trace.c_str(), "--log", log.c_str(),
              static_cast<char*>(nullptr));
        _exit(127);  // exec failed
      }
      pids_.push_back(pid);
    }
  }

  void await_ready(double timeout_ms) {
    pump_until([this] { return ready_ == num_ranks_; }, timeout_ms);
    ASSERT_EQ(ready_, num_ranks_) << "cluster bootstrap timed out";
  }

  /// Issue one op and wait for its complete delivery fan-out (lockstep).
  void run_op(const ScriptOp& op) {
    Command command;
    command.kind = op.kind == ScriptOp::Kind::kTerminate
                       ? Command::Kind::kTerminate
                       : Command::Kind::kPublish;
    command.ordinal = op.ordinal;
    command.sender = op.sender;
    command.group = op.group;
    command.payload = op.ordinal;
    const auto bytes = encode_command(command);
    const std::uint32_t rank = config_.hosts[op.sender].rank;
    cmd_out_[rank]->send(bytes.data(), bytes.size());

    const std::size_t expected = script_.groups[op.group].size();
    auto& count = op_events_[op.ordinal];
    pump_until([&count, expected] { return count >= expected; },
               /*timeout_ms=*/30000.0);
    ASSERT_EQ(count, expected)
        << "op " << op.ordinal << " (group " << op.group
        << ") delivered at " << count << "/" << expected
        << " members before timeout";
  }

  void shutdown_and_wait() {
    Command command;
    command.kind = Command::Kind::kShutdown;
    const auto bytes = encode_command(command);
    for (auto& out : cmd_out_) out->send(bytes.data(), bytes.size());

    // Keep pumping so the shutdown commands (and their acks) flow while
    // the daemons wind down.
    const double deadline = io_.now_ms() + 30000.0;
    std::vector<bool> exited(pids_.size(), false);
    std::size_t running = pids_.size();
    while (running > 0 && io_.now_ms() < deadline) {
      io_.poll(5.0);
      for (std::size_t i = 0; i < pids_.size(); ++i) {
        if (exited[i]) continue;
        int status = 0;
        const pid_t done = waitpid(pids_[i], &status, WNOHANG);
        if (done == pids_[i]) {
          exited[i] = true;
          --running;
          EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
              << "rank " << i << " exited abnormally (status " << status
              << "); logs in " << dir_;
          pids_[i] = -1;
        }
      }
    }
    ASSERT_EQ(running, 0u) << "daemons did not exit; logs in " << dir_;
  }

  /// Parse every rank's trace file into one per-receiver trace, checking
  /// per-(receiver, group) sequence numbers are gapless along the way.
  Trace collect_traces() {
    Trace trace;
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t>
        last_seq;
    for (std::uint32_t r = 0; r < num_ranks_; ++r) {
      std::ifstream in(dir_ + "/trace-" + std::to_string(r) + ".txt");
      EXPECT_TRUE(in.good()) << "missing trace for rank " << r;
      std::string line;
      while (std::getline(in, line)) {
        std::istringstream tokens(line);
        std::string tag;
        std::uint32_t receiver = 0, group = 0, sender = 0;
        std::uint64_t payload = 0, group_seq = 0;
        tokens >> tag >> receiver >> group >> sender >> payload >> group_seq;
        EXPECT_EQ(tag, "deliver");
        trace[receiver].emplace_back(group, sender, payload);
        auto& last = last_seq[{receiver, group}];
        EXPECT_EQ(group_seq, last + 1)
            << "receiver " << receiver << " group " << group
            << " has a sequence gap";
        last = group_seq;
      }
    }
    return trace;
  }

  [[nodiscard]] const Trace& report_trace() const { return report_trace_; }

 private:
  void on_join(const Frame& frame, const Origin& origin) {
    const auto rank = static_cast<std::uint32_t>(frame.seq);
    if (rank >= num_ranks_) return;
    if (!joined_[rank]) {
      joined_[rank] = true;
      peer_addr_[rank] = {origin.ip_be, origin.port};
      io_.add_edge(/*cmd edge*/ rank, peer_addr_[rank]);
      io_.add_edge(/*report edge*/ num_ranks_ + rank, peer_addr_[rank]);
      ++joined_count_;
    }
    if (joined_count_ < num_ranks_) return;
    // All ranks known: answer this (and every later re-)JOIN with the
    // address book. Daemons re-JOIN until they see it, so a lost PEERS
    // datagram only costs a retry round.
    std::vector<transport::PeerAddr> peers;
    for (std::uint32_t r = 0; r < num_ranks_; ++r) {
      peers.push_back({r, peer_addr_[r].ip_be, peer_addr_[r].port});
    }
    const auto payload = transport::encode_peers(peers);
    const auto reply =
        transport::encode_frame(FrameType::kPeers, 0, 0, peers.size(),
                                payload.data(), payload.size());
    io_.send_to({origin.ip_be, origin.port}, reply.data(), reply.size());
  }

  void on_report(const std::uint8_t* payload, std::size_t size) {
    const auto report = decode_report(payload, size);
    ASSERT_TRUE(report.has_value());
    switch (report->kind) {
      case Report::Kind::kReady:
        ++ready_;
        break;
      case Report::Kind::kDelivery:
        report_trace_[report->receiver].emplace_back(
            report->group, report->sender, report->payload);
        ++op_events_[static_cast<std::uint32_t>(report->payload)];
        break;
      case Report::Kind::kFin:
        ++op_events_[static_cast<std::uint32_t>(report->payload)];
        break;
      case Report::Kind::kRejected:
        // Lockstep leaves no room for a FIN race; a rejection means the
        // cluster diverged from the script.
        ADD_FAILURE() << "unexpected ingress rejection: group "
                      << report->group << " payload " << report->payload;
        break;
    }
  }

  template <typename Stop>
  void pump_until(Stop stop, double timeout_ms) {
    const double deadline = io_.now_ms() + timeout_ms;
    while (!stop() && io_.now_ms() < deadline) io_.poll(5.0);
  }

  std::uint32_t num_ranks_;
  std::string dir_;
  Rng rng_;
  fuzz::Scenario scenario_;
  ClusterScript script_;
  std::unique_ptr<pubsub::PubSubSystem> system_;
  ClusterConfig config_;
  std::string config_path_;

  UdpTransport io_;
  ChannelSet channels_;
  std::vector<std::unique_ptr<SendChannel>> cmd_out_;
  std::vector<std::unique_ptr<RecvChannel>> report_in_;
  std::vector<char> joined_;
  std::vector<UdpAddr> peer_addr_;
  std::uint32_t joined_count_ = 0;
  std::uint32_t ready_ = 0;
  std::map<std::uint32_t, std::size_t> op_events_;
  Trace report_trace_;
  std::vector<pid_t> pids_;
};

Trace reference_trace(const std::vector<pubsub::Delivery>& deliveries) {
  Trace trace;
  for (const pubsub::Delivery& d : deliveries) {
    trace[d.receiver.value()].emplace_back(d.group.value(), d.sender.value(),
                                           d.payload);
  }
  return trace;
}

void run_cluster_conformance(const std::string& repro,
                             std::uint32_t num_ranks) {
  ClusterHarness harness(repro, num_ranks);
  ASSERT_FALSE(harness.script().ops.empty());
  SCOPED_TRACE("artifacts in " + harness.dir());

  harness.spawn_daemons();
  harness.await_ready(/*timeout_ms=*/30000.0);
  if (::testing::Test::HasFatalFailure()) return;

  for (const ScriptOp& op : harness.script().ops) {
    harness.run_op(op);
    if (::testing::Test::HasFatalFailure()) return;
  }
  harness.shutdown_and_wait();
  if (::testing::Test::HasFatalFailure()) return;

  // The reference run happens after the cluster run purely for ordering
  // convenience; both executions are fully determined by the script.
  auto system = make_reference_system(harness.script());
  const Trace expected =
      reference_trace(run_reference(harness.script(), *system));

  const Trace actual = harness.collect_traces();
  EXPECT_EQ(actual, expected)
      << "per-receiver delivery traces diverged; artifacts in "
      << harness.dir();
  // The live report stream must agree with the written traces — same
  // deliveries observed two ways.
  EXPECT_EQ(harness.report_trace(), expected);
}

TEST(TransportCluster, ConformsOnCorpusSeed7) {
  run_cluster_conformance("seed-7.repro", /*num_ranks=*/4);
}

TEST(TransportCluster, ConformsOnCorpusSeed1) {
  run_cluster_conformance("seed-1.repro", /*num_ranks=*/4);
}

TEST(TransportCluster, ConformsOnRotatingScenario) {
  const char* scenario = std::getenv("DECSEQ_CLUSTER_SCENARIO");
  if (scenario == nullptr || scenario[0] == '\0') {
    GTEST_SKIP() << "DECSEQ_CLUSTER_SCENARIO not set";
  }
  run_cluster_conformance(scenario, /*num_ranks=*/4);
}

}  // namespace
}  // namespace decseq::app
