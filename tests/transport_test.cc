// Transport layer tests: frame wire format and robustness, reliable
// channels over the simulated fabric, a real-UDP loopback channel, and the
// in-process cluster conformance check — NodeEngine ranks over
// SimTransport replaying committed fuzz scenarios against the in-memory
// PubSubSystem (the single-process twin of tests/transport_cluster_test).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "fuzz/repro.h"
#include "app/cluster_config.h"
#include "app/decseqd.h"
#include "app/replay.h"
#include "protocol/codec.h"
#include "sim/simulator.h"
#include "transport/channel.h"
#include "transport/frame.h"
#include "transport/sim_transport.h"
#include "transport/udp_transport.h"

namespace decseq::transport {
namespace {

// --- Frame format --------------------------------------------------------

TEST(Frame, Crc32MatchesIeeeCheckVector) {
  // The canonical CRC-32 check value: crc32("123456789") = 0xCBF43926
  // pins polynomial, reflection, init, and final xor all at once.
  const std::uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(digits, sizeof(digits)), 0xCBF43926u);
}

TEST(Frame, Crc32ChainsIncrementally) {
  const std::uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  const std::uint32_t prefix = crc32(digits, 4);
  EXPECT_EQ(crc32(digits + 4, 5, prefix), 0xCBF43926u);
}

TEST(Frame, GoldenLayout) {
  // Pin every byte position of the 24-byte header. Together with the CRC
  // check-vector test this makes the format platform-stable: any change to
  // field order, width, or endianness lands here.
  const std::uint8_t payload[] = {0xAA, 0xBB};
  const auto frame =
      encode_frame(FrameType::kData, kFrameFlagFin, /*edge=*/0x01020304,
                   /*seq=*/0x1122334455667788ULL, payload, sizeof(payload));
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + sizeof(payload));

  std::vector<std::uint8_t> expected = {
      0xDC, 0x5E,              // magic
      0x01,                    // version
      0x01,                    // type = DATA
      0x01,                    // flags = FIN
      0x00, 0x00, 0x00,        // reserved
      0x04, 0x03, 0x02, 0x01,  // edge id, little-endian
      0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,  // seq, little-endian
      0x00, 0x00, 0x00, 0x00,  // CRC placeholder (zeroed for computation)
      0xAA, 0xBB,              // payload verbatim
  };
  const std::uint32_t crc = crc32(expected.data(), expected.size());
  expected[20] = static_cast<std::uint8_t>(crc);
  expected[21] = static_cast<std::uint8_t>(crc >> 8);
  expected[22] = static_cast<std::uint8_t>(crc >> 16);
  expected[23] = static_cast<std::uint8_t>(crc >> 24);
  EXPECT_EQ(frame, expected);

  const auto decoded = decode_frame(frame.data(), frame.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, FrameType::kData);
  EXPECT_EQ(decoded->flags, kFrameFlagFin);
  EXPECT_EQ(decoded->edge, 0x01020304u);
  EXPECT_EQ(decoded->seq, 0x1122334455667788ULL);
  ASSERT_EQ(decoded->payload_size, 2u);
  EXPECT_EQ(decoded->payload[0], 0xAA);
  EXPECT_EQ(decoded->payload[1], 0xBB);
}

TEST(Frame, RejectsEveryTruncation) {
  const std::uint8_t payload[] = {1, 2, 3, 4, 5};
  const auto frame = encode_frame(FrameType::kData, 0, 7, 9, payload,
                                  sizeof(payload));
  for (std::size_t n = 0; n < frame.size(); ++n) {
    EXPECT_FALSE(decode_frame(frame.data(), n).has_value())
        << "prefix of " << n << " bytes decoded";
  }
  EXPECT_TRUE(decode_frame(frame.data(), frame.size()).has_value());
}

TEST(Frame, RejectsEveryBitFlip) {
  const std::uint8_t payload[] = {0x10, 0x20, 0x30};
  const auto frame =
      encode_frame(FrameType::kAck, 0, 123, 456, payload, sizeof(payload));
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupt = frame;
      corrupt[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_FALSE(decode_frame(corrupt.data(), corrupt.size()).has_value())
          << "flip of byte " << byte << " bit " << bit << " survived";
    }
  }
}

TEST(Frame, RejectsRandomGarbage) {
  Rng rng(2026);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t size = rng.next_below(81);
    std::vector<std::uint8_t> junk(size);
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.next_below(256));
    }
    const auto decoded = decode_frame(junk.data(), junk.size());
    // A random buffer passing magic + version + reserved + CRC checks is a
    // ~2^-80 event; with a fixed seed this is deterministic anyway.
    EXPECT_FALSE(decoded.has_value());
  }
}

TEST(Frame, PeersAddressBookRoundTrips) {
  const std::vector<PeerAddr> peers = {
      {0, 0x0100007F, 40001},  // 127.0.0.1 network order
      {1, 0x0100007F, 40002},
      {2, 0xFFFFFFFF, 65535},
  };
  const auto payload = encode_peers(peers);
  const auto frame = encode_frame(FrameType::kPeers, 0, 0, peers.size(),
                                  payload.data(), payload.size());
  const auto decoded = decode_frame(frame.data(), frame.size());
  ASSERT_TRUE(decoded.has_value());
  const auto book = decode_peers(*decoded);
  ASSERT_TRUE(book.has_value());
  ASSERT_EQ(book->size(), peers.size());
  for (std::size_t i = 0; i < peers.size(); ++i) {
    EXPECT_EQ((*book)[i].rank, peers[i].rank);
    EXPECT_EQ((*book)[i].ip_be, peers[i].ip_be);
    EXPECT_EQ((*book)[i].port, peers[i].port);
  }
}

// --- Reliable channels over the simulated fabric -------------------------

/// Two endpoints joined by one chaotic edge, with a channel pair on it.
struct SimLink {
  sim::Simulator sim;
  SimNet net{sim, 99};
  Rng rng{7};
  ChannelSet set_a;
  ChannelSet set_b;
  std::unique_ptr<SendChannel> sender;
  std::unique_ptr<RecvChannel> receiver;
  std::vector<std::uint64_t> received;

  explicit SimLink(SimEdgeOptions options, ChannelOptions channel = {}) {
    net.add_endpoints(2);
    net.add_edge(1, 0, 1, options);
    sender = std::make_unique<SendChannel>(net.endpoint(0), rng, 1, channel);
    receiver = std::make_unique<RecvChannel>(
        net.endpoint(1), 1,
        [this](const std::uint8_t* payload, std::size_t size, std::uint8_t) {
          std::vector<std::uint8_t> buffer(payload, payload + size);
          std::size_t offset = 0;
          const auto value = protocol::decode_varint(buffer, offset);
          ASSERT_TRUE(value.has_value());
          received.push_back(*value);
        });
    set_a.add_sender(sender.get());
    set_b.add_receiver(receiver.get());
    net.endpoint(0).set_datagram_sink(
        [this](const std::uint8_t* d, std::size_t n, const Origin& o) {
          set_a.handle(d, n, o);
        });
    net.endpoint(1).set_datagram_sink(
        [this](const std::uint8_t* d, std::size_t n, const Origin& o) {
          set_b.handle(d, n, o);
        });
  }

  void send_value(std::uint64_t value) {
    std::vector<std::uint8_t> payload;
    protocol::encode_varint(value, payload);
    sender->send(payload.data(), payload.size());
  }
};

TEST(Channel, InOrderExactlyOnceUnderLossDupAndReorder) {
  SimEdgeOptions chaos;
  chaos.loss_probability = 0.3;
  chaos.duplicate_probability = 0.15;
  chaos.jitter_ms = 2.0;  // enough to genuinely reorder in flight
  ChannelOptions options;
  options.retransmit_timeout_ms = 5.0;
  SimLink link(chaos, options);

  constexpr std::uint64_t kCount = 500;
  for (std::uint64_t i = 0; i < kCount; ++i) link.send_value(i);
  link.sim.run();

  ASSERT_EQ(link.received.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) EXPECT_EQ(link.received[i], i);
  EXPECT_EQ(link.sender->unacked(), 0u);
  EXPECT_FALSE(link.sender->faulted());
  // The chaos actually happened: more transmissions than payloads, drops
  // recorded by the fabric, and everything that arrived was accepted.
  EXPECT_GT(link.sender->transmissions(), kCount);
  EXPECT_GT(link.net.datagrams_dropped(), 0u);
  EXPECT_EQ(link.set_b.rejected(), 0u);
}

TEST(Channel, FaultSurfacesOnOutageAndClearsOnRecovery) {
  SimEdgeOptions healthy;  // default: lossless
  ChannelOptions options;
  options.retransmit_timeout_ms = 4.0;
  options.max_retransmits = 3;
  SimLink link(healthy, options);

  std::vector<ChannelFault> faults;
  link.sender->set_fault_callback(
      [&faults](const ChannelFault& fault) { faults.push_back(fault); });

  // Total outage: every datagram (data and acks alike) is lost.
  SimEdgeOptions outage;
  outage.loss_probability = 1.0;
  link.net.set_edge_options(1, outage);

  link.send_value(42);
  link.sim.run_until(link.sim.now() + 2000.0);
  ASSERT_TRUE(link.sender->faulted());
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_GT(faults[0].attempts, 3u);
  EXPECT_TRUE(link.received.empty());

  // The channel must keep probing while faulted — lift the outage and the
  // next probe delivers, the ack drains the window, the fault clears.
  link.net.set_edge_options(1, healthy);
  link.sim.run();
  ASSERT_EQ(link.received.size(), 1u);
  EXPECT_EQ(link.received[0], 42u);
  EXPECT_FALSE(link.sender->faulted());
  EXPECT_EQ(link.sender->unacked(), 0u);
}

TEST(Channel, GarbageDatagramsAreCountedNotActedOn) {
  SimLink link(SimEdgeOptions{});
  Rng rng(5);
  Origin origin;

  // Garbage of every flavor into the receiving demultiplexer: random
  // bytes, truncated real frames, bit-flipped real frames, and real frames
  // for an unknown edge.
  std::vector<std::uint8_t> payload = {0x55};
  const auto real = encode_frame(FrameType::kData, 0, 1, 0, payload.data(),
                                 payload.size());
  std::size_t fed = 0;
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> junk(rng.next_below(65));
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.next_below(256));
    }
    link.set_b.handle(junk.data(), junk.size(), origin);
    ++fed;
  }
  for (std::size_t n = 0; n < real.size(); ++n) {
    link.set_b.handle(real.data(), n, origin);
    ++fed;
  }
  for (std::size_t byte = 0; byte < real.size(); ++byte) {
    auto corrupt = real;
    corrupt[byte] ^= 0x40;
    link.set_b.handle(corrupt.data(), corrupt.size(), origin);
    ++fed;
  }
  const auto unknown_edge =
      encode_frame(FrameType::kData, 0, 999, 0, payload.data(),
                   payload.size());
  link.set_b.handle(unknown_edge.data(), unknown_edge.size(), origin);
  ++fed;

  EXPECT_EQ(link.set_b.rejected(), fed);
  EXPECT_TRUE(link.received.empty());
  EXPECT_EQ(link.receiver->next_deliver_seq(), 0u);

  // The channel still works: none of the garbage desynced anything.
  link.send_value(7);
  link.send_value(8);
  link.sim.run();
  ASSERT_EQ(link.received.size(), 2u);
  EXPECT_EQ(link.received[0], 7u);
  EXPECT_EQ(link.received[1], 8u);
}

TEST(Channel, InsaneSequenceNumberCannotSizeAnAllocation) {
  SimLink link(SimEdgeOptions{});
  Origin origin;
  std::vector<std::uint8_t> payload = {0x01};
  // A validly-framed DATA packet whose seq is absurd: beyond the reorder
  // window it must be dropped (and counted), not buffered at index 2^60.
  const auto insane = encode_frame(FrameType::kData, 0, 1, 1ULL << 60,
                                   payload.data(), payload.size());
  EXPECT_FALSE(link.set_b.handle(insane.data(), insane.size(), origin));
  EXPECT_EQ(link.set_b.rejected(), 1u);
  EXPECT_EQ(link.receiver->reorder_buffered(), 0u);

  const auto edge_of_window =
      encode_frame(FrameType::kData, 0, 1, RecvChannel::kMaxReorderWindow - 1,
                   payload.data(), payload.size());
  EXPECT_TRUE(
      link.set_b.handle(edge_of_window.data(), edge_of_window.size(), origin));
  EXPECT_EQ(link.receiver->reorder_buffered(), 1u);
}

TEST(Channel, BeyondWindowDropIsStillAckedCumulatively) {
  SimLink link(SimEdgeOptions{});
  // Advance the channel a little so the cumulative ack is distinguishable
  // from the initial zero.
  link.send_value(0);
  link.send_value(1);
  link.send_value(2);
  link.sim.run();
  ASSERT_EQ(link.receiver->next_deliver_seq(), 3u);

  // Capture every frame the receiver's endpoint sends back to the sender.
  std::vector<std::uint64_t> acks;
  link.net.endpoint(0).set_datagram_sink(
      [&acks](const std::uint8_t* d, std::size_t n, const Origin&) {
        const auto frame = decode_frame(d, n);
        ASSERT_TRUE(frame.has_value());
        if (frame->type == FrameType::kAck) acks.push_back(frame->seq);
      });

  // A packet a full window beyond the head must be dropped (never sized
  // into the reorder ring) — but the drop still produces a cumulative ack
  // of the highest-contiguous seq, so a sender stalled behind a lost head
  // learns where the receiver actually is instead of retransmitting its
  // whole window forever.
  std::vector<std::uint8_t> payload = {0x01};
  const auto beyond =
      encode_frame(FrameType::kData, 0, 1, 3 + RecvChannel::kMaxReorderWindow,
                   payload.data(), payload.size());
  Origin origin;
  EXPECT_FALSE(link.set_b.handle(beyond.data(), beyond.size(), origin));
  link.sim.run();
  EXPECT_EQ(link.receiver->window_overruns(), 1u);
  EXPECT_EQ(link.receiver->reorder_buffered(), 0u);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0], 3u);

  // The overrun desynced nothing: restore the ack path and the channel
  // keeps delivering in order.
  link.net.endpoint(0).set_datagram_sink(
      [&link](const std::uint8_t* d, std::size_t n, const Origin& o) {
        link.set_a.handle(d, n, o);
      });
  link.send_value(3);
  link.sim.run();
  ASSERT_EQ(link.received.size(), 4u);
  EXPECT_EQ(link.received.back(), 3u);
  EXPECT_EQ(link.sender->unacked(), 0u);
}

// --- Real-UDP loopback channel -------------------------------------------

TEST(UdpChannel, LoopbackDeliversInOrder) {
  UdpTransport a;
  UdpTransport b;
  a.add_edge(1, b.local_addr());
  b.add_edge(1, a.local_addr());

  Rng rng(3);
  ChannelOptions options;
  options.retransmit_timeout_ms = 5.0;
  SendChannel sender(a, rng, 1, options);
  std::vector<std::uint64_t> received;
  RecvChannel receiver(
      b, 1,
      [&received](const std::uint8_t* payload, std::size_t size,
                  std::uint8_t) {
        std::vector<std::uint8_t> buffer(payload, payload + size);
        std::size_t offset = 0;
        received.push_back(*protocol::decode_varint(buffer, offset));
      });
  ChannelSet set_a;
  ChannelSet set_b;
  set_a.add_sender(&sender);
  set_b.add_receiver(&receiver);
  a.set_datagram_sink([&set_a](const std::uint8_t* d, std::size_t n,
                               const Origin& o) { set_a.handle(d, n, o); });
  b.set_datagram_sink([&set_b](const std::uint8_t* d, std::size_t n,
                               const Origin& o) { set_b.handle(d, n, o); });

  constexpr std::uint64_t kCount = 100;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    std::vector<std::uint8_t> payload;
    protocol::encode_varint(i, payload);
    sender.send(payload.data(), payload.size());
  }
  // Real time: pump both endpoints until delivered or a generous deadline.
  const double deadline = a.now_ms() + 10000.0;
  while ((received.size() < kCount || sender.unacked() > 0) &&
         a.now_ms() < deadline) {
    a.poll(1.0);
    b.poll(1.0);
  }
  ASSERT_EQ(received.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) EXPECT_EQ(received[i], i);
  EXPECT_EQ(sender.unacked(), 0u);
  EXPECT_FALSE(sender.faulted());
}

// --- In-process cluster conformance --------------------------------------

/// (group, sender, payload) per receiver, in delivery order — the trace
/// shape both executions are reduced to.
using Trace = std::map<std::uint32_t,
                       std::vector<std::tuple<std::uint32_t, std::uint32_t,
                                              std::uint64_t>>>;

Trace reference_trace(const std::vector<pubsub::Delivery>& deliveries) {
  Trace trace;
  for (const pubsub::Delivery& d : deliveries) {
    trace[d.receiver.value()].emplace_back(d.group.value(), d.sender.value(),
                                           d.payload);
  }
  return trace;
}

/// Replay a committed fuzz scenario on `num_ranks` NodeEngines over a
/// chaotic SimNet and require the per-receiver delivery traces to equal
/// the in-memory PubSubSystem's on the same lockstep workload.
void run_sim_cluster_conformance(const std::string& repro,
                                 std::uint32_t num_ranks) {
  const std::string path =
      std::string(DECSEQ_FUZZ_CORPUS_DIR) + "/" + repro;
  const fuzz::Scenario scenario = fuzz::load_repro(path);
  const app::ClusterScript script = app::script_from_scenario(scenario);
  ASSERT_FALSE(script.ops.empty());

  auto system = app::make_reference_system(script);
  const app::ClusterConfig config = app::build_cluster_config(
      *system, num_ranks, /*retransmit_timeout_ms=*/5.0,
      /*max_retransmits=*/200, /*seed=*/1234);
  const Trace expected =
      reference_trace(app::run_reference(script, *system));

  sim::Simulator sim;
  SimNet net(sim, 4321);
  net.add_endpoints(num_ranks);
  SimEdgeOptions chaos;
  chaos.loss_probability = 0.1;
  chaos.duplicate_probability = 0.05;
  chaos.jitter_ms = 1.0;
  for (const app::EdgeSpec& edge : app::build_edge_table(config)) {
    if (edge.kind == app::EdgeKind::kControlCommand ||
        edge.kind == app::EdgeKind::kControlReport ||
        edge.src_rank == edge.dst_rank) {
      continue;
    }
    net.add_edge(edge.id, edge.src_rank, edge.dst_rank, chaos);
  }

  Trace actual;
  std::vector<std::unique_ptr<ChannelSet>> sets;
  std::vector<std::unique_ptr<app::NodeEngine>> engines;
  for (std::uint32_t r = 0; r < num_ranks; ++r) {
    sets.push_back(std::make_unique<ChannelSet>());
    engines.push_back(std::make_unique<app::NodeEngine>(
        net.endpoint(r), *sets.back(), config, r,
        [&actual](NodeId receiver, const protocol::Message& m, double) {
          if (m.is_fin()) return;  // the facade's log excludes FINs too
          actual[receiver.value()].emplace_back(
              m.group().value(), m.sender().value(), m.payload());
        }));
    ChannelSet* set = sets.back().get();
    net.endpoint(r).set_datagram_sink(
        [set](const std::uint8_t* d, std::size_t n, const Origin& o) {
          set->handle(d, n, o);
        });
  }

  for (const app::ScriptOp& op : script.ops) {
    const std::uint32_t rank = config.hosts[op.sender].rank;
    engines[rank]->publish(op.ordinal, NodeId(op.sender), GroupId(op.group),
                           op.ordinal,
                           op.kind == app::ScriptOp::Kind::kTerminate);
    sim.run();  // lockstep: full drain between ops
  }

  std::size_t delivered = 0;
  std::size_t fins = 0;
  for (std::uint32_t r = 0; r < num_ranks; ++r) {
    EXPECT_EQ(sets[r]->rejected(), 0u) << "rank " << r;
    EXPECT_EQ(engines[r]->faulted_channels(), 0u) << "rank " << r;
    delivered += engines[r]->stats().delivered;
    fins += engines[r]->stats().fins_delivered;
  }
  EXPECT_GT(delivered, 0u);
  EXPECT_EQ(actual, expected);
  (void)fins;
}

TEST(SimCluster, ConformsOnCorpusSeed7ThreeRanks) {
  run_sim_cluster_conformance("seed-7.repro", 3);
}

TEST(SimCluster, ConformsOnCorpusSeed1FourRanks) {
  run_sim_cluster_conformance("seed-1.repro", 4);
}

TEST(SimCluster, ConformsOnHostileSeed2TwoRanks) {
  run_sim_cluster_conformance("hostile-seed-2.repro", 2);
}

// --- Control codec -------------------------------------------------------

TEST(ControlCodec, CommandRoundTrips) {
  app::Command command;
  command.kind = app::Command::Kind::kTerminate;
  command.ordinal = 17;
  command.sender = 3;
  command.group = 5;
  command.payload = 0xABCDEF;
  const auto bytes = app::encode_command(command);
  const auto decoded = app::decode_command(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind, command.kind);
  EXPECT_EQ(decoded->ordinal, command.ordinal);
  EXPECT_EQ(decoded->sender, command.sender);
  EXPECT_EQ(decoded->group, command.group);
  EXPECT_EQ(decoded->payload, command.payload);
  EXPECT_FALSE(app::decode_command(bytes.data(), bytes.size() - 1));
}

TEST(ControlCodec, ReportRoundTrips) {
  app::Report report;
  report.kind = app::Report::Kind::kDelivery;
  report.rank = 2;
  report.receiver = 9;
  report.group = 4;
  report.sender = 11;
  report.payload = 77;
  report.group_seq = 13;
  const auto bytes = app::encode_report(report);
  const auto decoded = app::decode_report(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind, report.kind);
  EXPECT_EQ(decoded->rank, report.rank);
  EXPECT_EQ(decoded->receiver, report.receiver);
  EXPECT_EQ(decoded->group, report.group);
  EXPECT_EQ(decoded->sender, report.sender);
  EXPECT_EQ(decoded->payload, report.payload);
  EXPECT_EQ(decoded->group_seq, report.group_seq);
  EXPECT_FALSE(app::decode_report(bytes.data(), bytes.size() - 1));
}

}  // namespace
}  // namespace decseq::transport
