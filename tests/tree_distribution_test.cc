// Tests for runtime tree-based distribution: identical delivery semantics
// and timing to unicast-star distribution, with link-stress accounting.
#include <gtest/gtest.h>

#include "pubsub/system.h"
#include "tests/test_util.h"

namespace decseq::pubsub {
namespace {

using test::N;

TEST(TreeDistribution, SameDeliveriesAndTimesAsUnicast) {
  auto unicast_config = test::small_config(111);
  auto tree_config = test::small_config(111);  // same seed: same topology
  tree_config.network.tree_distribution = true;

  PubSubSystem unicast(unicast_config), tree(tree_config);
  for (PubSubSystem* system : {&unicast, &tree}) {
    const GroupId g0 = system->create_group({N(0), N(1), N(2), N(3)});
    const GroupId g1 = system->create_group({N(2), N(3), N(4), N(5)});
    for (int i = 0; i < 5; ++i) {
      system->publish(N(0), g0, static_cast<std::uint64_t>(i));
      system->publish(N(4), g1, 100 + static_cast<std::uint64_t>(i));
    }
    system->run();
  }
  ASSERT_EQ(unicast.deliveries().size(), tree.deliveries().size());
  for (std::size_t i = 0; i < unicast.deliveries().size(); ++i) {
    const Delivery& a = unicast.deliveries()[i];
    const Delivery& b = tree.deliveries()[i];
    EXPECT_EQ(a.receiver, b.receiver);
    EXPECT_EQ(a.payload, b.payload);
    EXPECT_DOUBLE_EQ(a.delivered_at, b.delivered_at)
        << "tree edges follow shortest paths: timing must be identical";
  }
}

TEST(TreeDistribution, AccountsLinkStress) {
  auto config = test::small_config(112);
  config.network.tree_distribution = true;
  PubSubSystem system(config);
  const GroupId g = system.create_group({N(0), N(1), N(2), N(3), N(4)});
  EXPECT_EQ(system.network().distribution_stress().total_messages(), 0u);
  system.publish(N(0), g);
  system.publish(N(1), g);
  system.run();
  const auto& stress = system.network().distribution_stress();
  EXPECT_GT(stress.links_used(), 0u);
  EXPECT_EQ(stress.max_stress(), 2u) << "two messages crossed the tree";
}

TEST(TreeDistribution, UnicastModeAccountsNothing) {
  PubSubSystem system(test::small_config(113));
  const GroupId g = system.create_group({N(0), N(1), N(2)});
  system.publish(N(0), g);
  system.run();
  EXPECT_EQ(system.network().distribution_stress().links_used(), 0u);
}

}  // namespace
}  // namespace decseq::pubsub
