// Crafted-case tests for the greedy tree builder (BuildStrategy::kGreedyTree):
// shapes where a genuine tree beats the chain, and shapes where the greedy
// step must detect failure and fall back.
#include <gtest/gtest.h>

#include <algorithm>

#include "membership/overlap.h"
#include "seqgraph/graph.h"
#include "seqgraph/validator.h"
#include "tests/test_util.h"

namespace decseq::seqgraph {
namespace {

using membership::OverlapIndex;
using test::G;
using test::N;

SequencingGraph build_tree(const membership::GroupMembership& m) {
  const OverlapIndex idx(m);
  auto graph = build_sequencing_graph(
      m, idx, {.strategy = BuildStrategy::kGreedyTree});
  const auto report = validate_sequencing_graph(graph, m, idx);
  EXPECT_TRUE(report.ok) << (report.errors.empty() ? ""
                                                   : report.errors.front());
  return graph;
}

std::size_t total_path_length(const SequencingGraph& g) {
  std::size_t total = 0;
  for (const GroupId grp : g.groups()) total += g.path(grp).size();
  return total;
}

TEST(TreeStrategy, StarOfSpokesBranches) {
  // Hub group 0 overlaps four spoke groups that do not overlap each other:
  // a genuine star. The tree layout can hang every spoke atom off the hub
  // path; the chain must thread them all into one line.
  const auto m = test::make_membership(
      12,
      {{0, 1, 2, 3, 4, 5, 6, 7},  // hub
       {0, 1, 8},                 // spokes, pairwise single-overlap
       {2, 3, 9},
       {4, 5, 10},
       {6, 7, 11}});
  const OverlapIndex idx(m);
  ASSERT_EQ(idx.num_overlaps(), 4u);  // hub x each spoke only

  const auto tree = build_tree(m);
  EXPECT_EQ(tree.tree_components(), 1u);
  EXPECT_EQ(tree.chain_components(), 0u);
  // Every spoke group's path is exactly its own atom: no transit at all.
  for (unsigned g = 1; g <= 4; ++g) {
    EXPECT_EQ(tree.path(G(g)).size(), 1u) << "spoke " << g;
  }
  // The hub's path covers its four atoms.
  EXPECT_EQ(tree.path(G(0)).size(), 4u);

  const OverlapIndex idx2(m);
  const auto chain = build_sequencing_graph(m, idx2, {});
  EXPECT_LE(total_path_length(tree), total_path_length(chain));
}

TEST(TreeStrategy, TriangleFallsBackToChain) {
  // Three mutually double-overlapping groups (the paper's Fig 2) cannot be
  // arranged as anything but a chain with one transit; the greedy tree must
  // detect the conflict and fall back.
  const auto m = test::make_membership(4, {{0, 1, 3}, {0, 1, 2}, {1, 2, 3}});
  const auto graph = build_tree(m);
  EXPECT_EQ(graph.chain_components(), 1u);
  EXPECT_EQ(graph.tree_components(), 0u);
}

TEST(TreeStrategy, CaterpillarStaysValid) {
  // Chain of groups: g_i overlaps g_{i+1} only. Both strategies produce a
  // path; the tree's greedy insertion should handle it without fallback.
  const auto m = test::make_membership(
      12, {{0, 1, 2, 3}, {2, 3, 4, 5}, {4, 5, 6, 7}, {6, 7, 8, 9},
           {8, 9, 10, 11}});
  const auto graph = build_tree(m);
  EXPECT_EQ(graph.num_overlap_atoms(), 4u);
  EXPECT_EQ(graph.tree_components() + graph.chain_components(), 1u);
  // Interior groups stamp two atoms; path never exceeds the full chain.
  for (const GroupId g : graph.groups()) {
    EXPECT_LE(graph.path(g).size(), 4u);
  }
}

TEST(TreeStrategy, TwoHubsShareABridge) {
  // Two stars bridged by one shared group: tests multi-level attachment.
  const auto m = test::make_membership(
      16,
      {{0, 1, 2, 3, 4, 5},     // hub A
       {0, 1, 6},              // A-spoke
       {2, 3, 7},              // A-spoke
       {4, 5, 8, 9, 10, 11},   // bridge: overlaps hub A and hub B
       {8, 9, 12, 13, 14, 15}, // hub B
       {12, 13, 6},            // B-spoke
       {14, 15, 7}});          // B-spoke
  const auto graph = build_tree(m);
  // Whatever mix of tree/fallback results, the validator accepted it and
  // spokes stay short.
  EXPECT_EQ(graph.path(G(1)).size(), 1u);
  EXPECT_EQ(graph.path(G(5)).size(), 1u);
}

TEST(TreeStrategy, IdenticalWhenNoOverlapsExist) {
  const auto m = test::make_membership(6, {{0, 1}, {2, 3}, {4, 5}});
  const auto graph = build_tree(m);
  EXPECT_EQ(graph.num_overlap_atoms(), 0u);
  EXPECT_EQ(graph.num_atoms(), 3u);
}

}  // namespace
}  // namespace decseq::seqgraph
