// Mirrors docs/TUTORIAL.md step by step so the documentation can never rot:
// every snippet in the tutorial has a corresponding assertion here.
#include <gtest/gtest.h>

#include <sstream>

#include "app/replicated_state.h"
#include "filter/subscription_table.h"
#include "metrics/logio.h"
#include "pubsub/system.h"
#include "tests/test_util.h"

namespace decseq {
namespace {

using test::N;

struct TutorialFixture : ::testing::Test {
  TutorialFixture() : system(make_config()) {}
  static pubsub::SystemConfig make_config() {
    auto config = test::small_config(42);
    config.hosts.num_hosts = 16;
    config.hosts.num_clusters = 4;
    return config;
  }
  pubsub::PubSubSystem system;
};

TEST_F(TutorialFixture, Steps2Through4) {
  // Step 2: groups and structure.
  const GroupId chat = system.create_group({N(0), N(1), N(2)});
  const GroupId feed = system.create_group({N(1), N(2), N(3)});
  EXPECT_EQ(system.overlaps().num_overlaps(), 1u);
  EXPECT_EQ(system.graph().num_overlap_atoms(), 1u);

  // Step 3: publish, run, observe.
  system.publish(N(0), chat, 1);
  system.publish(N(3), feed, 2);
  system.run();
  const auto at1 = system.deliveries_to(N(1));
  const auto at2 = system.deliveries_to(N(2));
  ASSERT_EQ(at1.size(), 2u);
  ASSERT_EQ(at2.size(), 2u);
  EXPECT_EQ(at1[0].payload, at2[0].payload) << "same order at both";
  EXPECT_EQ(at1[1].payload, at2[1].payload);

  // Step 4: causal publishing.
  system.publish_causal(N(1), chat, 10);
  system.publish_causal(N(1), feed, 11);
  system.run();
  for (const unsigned common : {1u, 2u}) {
    const auto log = system.deliveries_to(N(common));
    std::size_t pos10 = 0, pos11 = 0;
    for (std::size_t i = 0; i < log.size(); ++i) {
      if (log[i].payload == 10) pos10 = i;
      if (log[i].payload == 11) pos11 = i;
    }
    EXPECT_LT(pos10, pos11) << "nobody sees 11 before 10";
  }
}

TEST_F(TutorialFixture, Step5ContentLayer) {
  filter::ContentLayer filters(system);
  filter::Predicate hot;
  hot.eq("industry", "tech").ge("price", 10'000);
  const GroupId g = filters.subscribe(N(4), hot);
  filters.subscribe(N(5), hot);

  filter::Event trade;
  trade.set("industry", "tech").set("price", std::int64_t{15'000});
  const auto hit = filters.publish(N(0), trade, 99);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0], g);
  system.run();
  EXPECT_EQ(system.deliveries_to(N(4)).size(), 1u);

  filter::Event cold;
  cold.set("industry", "tech").set("price", std::int64_t{5'000});
  EXPECT_TRUE(filters.publish(N(0), cold, 0).empty());
}

TEST_F(TutorialFixture, Step6ReplicatedState) {
  const GroupId g = system.create_group({N(1), N(2)});
  app::ReplicaSet<std::uint64_t> replicas(
      system,
      [](std::uint64_t& s, const pubsub::Delivery& d) { s += d.payload; },
      [](const std::uint64_t& s) { return s; });
  replicas.add_replica(N(1));
  replicas.add_replica(N(2));
  system.publish(N(1), g, 5);
  system.publish(N(2), g, 7);
  system.run();
  replicas.sync();
  EXPECT_FALSE(replicas.find_divergence().has_value());
  EXPECT_EQ(replicas.state_of(N(1)), 12u);
}

TEST_F(TutorialFixture, Step7Operations) {
  const GroupId chat = system.create_group({N(0), N(1), N(2)});
  const GroupId feed = system.create_group({N(1), N(2), N(3)});

  // Batched live change.
  system.reconfigure({
      pubsub::PubSubSystem::MembershipChange::join(chat, N(5)),
      pubsub::PubSubSystem::MembershipChange::create({N(6), N(7)}),
  });
  EXPECT_TRUE(system.membership().is_member(chat, N(5)));

  // FIN.
  system.terminate_group(feed, N(1));
  system.run();
  EXPECT_TRUE(system.network().group_terminated(feed));

  // Crash drill.
  system.fail_sequencing_node(SeqNodeId(0));
  system.recover_sequencing_node(SeqNodeId(0));

  // Trace.
  system.network_mutable().tracer().enable();
  const MsgId id = system.publish(N(0), chat, 1);
  system.run();
  EXPECT_NE(system.trace(id).find("published"),
            std::string::npos);

  // Save + audit.
  std::stringstream buffer;
  metrics::write_delivery_log(system.deliveries(), buffer);
  const auto loaded = metrics::read_delivery_log(buffer);
  EXPECT_FALSE(metrics::find_order_violation(loaded).has_value());
}

}  // namespace
}  // namespace decseq
