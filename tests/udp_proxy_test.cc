// Fault-injection forwarding proxy tests: a reliable channel between two
// real UDP endpoints routed through UdpProxy, which drops, duplicates, and
// delays datagrams on a seeded schedule — plus a forced full outage the
// channel must surface as a fault and then recover from. This is the
// retransmit/backoff machinery exercised on real sockets.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "protocol/codec.h"
#include "transport/channel.h"
#include "transport/udp_proxy.h"
#include "transport/udp_transport.h"

namespace decseq::transport {
namespace {

/// Two UDP endpoints whose only route is through the proxy.
struct ProxiedLink {
  UdpTransport a;
  UdpTransport b;
  UdpProxy proxy;
  Rng rng{11};
  ChannelSet set_a;
  ChannelSet set_b;
  SendChannel sender;
  RecvChannel receiver;
  std::vector<std::uint64_t> received;

  explicit ProxiedLink(ProxyChaosOptions chaos, ChannelOptions options)
      : proxy(202608, chaos),
        sender(a, rng, /*edge=*/1, options),
        receiver(b, /*edge=*/1,
                 [this](const std::uint8_t* payload, std::size_t size,
                        std::uint8_t) {
                   std::vector<std::uint8_t> buffer(payload, payload + size);
                   std::size_t offset = 0;
                   received.push_back(
                       *protocol::decode_varint(buffer, offset));
                 }) {
    a.add_edge(1, proxy.local_addr());
    b.add_edge(1, proxy.local_addr());
    proxy.set_endpoints(a.local_addr(), b.local_addr());
    set_a.add_sender(&sender);
    set_b.add_receiver(&receiver);
    a.set_datagram_sink([this](const std::uint8_t* d, std::size_t n,
                               const Origin& o) { set_a.handle(d, n, o); });
    b.set_datagram_sink([this](const std::uint8_t* d, std::size_t n,
                               const Origin& o) { set_b.handle(d, n, o); });
  }

  void send_value(std::uint64_t value) {
    std::vector<std::uint8_t> payload;
    protocol::encode_varint(value, payload);
    sender.send(payload.data(), payload.size());
  }

  /// Pump all three sockets until `stop` or the wall-clock deadline.
  template <typename Stop>
  void pump_until(Stop stop, double timeout_ms) {
    const double deadline = a.now_ms() + timeout_ms;
    while (!stop() && a.now_ms() < deadline) {
      a.poll(1.0);
      proxy.poll(0.0);
      b.poll(0.0);
    }
  }
};

TEST(UdpProxy, ChannelSurvivesSeededChaos) {
  ProxyChaosOptions chaos;
  chaos.drop_probability = 0.25;
  chaos.duplicate_probability = 0.1;
  chaos.reorder_probability = 0.2;
  chaos.reorder_delay_ms = 4.0;
  ChannelOptions options;
  options.retransmit_timeout_ms = 5.0;
  ProxiedLink link(chaos, options);

  constexpr std::uint64_t kCount = 200;
  for (std::uint64_t i = 0; i < kCount; ++i) link.send_value(i);
  link.pump_until(
      [&link] {
        return link.received.size() >= kCount && link.sender.unacked() == 0;
      },
      20000.0);

  ASSERT_EQ(link.received.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(link.received[i], i) << "delivery order diverged at " << i;
  }
  EXPECT_EQ(link.sender.unacked(), 0u);
  EXPECT_FALSE(link.sender.faulted());
  // The chaos schedule actually fired, and the channel paid for it.
  EXPECT_GT(link.proxy.dropped(), 0u);
  EXPECT_GT(link.proxy.duplicated(), 0u);
  EXPECT_GT(link.proxy.delayed(), 0u);
  EXPECT_GT(link.sender.transmissions(), kCount);
  EXPECT_EQ(link.set_b.rejected(), 0u);
}

TEST(UdpProxy, OutageSurfacesFaultAndRecovers) {
  ChannelOptions options;
  options.retransmit_timeout_ms = 4.0;
  options.max_retransmits = 4;
  ProxiedLink link(ProxyChaosOptions{}, options);

  std::vector<ChannelFault> faults;
  link.sender.set_fault_callback(
      [&faults](const ChannelFault& fault) { faults.push_back(fault); });

  // Healthy warm-up — drain the ack path too, so the outage below starts
  // from a clean window.
  for (std::uint64_t i = 0; i < 5; ++i) link.send_value(i);
  link.pump_until(
      [&link] {
        return link.received.size() >= 5 && link.sender.unacked() == 0;
      },
      10000.0);
  ASSERT_EQ(link.received.size(), 5u);
  ASSERT_EQ(link.sender.unacked(), 0u);
  EXPECT_FALSE(link.sender.faulted());

  // Forced outage: the proxy swallows everything. The retransmission
  // budget runs out and the fault must surface — but the channel keeps
  // probing at its capped backoff cadence.
  link.proxy.set_outage(true);
  for (std::uint64_t i = 5; i < 10; ++i) link.send_value(i);
  link.pump_until([&link] { return link.sender.faulted(); }, 20000.0);
  ASSERT_TRUE(link.sender.faulted());
  ASSERT_FALSE(faults.empty());
  EXPECT_GT(faults.front().attempts, options.max_retransmits);
  EXPECT_EQ(link.received.size(), 5u);
  EXPECT_EQ(link.sender.unacked(), 5u);

  // Lift the outage: the next probe gets through, the cumulative ack
  // drains the window, the fault clears, and nothing was lost, duplicated,
  // or reordered end to end.
  link.proxy.set_outage(false);
  link.pump_until(
      [&link] {
        return link.received.size() >= 10 && link.sender.unacked() == 0;
      },
      20000.0);
  ASSERT_EQ(link.received.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(link.received[i], i);
  EXPECT_FALSE(link.sender.faulted());
  EXPECT_EQ(link.sender.unacked(), 0u);
}

}  // namespace
}  // namespace decseq::transport
