// Negative tests for the sequencing-graph validator: hand-built graphs that
// violate C1/C2 (and the auxiliary structural invariants) must be flagged.
// These graphs are exactly what the builder must never emit — including the
// paper's Fig 2(a) cyclic arrangement — and a receiver-level companion test
// shows the circular delivery dependency that C2 exists to prevent.
#include <gtest/gtest.h>

#include <algorithm>

#include "membership/overlap.h"
#include "protocol/receiver.h"
#include "seqgraph/graph.h"
#include "seqgraph/validator.h"
#include "tests/test_util.h"

namespace decseq::seqgraph {
namespace {

using test::G;
using test::N;

/// Fig 2 membership: G0={A,B,D}, G1={A,B,C}, G2={B,C,D} with A=0..D=3.
membership::GroupMembership fig2_membership() {
  return test::make_membership(4, {{0, 1, 3}, {0, 1, 2}, {1, 2, 3}});
}

/// The three overlap atoms of the Fig 2 scenario, ids 0..2:
/// Q0=(G0,G1)={A,B}, Q1=(G0,G2)={B,D}, Q2=(G1,G2)={B,C}.
std::vector<Atom> fig2_atoms(const membership::OverlapIndex& idx) {
  std::vector<Atom> atoms;
  for (std::size_t i = 0; i < idx.num_overlaps(); ++i) {
    const auto& o = idx.overlap(i);
    atoms.push_back({AtomId(static_cast<unsigned>(i)), o.first, o.second,
                     o.members, i});
  }
  return atoms;
}

bool has_error_containing(const ValidationReport& report,
                          const std::string& needle) {
  return std::any_of(report.errors.begin(), report.errors.end(),
                     [&](const std::string& e) {
                       return e.find(needle) != std::string::npos;
                     });
}

TEST(ValidatorNegative, Fig2aCycleViolatesC2) {
  const auto m = fig2_membership();
  const membership::OverlapIndex idx(m);
  auto atoms = fig2_atoms(idx);
  ASSERT_EQ(atoms.size(), 3u);
  // Overlap order from the index: (G0,G1)=Q0, (G0,G2)=Q1, (G1,G2)=Q2.
  const AtomId q0(0), q1(1), q2(2);
  // Fig 2(a): G0 via Q0->Q1, G1 via Q0->Q2, G2 via Q1->Q2 — a triangle.
  const auto graph = SequencingGraph::make_for_testing(
      std::move(atoms),
      {{q0, q1}, {q0, q2}, {q1, q2}},
      {{q1, q2}, {q0, q2}, {q0, q1}},  // adjacency: complete triangle
      3);
  const auto report = validate_sequencing_graph(graph, m, idx);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(has_error_containing(report, "C2"));
}

TEST(ValidatorNegative, PathJumpWithoutTreeEdge) {
  const auto m = fig2_membership();
  const membership::OverlapIndex idx(m);
  auto atoms = fig2_atoms(idx);
  const AtomId q0(0), q1(1), q2(2);
  // Tree is the chain q0-q1-q2, but G1's path jumps q0 -> q2 directly.
  const auto graph = SequencingGraph::make_for_testing(
      std::move(atoms),
      {{q0, q1}, {q0, q2}, {q1, q2}},
      {{q1}, {q0, q2}, {q1}},
      3);
  const auto report = validate_sequencing_graph(graph, m, idx);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(has_error_containing(report, "without a tree edge"));
}

TEST(ValidatorNegative, MissingAtomForOverlap) {
  const auto m = fig2_membership();
  const membership::OverlapIndex idx(m);
  auto atoms = fig2_atoms(idx);
  atoms.pop_back();  // drop Q2=(G1,G2)
  const AtomId q0(0), q1(1);
  const auto graph = SequencingGraph::make_for_testing(
      std::move(atoms),
      {{q0, q1}, {q0, q1}, {q1, q0}},
      {{q1}, {q0}},
      2);
  const auto report = validate_sequencing_graph(graph, m, idx);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(has_error_containing(report, "missing atom"));
}

TEST(ValidatorNegative, PathRevisitsAtom) {
  const auto m = test::make_membership(5, {{0, 1, 2}, {1, 2, 3}});
  const membership::OverlapIndex idx(m);
  auto atoms = fig2_atoms(idx);  // one overlap atom
  const AtomId q0(0);
  const auto graph = SequencingGraph::make_for_testing(
      std::move(atoms), {{q0, q0}, {q0}}, {{}}, 1);
  const auto report = validate_sequencing_graph(graph, m, idx);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(has_error_containing(report, "revisits"));
}

TEST(ValidatorNegative, EdgeUsedInBothDirections) {
  const auto m = fig2_membership();
  const membership::OverlapIndex idx(m);
  auto atoms = fig2_atoms(idx);
  const AtomId q0(0), q1(1), q2(2);
  // Chain q0-q1-q2; G0 runs left-to-right but G2 runs right-to-left over
  // the shared edge q1-q2: FIFO channels can no longer guarantee a
  // consistent arrival order.
  const auto graph = SequencingGraph::make_for_testing(
      std::move(atoms),
      {{q0, q1}, {q0, q1, q2}, {q2, q1}},
      {{q1}, {q0, q2}, {q1}},
      3);
  const auto report = validate_sequencing_graph(graph, m, idx);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(has_error_containing(report, "both directions"));
}

TEST(ValidatorNegative, LiveGroupWithoutPath) {
  const auto m = test::make_membership(4, {{0, 1}, {2, 3}});
  const membership::OverlapIndex idx(m);
  std::vector<Atom> atoms{{AtomId(0), G(0), GroupId{}, {},
                           static_cast<std::size_t>(-1)}};
  const auto graph = SequencingGraph::make_for_testing(
      std::move(atoms), {{AtomId(0)}, {}}, {{}}, 0);
  const auto report = validate_sequencing_graph(graph, m, idx);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(has_error_containing(report, "no sequencing path"));
}

// The paper's Fig 2(a) table, replayed at node B: with the cyclic
// sequencing graph, the three messages carry mutually blocking stamps and
// none can ever be delivered — the circular dependency C2 forbids.
TEST(Fig2a, CircularStampsDeadlockReceiverB) {
  const AtomId q0(0), q1(1), q2(2);
  std::size_t delivered = 0;
  // B is in all three overlaps.
  protocol::Receiver b(N(1), {G(0), G(1), G(2)}, {q0, q1, q2},
                       [&](const protocol::Message&, sim::Time) {
                         ++delivered;
                       });
  auto msg = [](unsigned id, GroupId g, protocol::StampVec stamps) {
    return protocol::Message::make(
        {.id = MsgId(id), .group = g, .sender = N(0), .group_seq = 1},
        std::move(stamps));
  };
  // The table from Fig 2(a): m0 {Q0:1, Q1:2}, m1 {Q0:2, Q2:1},
  // m2 {Q1:1, Q2:2}.
  const auto m0 = msg(0, G(0), {{q0, 1}, {q1, 2}});
  const auto m1 = msg(1, G(1), {{q0, 2}, {q2, 1}});
  const auto m2 = msg(2, G(2), {{q1, 1}, {q2, 2}});
  EXPECT_FALSE(b.deliverable(m0));  // waits for Q1:1 (held by m2)
  EXPECT_FALSE(b.deliverable(m1));  // waits for Q0:1 (held by m0)
  EXPECT_FALSE(b.deliverable(m2));  // waits for Q2:1 (held by m1)
  b.receive(m0, 0.0);
  b.receive(m1, 0.0);
  b.receive(m2, 0.0);
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(b.buffered(), 3u) << "the circular dependency wedges B forever";
}

// Companion: the Fig 2(b) redirection (m1 transits Q1 without a stamp)
// breaks the cycle and everything delivers.
TEST(Fig2b, RedirectedStampsDeliver) {
  const AtomId q0(0), q1(1), q2(2);
  std::vector<MsgId> delivered;
  protocol::Receiver b(N(1), {G(0), G(1), G(2)}, {q0, q1, q2},
                       [&](const protocol::Message& m, sim::Time) {
                         delivered.push_back(m.id());
                       });
  auto msg = [](unsigned id, GroupId g, protocol::StampVec stamps) {
    return protocol::Message::make(
        {.id = MsgId(id), .group = g, .sender = N(0), .group_seq = 1},
        std::move(stamps));
  };
  // Chain q0-q1-q2, all paths left-to-right: m0 (G0) stamps Q0:1, Q1:1;
  // m1 (G1) stamps Q0:2, transits Q1, stamps Q2:1; m2 (G2) stamps Q1:2,
  // Q2:2 — arrival order at the shared chain is consistent.
  b.receive(msg(2, G(2), {{q1, 2}, {q2, 2}}), 0.0);  // early: buffered
  b.receive(msg(1, G(1), {{q0, 2}, {q2, 1}}), 0.0);  // buffered (Q0:1 first)
  b.receive(msg(0, G(0), {{q0, 1}, {q1, 1}}), 0.0);  // releases everything
  ASSERT_EQ(delivered.size(), 3u);
  EXPECT_EQ(delivered[0], MsgId(0));
  EXPECT_EQ(delivered[1], MsgId(1));
  EXPECT_EQ(delivered[2], MsgId(2));
  EXPECT_EQ(b.buffered(), 0u);
}

}  // namespace
}  // namespace decseq::seqgraph
