#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "common/rng.h"
#include "pubsub/system.h"
#include "tests/test_util.h"
#include "topology/shortest_path.h"
#include "topology/waxman.h"

namespace decseq::topology {
namespace {

using test::N;

WaxmanParams small_waxman() {
  WaxmanParams p;
  p.num_routers = 300;
  p.plane_side_ms = 100.0;
  return p;
}

TEST(Waxman, GeneratesRequestedSize) {
  Rng rng(1);
  const auto topo = generate_waxman(small_waxman(), rng);
  EXPECT_EQ(topo.graph.num_routers(), 300u);
  EXPECT_EQ(topo.position.size(), 300u);
  EXPECT_GE(topo.graph.num_edges(), 299u);  // at least the spanning tree
}

TEST(Waxman, FullyConnected) {
  Rng rng(2);
  const auto topo = generate_waxman(small_waxman(), rng);
  const auto dist = dijkstra(topo.graph, RouterId(0));
  for (std::size_t r = 0; r < topo.graph.num_routers(); ++r) {
    EXPECT_NE(dist[r], std::numeric_limits<double>::infinity())
        << "router " << r;
  }
}

TEST(Waxman, DelaysMatchPlaneGeometry) {
  Rng rng(3);
  const auto params = small_waxman();
  const auto topo = generate_waxman(params, rng);
  // Every link's delay is the Euclidean distance of its endpoints, so no
  // path can beat straight-line distance.
  DistanceOracle oracle(topo.graph);
  for (unsigned a = 0; a < 10; ++a) {
    for (unsigned b = a + 1; b < 10; ++b) {
      const auto& pa = topo.position[a];
      const auto& pb = topo.position[b];
      const double euclid = std::hypot(pa.first - pb.first,
                                       pa.second - pb.second);
      EXPECT_GE(oracle.distance(RouterId(a), RouterId(b)) + 1e-6, euclid);
    }
  }
}

TEST(Waxman, ShortLinksDominate) {
  Rng rng(4);
  const auto params = small_waxman();
  const auto topo = generate_waxman(params, rng);
  const double diagonal = params.plane_side_ms * std::sqrt(2.0);
  std::size_t short_links = 0, long_links = 0;
  for (std::size_t r = 0; r < topo.graph.num_routers(); ++r) {
    for (const Edge& e : topo.graph.neighbors(RouterId(static_cast<unsigned>(r)))) {
      (e.delay_ms < diagonal / 4 ? short_links : long_links) += 1;
    }
  }
  EXPECT_GT(short_links, long_links)
      << "Waxman probability decays with distance";
}

TEST(Waxman, HostClustersAreLocal) {
  Rng rng(5);
  const auto topo = generate_waxman(small_waxman(), rng);
  const HostMap hosts =
      attach_hosts_waxman(topo, {.num_hosts = 16, .num_clusters = 4}, rng);
  DistanceOracle oracle(topo.graph);
  double intra = 0, inter = 0;
  std::size_t ni = 0, nx = 0;
  for (unsigned a = 0; a < 16; ++a) {
    for (unsigned b = a + 1; b < 16; ++b) {
      const double d = hosts.unicast_delay(N(a), N(b), oracle);
      if (hosts.cluster_of(N(a)) == hosts.cluster_of(N(b))) {
        intra += d;
        ++ni;
      } else {
        inter += d;
        ++nx;
      }
    }
  }
  ASSERT_GT(ni, 0u);
  ASSERT_GT(nx, 0u);
  EXPECT_LT(intra / static_cast<double>(ni), inter / static_cast<double>(nx));
}

TEST(Waxman, EndToEndSystemWorks) {
  pubsub::SystemConfig config;
  config.seed = 77;
  config.topology_model = pubsub::TopologyModel::kWaxman;
  config.waxman.num_routers = 400;
  config.hosts.num_hosts = 12;
  config.hosts.num_clusters = 4;
  pubsub::PubSubSystem system(config);
  const GroupId g0 = system.create_group({N(0), N(1), N(2), N(3)});
  const GroupId g1 = system.create_group({N(2), N(3), N(4), N(5)});
  for (int i = 0; i < 6; ++i) {
    system.publish(N(0), g0);
    system.publish(N(4), g1);
  }
  system.run();
  EXPECT_EQ(system.deliveries_to(N(2)).size(), 12u);
  EXPECT_FALSE(test::find_order_violation(system.deliveries()).has_value());
}

}  // namespace
}  // namespace decseq::topology
